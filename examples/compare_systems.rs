//! Comparing two processor designs the statistically rigorous way —
//! the paper's §4.2 case study: does doubling the L2 from 512 kB to
//! 1 MB speed up ferret, and by how much?
//!
//! Instead of comparing two single runs (which §1 shows can mislead),
//! we pair seeded executions of both systems, feed the speedup samples
//! to SPA, and (a) test an explicit hypothesis "speedup ≥ 1.1 in at
//! least 90 % of executions" and (b) construct the speedup confidence
//! interval.
//!
//! Run with: `cargo run --release --example compare_systems`

use spa::core::property::MetricProperty;
use spa::core::spa::{Direction, Spa};
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::workload::parsec::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Full-scale ferret: its periodic index rescans live in ~600 kB,
    // which thrashes a 512 kB L2 but fits a 1 MB one.
    let workload = Benchmark::Ferret.workload();
    let base_cfg = SystemConfig::table2().with_l2_capacity(512 * 1024);
    let improved_cfg = SystemConfig::table2().with_l2_capacity(1024 * 1024);
    let base = Machine::new(base_cfg, &workload)?;
    let improved = Machine::new(improved_cfg, &workload)?;

    let spa = Spa::builder().confidence(0.9).proportion(0.9).build()?;
    let n = spa.required_samples();
    println!("running {n} paired executions of each system…");

    // §5.2: take one execution from each population and divide their
    // runtimes to obtain a single speedup sample. Using the same seed on
    // both systems gives common random numbers — both runs see the same
    // injected variability, isolating the design change.
    let samples: Vec<f64> = (0..n)
        .map(|seed| -> Result<f64, spa::sim::SimError> {
            let b = base.run(seed)?.metrics.runtime_seconds;
            let i = improved.run(seed)?.metrics.runtime_seconds;
            Ok(b / i)
        })
        .collect::<Result<_, _>>()?;

    // (a) Explicit hypothesis: speedup of at least 1.1x in ≥ 90 % of
    // executions, at 90 % confidence (Table 1 row 1 + Eq. 1).
    let property = MetricProperty::new(Direction::AtLeast, 1.1);
    let outcome = spa.hypothesis_test(&property, &samples)?;
    println!(
        "hypothesis \"{property} in >=90% of runs\": {} (C_CP = {:.3})",
        match outcome.assertion {
            Some(a) => a.to_string(),
            None => "inconclusive — collect more executions".into(),
        },
        outcome.achieved_confidence
    );

    // (b) The full confidence interval (§4.1-4.2).
    let ci = spa.confidence_interval(&samples, Direction::AtLeast)?;
    println!("with 90% confidence, >=90% of executions speed up by at least a factor in {ci}");
    Ok(())
}
