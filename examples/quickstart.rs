//! Quickstart: statistically rigorous evaluation of one benchmark.
//!
//! Simulates the paper's Table 2 machine running ferret with
//! variability injection, collects the minimum number of executions SPA
//! needs (Eq. 8), and reports a confidence interval for runtime at the
//! requested proportion and confidence.
//!
//! Run with: `cargo run --release --example quickstart`

use spa::core::spa::{Direction, Spa};
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::workload::parsec::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the system under test (Table 2 of the paper) and the
    //    workload (a ferret-like pipeline benchmark).
    let config = SystemConfig::table2();
    let workload = Benchmark::Ferret.workload_scaled(0.5);
    let machine = Machine::new(config, &workload)?;

    // 2. Configure SPA: confidence C = 0.9, proportion F = 0.9 — i.e.
    //    "with 90 % confidence, at least 90 % of executions run within
    //    the interval's bound".
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .batch_size(4)
        .build()?;
    println!(
        "SPA needs at least {} executions for C = 0.9, F = 0.9 (Eq. 8)",
        spa.required_samples()
    );

    // 3. Let SPA drive the simulator: it runs seeds in parallel batches
    //    and builds the interval push-button style (Fig. 3).
    let sampler = |seed: u64| {
        machine
            .run(seed)
            .expect("simulation failed")
            .metrics
            .runtime_seconds
    };
    let report = spa.run(&sampler, 0, Direction::AtMost)?;

    println!(
        "collected {} runtimes between {:.6}s and {:.6}s",
        report.samples.len(),
        report.samples.iter().copied().fold(f64::INFINITY, f64::min),
        report
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max),
    );
    println!(
        "90% of ferret executions finish within {} (at 90% confidence)",
        report.interval
    );
    Ok(())
}
