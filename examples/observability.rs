//! Observability: tracing spans and live engine metrics.
//!
//! Installs a span subscriber, runs one SPA evaluation against the
//! simulator, and prints the spans that closed plus the global metrics
//! registry's counters — the same data `spa --trace <command>` streams
//! to stderr and `spa metrics` fetches from a running server.
//!
//! Instrumentation is verdict-neutral: the report below is byte-for-byte
//! what an uninstrumented run would have produced.
//!
//! Run with: `cargo run --release --example observability`

use spa::core::spa::{Direction, Spa};
use spa::obs::{clear_subscriber, global, set_subscriber, CollectingSubscriber};
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::workload::parsec::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The system under test: the paper's Table 2 machine running a
    // blackscholes-like workload with the default variability model.
    let workload = Benchmark::Blackscholes.workload_scaled(0.5);
    let machine = Machine::new(SystemConfig::table2(), &workload)?;
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .batch_size(4)
        .build()?;

    // 1. Install a subscriber. `CollectingSubscriber` buffers records
    //    for inspection; `StderrSubscriber` (what `spa --trace` uses)
    //    prints them live instead.
    let collector = CollectingSubscriber::new();
    set_subscriber(collector.clone());

    // 2. Run the evaluation exactly as without instrumentation.
    let sampler = |seed: u64| {
        machine
            .run(seed)
            .expect("simulation failed")
            .metrics
            .runtime_seconds
    };
    let report = spa.run(&sampler, 0, Direction::AtMost)?;
    clear_subscriber();

    println!(
        "evaluated {} executions: 90% run within {} (at 90% confidence)",
        report.samples.len(),
        report.interval
    );

    // 3. The spans that closed during the run, indented by nesting.
    println!("\nspans (in close order):");
    for record in collector.take() {
        println!(
            "  {:indent$}{} {:?}",
            "",
            record.name,
            record.elapsed,
            indent = record.depth * 2
        );
    }

    // 4. The process-global metrics registry accumulated counters along
    //    the way; a server merges these into its `metrics` response.
    let snapshot = global().snapshot();
    println!("\nglobal counters:");
    for (name, value) in &snapshot.counters {
        println!("  {name} = {value}");
    }
    Ok(())
}
