//! Hyperproperties: judging *tuples* of executions — the paper's
//! §3.1/§8 extension, implemented in `spa::core::hyper`.
//!
//! Question: "will the performance of multiple executions differ by
//! less than a given threshold?" — a stability guarantee no
//! single-execution property can express.
//!
//! Run with: `cargo run --release --example stability_check`

use spa::core::hyper::{pair_self, HyperProperty};
use spa::core::min_samples::min_samples;
use spa::core::smc::SmcEngine;
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::workload::parsec::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Benchmark::Streamcluster.workload();
    let machine = Machine::new(SystemConfig::table2(), &workload)?;

    // Each hyperproperty sample consumes a *pair* of fresh executions,
    // so collect 2 × the minimum sample count.
    let needed = 2 * min_samples(0.9, 0.8)?;
    println!(
        "running {needed} executions ({} disjoint pairs)…",
        needed / 2
    );
    let runtimes: Vec<f64> = (0..needed)
        .map(|seed| -> Result<f64, spa::sim::SimError> {
            Ok(machine.run(seed)?.metrics.runtime_seconds)
        })
        .collect::<Result<_, _>>()?;

    let engine = SmcEngine::new(0.9, 0.8)?;
    for percent in [5.0_f64, 10.0, 25.0, 50.0] {
        let median = {
            let mut s = runtimes.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            s[s.len() / 2]
        };
        let prop = HyperProperty::difference_within(median * percent / 100.0)?;
        let verdict = engine.run_fixed(pair_self(&runtimes).map(|(a, b)| prop.evaluate(a, b)))?;
        println!(
            "within {percent:>4}% of median runtime: {:<22} (satisfied {}/{} pairs, C_CP = {:.3})",
            match verdict.assertion {
                Some(a) => format!("{a}"),
                None => "inconclusive".into(),
            },
            verdict.satisfied,
            verdict.samples_used,
            verdict.achieved_confidence
        );
    }
    println!("\nreading: the smallest threshold asserted `positive` bounds the");
    println!("run-to-run spread for >=80% of execution pairs, at 90% confidence.");
    Ok(())
}
