//! Checking rich temporal properties with SMC — Table 1 beyond simple
//! thresholds, plus the textbook sequential SMC loop (Algorithm 1)
//! driving the simulator on demand.
//!
//! Run with: `cargo run --release --example property_check`

use spa::core::smc::SmcEngine;
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::workload::parsec::Benchmark;
use spa::stl::ast::CmpOp;
use spa::stl::parser::parse;
use spa::stl::templates::Template;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Benchmark::Ferret.workload_scaled(0.25);
    // Trace collection gives every run signals (power, active_threads)
    // and event streams (tlb_miss, l2_miss, lock_contention, …).
    let machine = Machine::new(SystemConfig::table2().with_trace(), &workload)?;

    // --- 1. An STL formula over the execution trace. -----------------
    // "Within the first 200k cycles there is a moment after which, for
    //  50k cycles, at least two cores stay busy."
    let formula = parse("F[0,200000] G[0,50000] active_threads >= 2")?;
    let run = machine.run(7)?;
    let data = run.stl_data.expect("trace enabled");
    println!(
        "STL `{formula}` on seed 7: {}",
        formula.satisfied_by(data.trace())?
    );

    // --- 2. A Table 1 row 6 template (inter-event timing). -----------
    // "If an L2 miss occurs, another follows within 2000 cycles with
    //  probability > 0.5" — one boolean per execution.
    let template = Template::EventWithinWindow {
        trigger: "l2_miss".into(),
        response: "l2_miss".into(),
        window: 2_000,
        prob_op: CmpOp::Gt,
        prob: 0.5,
    };
    println!(
        "template `{template}` on seed 7: {}",
        template.evaluate(&data)?
    );

    // --- 3. Algorithm 1: sequential SMC over fresh executions. -------
    // Ask: does the property hold in at least 80 % of executions, with
    // 95 % confidence? The engine draws simulations only until the
    // verdict is statistically significant.
    let engine = SmcEngine::new(0.95, 0.8)?;
    let outcomes = (0..).map(|seed| {
        let run = machine.run(seed).expect("simulation failed");
        template
            .evaluate(&run.stl_data.expect("trace enabled"))
            .expect("property evaluates")
    });
    let result = engine.run_sequential(outcomes)?;
    println!(
        "Algorithm 1 verdict: {} after {} executions (C_CP = {:.3})",
        result.assertion, result.samples_used, result.achieved_confidence
    );
    Ok(())
}
