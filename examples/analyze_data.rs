//! Standalone SPA: analyzing measurement data that did NOT come from
//! the bundled simulator (hardware counters, another simulator, a CSV
//! you already have).
//!
//! SPA is simulator-agnostic — §2 of the paper: it "can be applied to
//! results from either hardware or simulator experiments". This example
//! analyzes a synthetic bi-modal data set like Fig. 1's and contrasts
//! the four CI constructions.
//!
//! Run with: `cargo run --release --example analyze_data`

use rand::rngs::StdRng;
use rand::SeedableRng;

use spa::baselines::bootstrap::bca_ci;
use spa::baselines::rank::rank_ci_normal;
use spa::baselines::zscore::z_ci;
use spa::core::spa::{Direction, Spa};
use spa::stats::histogram::Histogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend these 22 runtimes came from your lab machine: a fast mode
    // around 1.05 s with a handful of noisy-neighbour outliers — the
    // bi-modal shape of the paper's Fig. 1.
    let measurements = vec![
        1.041, 1.052, 1.048, 1.061, 1.043, 1.055, 1.049, 1.058, 1.047, 1.053, 1.050, 1.045, 1.062,
        1.057, 1.051, 1.046, 1.338, 1.059, 1.044, 1.352, 1.054, 1.310,
    ];

    println!("measurement histogram:");
    let hist = Histogram::from_data(&measurements, 12).expect("non-empty");
    print!("{}", hist.render_ascii(30));

    // SPA interval: at 90 % confidence, at least 80 % of runs finish
    // within…
    let spa = Spa::builder().confidence(0.9).proportion(0.8).build()?;
    let ci = spa.confidence_interval(&measurements, Direction::AtMost)?;
    println!("\nSPA:   80% of runs finish within {ci}");

    // The baselines the paper compares against (for the median here,
    // where they are best-behaved).
    let mut rng = StdRng::seed_from_u64(1);
    match bca_ci(&measurements, 0.5, 0.9, 2000, &mut rng) {
        Ok(b) => println!("BCa:   median in [{:.4}, {:.4}]", b.lower(), b.upper()),
        Err(e) => println!("BCa:   failed ({e}) — the paper's §6.4 Null outcome"),
    }
    let r = rank_ci_normal(&measurements, 0.5, 0.9)?;
    println!("rank:  median in [{:.4}, {:.4}]", r.lower(), r.upper());
    let z = z_ci(&measurements, 0.9)?;
    println!(
        "z:     mean  in [{:.4}, {:.4}]  <- inflated by the second mode",
        z.lower(),
        z.upper()
    );
    Ok(())
}
