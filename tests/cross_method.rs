//! Cross-crate comparison of SPA against the baseline CI methods on the
//! same simulated data — the integration-level version of §5.4/§6.4.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spa::baselines::bootstrap::{bca_ci, percentile_ci};
use spa::baselines::rank::{rank_ci_exact, rank_ci_normal};
use spa::baselines::zscore::z_ci;
use spa::baselines::BaselineError;
use spa::core::spa::{Direction, Spa};
use spa::sim::config::SystemConfig;
use spa::sim::metrics::Metric;
use spa::sim::runner::{extract_metric, run_population};
use spa::sim::workload::parsec::Benchmark;

fn sample_runtimes() -> Vec<f64> {
    let spec = Benchmark::Bodytrack.workload_scaled(0.25);
    let runs = run_population(SystemConfig::table2(), &spec, 0, 22).unwrap();
    extract_metric(&runs, Metric::RuntimeSeconds)
}

#[test]
fn all_methods_produce_comparable_median_intervals() {
    let xs = sample_runtimes();
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.5)
        .build()
        .unwrap();
    let spa_ci = spa.confidence_interval(&xs, Direction::AtMost).unwrap();

    let mut rng = StdRng::seed_from_u64(2);
    let boot = percentile_ci(&xs, 0.5, 0.9, 1000, &mut rng).unwrap();
    let rank = rank_ci_normal(&xs, 0.5, 0.9).unwrap();
    let z = z_ci(&xs, 0.9).unwrap();

    // All intervals overlap around the median region.
    for (name, (lo, hi)) in [
        ("spa", (spa_ci.lower(), spa_ci.upper())),
        ("boot", (boot.lower(), boot.upper())),
        ("rank", (rank.lower(), rank.upper())),
        ("z", (z.lower(), z.upper())),
    ] {
        assert!(lo <= hi, "{name} interval inverted");
        // Overlap with SPA's interval.
        assert!(
            lo <= spa_ci.upper() && hi >= spa_ci.lower(),
            "{name} interval [{lo}, {hi}] does not overlap SPA's {spa_ci}"
        );
    }
}

#[test]
fn spa_is_immune_to_duplicates_bootstrap_is_not() {
    // Round runtimes hard so the sample is duplicate-heavy (the Fig. 15
    // transformation).
    let xs: Vec<f64> = sample_runtimes()
        .into_iter()
        .map(|x| (x * 10_000.0).round() / 10_000.0)
        .collect();
    let distinct = {
        let mut s = xs.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s.dedup();
        s.len()
    };
    assert!(distinct < xs.len(), "rounding should create duplicates");

    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    let ci = spa.confidence_interval(&xs, Direction::AtMost).unwrap();
    assert!(ci.lower().is_finite() && ci.upper().is_finite());

    // BCa may or may not fail for this particular draw; across several
    // resampling seeds on duplicate-heavy data we expect at least one
    // degenerate outcome, and every failure must be the typed
    // BootstrapDegenerate error.
    let mut failures = 0;
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        match bca_ci(&xs, 0.9, 0.9, 300, &mut rng) {
            Ok(_) => {}
            Err(BaselineError::BootstrapDegenerate { .. }) => failures += 1,
            Err(other) => panic!("unexpected bootstrap error: {other}"),
        }
    }
    if distinct <= xs.len() / 2 {
        assert!(
            failures > 0,
            "expected BCa Null results on heavy duplicates"
        );
    }
}

#[test]
fn rank_exact_vs_normal_agree_roughly_at_median() {
    let xs = sample_runtimes();
    let exact = rank_ci_exact(&xs, 0.5, 0.9).unwrap();
    let normal = rank_ci_normal(&xs, 0.5, 0.9).unwrap();
    // Both are order-statistic intervals on the same sample: they must
    // overlap substantially.
    assert!(exact.lower() <= normal.upper());
    assert!(normal.lower() <= exact.upper());
}

#[test]
fn methods_share_the_interval_type() {
    // The apples-to-apples requirement: every constructor returns
    // spa_core's ConfidenceInterval, so downstream tooling needs no
    // adapters.
    let xs = sample_runtimes();
    let mut rng = StdRng::seed_from_u64(3);
    let intervals: Vec<spa::core::ci::ConfidenceInterval> = vec![
        percentile_ci(&xs, 0.5, 0.9, 200, &mut rng).unwrap(),
        rank_ci_normal(&xs, 0.5, 0.9).unwrap(),
        z_ci(&xs, 0.9).unwrap(),
    ];
    for ci in intervals {
        assert_eq!(ci.confidence(), 0.9);
    }
}
