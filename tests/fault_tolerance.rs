//! Fault-tolerance integration: fault-injected samplers → retry policy →
//! panic isolation → graceful statistical degradation, across the
//! `core` and `sim` crates.

use spa::core::fault::{RetryPolicy, SampleError};
use spa::core::min_samples::achievable_confidence;
use spa::core::spa::{Direction, Spa};
use spa::sim::fault::{FaultKind, FaultSpec};

/// First window of 22 consecutive seeds in which `spec` injects at least
/// one fault and spares at least one seed (deterministic: `roll` depends
/// only on the seed).
fn mixed_window(spec: FaultSpec, width: u64) -> u64 {
    (0..1000)
        .find(|&s| {
            let faults = (s..s + width).filter(|&x| spec.roll(x).is_some()).count();
            faults > 0 && (faults as u64) < width
        })
        .expect("a 20% fault rate must hit (and miss) within some window")
}

#[test]
fn crash_rate_degrades_to_clopper_pearson_for_collected_count() {
    // The acceptance scenario: a 20% crash rate with no retries loses
    // some of the 22 requested executions, and the report's achieved
    // confidence must be exactly the Clopper–Pearson unanimous bound for
    // the count actually collected.
    let spec = FaultSpec::none().with_crashes(0.2);
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    let requested = spa.required_samples();
    assert_eq!(requested, 22);
    let seed_start = mixed_window(spec, requested);

    let sampler = move |seed: u64| match spec.roll(seed) {
        Some(_) => Err(SampleError::Crash {
            message: format!("injected crash (seed {seed})"),
        }),
        None => Ok(10.0 + (seed % 7) as f64 * 0.05),
    };
    let report = spa
        .run_fallible(
            &sampler,
            seed_start,
            Direction::AtMost,
            &RetryPolicy::no_retry(),
        )
        .unwrap();

    let surviving = (seed_start..seed_start + requested)
        .filter(|&s| spec.roll(s).is_none())
        .count() as u64;
    assert!(surviving < requested);
    assert_eq!(report.samples.len() as u64, surviving);
    assert_eq!(report.failures.crashes, requested - surviving);
    assert_eq!(report.failures.abandoned_seeds, requested - surviving);
    assert_eq!(report.failures.timeouts, 0);
    assert_eq!(report.failures.invalid_metrics, 0);

    assert!(report.degraded);
    assert_eq!(report.requested_confidence, 0.9);
    let expected = achievable_confidence(surviving, 0.9).unwrap();
    assert_eq!(report.achieved_confidence, expected);
    assert!(report.achieved_confidence < 0.9);
    assert_eq!(report.interval.confidence(), expected);
    assert!(report.interval.lower() <= report.interval.upper());
}

#[test]
fn mixed_fault_kinds_are_counted_per_kind_without_panicking() {
    // All three fault kinds at once; crashes are injected as real panics
    // so this also proves panic isolation end to end.
    let spec = FaultSpec::none()
        .with_crashes(0.15)
        .with_timeouts(0.15)
        .with_nan_metrics(0.15);
    let sampler = move |seed: u64| match spec.roll(seed) {
        Some(FaultKind::Crash) => panic!("injected panic (seed {seed})"),
        Some(FaultKind::Timeout) => Err(SampleError::Timeout),
        // A NaN metric is returned as a "successful" value; the pipeline
        // must classify it as InvalidMetric, not admit it into the data.
        Some(FaultKind::NanMetric) => Ok(f64::NAN),
        None => Ok(1.0 + (seed % 5) as f64 * 0.01),
    };

    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    let total = 60u64;
    let batch = spa.collect_samples_fallible(&sampler, 0, Some(total), &RetryPolicy::no_retry());

    // Census of the deterministic rolls over the same seed range.
    let mut crashes = 0u64;
    let mut timeouts = 0u64;
    let mut nans = 0u64;
    for seed in 0..total {
        match spec.roll(seed) {
            Some(FaultKind::Crash) => crashes += 1,
            Some(FaultKind::Timeout) => timeouts += 1,
            Some(FaultKind::NanMetric) => nans += 1,
            None => {}
        }
    }
    assert!(crashes > 0 && timeouts > 0 && nans > 0);
    assert_eq!(batch.failures.crashes, crashes);
    assert_eq!(batch.failures.timeouts, timeouts);
    assert_eq!(batch.failures.invalid_metrics, nans);
    assert_eq!(batch.failures.abandoned_seeds, crashes + timeouts + nans);
    assert_eq!(
        batch.samples.len() as u64,
        total - crashes - timeouts - nans
    );
    assert!(batch.samples.iter().all(|v| v.is_finite()));

    // The degraded report still builds a usable interval.
    let report = spa.report_from_batch(batch, Direction::AtMost).unwrap();
    assert!(report.failures.crashes == crashes);
    assert!(report.interval.lower() <= report.interval.upper());
}

#[test]
fn retries_recover_what_no_retry_loses() {
    let spec = FaultSpec::none().with_crashes(0.3);
    let sampler = move |seed: u64| match spec.roll(seed) {
        Some(_) => Err(SampleError::Crash {
            message: "flaky".into(),
        }),
        None => Ok(2.0),
    };
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    let total = 40u64;

    let fragile = spa.collect_samples_fallible(&sampler, 0, Some(total), &RetryPolicy::no_retry());
    let sturdy = spa.collect_samples_fallible(&sampler, 0, Some(total), &RetryPolicy::new(6));
    assert!(fragile.samples.len() < total as usize);
    assert!(sturdy.samples.len() >= fragile.samples.len());
    assert!(sturdy.failures.retries > 0);
    assert!(sturdy.failures.abandoned_seeds <= fragile.failures.abandoned_seeds);
}

#[test]
fn fallible_collection_is_deterministic_across_batch_sizes() {
    let spec = FaultSpec::none().with_crashes(0.25).with_nan_metrics(0.1);
    let sampler = move |seed: u64| match spec.roll(seed) {
        Some(FaultKind::NanMetric) => Ok(f64::NAN),
        Some(_) => Err(SampleError::Crash {
            message: "flaky".into(),
        }),
        None => Ok(1.0 + (seed % 11) as f64 * 0.1),
    };
    let policy = RetryPolicy::new(3);
    let serial = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .batch_size(1)
        .build()
        .unwrap();
    let parallel = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .batch_size(8)
        .build()
        .unwrap();

    let a = serial.collect_samples_fallible(&sampler, 7, Some(50), &policy);
    let b = parallel.collect_samples_fallible(&sampler, 7, Some(50), &policy);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.failures, b.failures);
}
