//! STL properties evaluated over real simulator traces — Table 1's
//! templates and parsed formulas against executions of the Table 2
//! machine.

use spa::core::smc::SmcEngine;
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::workload::parsec::Benchmark;
use spa::stl::ast::CmpOp;
use spa::stl::eval::{robustness, satisfies};
use spa::stl::parser::parse;
use spa::stl::templates::Template;

fn traced_run(seed: u64) -> spa::stl::execution::ExecutionData {
    let spec = Benchmark::Ferret.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
    machine.run(seed).unwrap().stl_data.expect("trace enabled")
}

#[test]
fn parsed_formulas_evaluate_on_simulator_traces() {
    let data = traced_run(0);
    let trace = data.trace();

    // The power proxy is always within its construction bounds
    // (8 + 23·active, 0 ≤ active ≤ 4).
    let f = parse("G (power >= 8 & power <= 100)").unwrap();
    assert!(satisfies(&f, trace, trace.start_time()).unwrap());

    // At some instant every core is active.
    let f = parse("F active_threads >= 4").unwrap();
    assert!(satisfies(&f, trace, trace.start_time()).unwrap());

    // Boolean and robustness semantics agree on the verdict.
    let f = parse("F[0,100000] power > 50").unwrap();
    let sat = satisfies(&f, trace, trace.start_time()).unwrap();
    let rob = robustness(&f, trace, trace.start_time()).unwrap();
    assert_eq!(sat, rob > 0.0);
}

#[test]
fn templates_consume_simulator_metrics_and_events() {
    let data = traced_run(1);
    // Row 1 on a real metric.
    let ipc = data.metric("ipc").unwrap();
    assert!(Template::metric_threshold("ipc", CmpOp::Gt, ipc - 0.01)
        .evaluate(&data)
        .unwrap());
    // Row 4 on a real event stream.
    let t = Template::AvgCyclesPerEvent {
        event: "tlb_miss".into(),
        op: CmpOp::Gt,
        threshold: 1.0,
    };
    assert!(t.evaluate(&data).unwrap());
}

#[test]
fn smc_over_template_outcomes_converges() {
    // Evaluate a property across simulator runs and feed the booleans
    // to Algorithm 1; with a comfortably-true property this converges
    // positive in few samples.
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
    let template = Template::metric_threshold("runtime", CmpOp::Gt, 0.0);
    let engine = SmcEngine::new(0.9, 0.5).unwrap();
    let outcomes = (0..).map(|seed| {
        let data = machine.run(seed).unwrap().stl_data.expect("trace enabled");
        template.evaluate(&data).unwrap()
    });
    let result = engine.run_sequential(outcomes).unwrap();
    assert_eq!(
        result.assertion,
        spa::core::clopper_pearson::Assertion::Positive
    );
    assert_eq!(result.samples_used, 4); // 1 − 0.5^4 ≥ 0.9
}

#[test]
fn trace_signals_are_well_formed() {
    let data = traced_run(2);
    let trace = data.trace();
    for signal in ["power", "active_threads"] {
        assert!(trace.has_signal(signal));
        let samples = trace.samples(signal).unwrap();
        assert!(!samples.is_empty());
        // Strictly increasing times (the Trace invariant).
        assert!(samples.windows(2).all(|w| w[0].time < w[1].time));
    }
    // Event streams are sorted.
    for stream in ["tlb_miss", "l2_miss"] {
        let events = data.events(stream).unwrap();
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
    }
}
