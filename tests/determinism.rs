//! Replicability guarantees (§5: "We choose to experiment with SPA on
//! simulation data … to ensure replicability"): identical inputs must
//! give bit-identical outputs across every layer.

use spa::core::spa::{Direction, Spa};
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::variability::Variability;
use spa::sim::workload::parsec::Benchmark;

#[test]
fn simulator_runs_are_bit_identical_per_seed() {
    let spec = Benchmark::Dedup.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    for seed in [0, 1, 17, 12345] {
        let a = machine.run(seed).unwrap();
        let b = machine.run(seed).unwrap();
        assert_eq!(a.metrics, b.metrics, "seed {seed} diverged");
    }
}

#[test]
fn different_seeds_differ_only_through_injection() {
    let spec = Benchmark::Canneal.workload_scaled(0.25);
    // With injection disabled, seeds are irrelevant.
    let machine = Machine::new(SystemConfig::table2(), &spec)
        .unwrap()
        .with_variability(Variability::None);
    let a = machine.run(1).unwrap();
    let b = machine.run(2).unwrap();
    assert_eq!(a.metrics, b.metrics);

    // With the paper's injection, seeds matter.
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let a = machine.run(1).unwrap();
    let b = machine.run(2).unwrap();
    assert_ne!(a.metrics.runtime_cycles, b.metrics.runtime_cycles);
}

#[test]
fn workload_structure_is_seed_independent() {
    // §5.2 discipline: the program is fixed; only injected latencies
    // vary. Instruction counts are therefore identical across seeds
    // (they depend only on the op stream, which is identical).
    let spec = Benchmark::Freqmine.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let a = machine.run(100).unwrap();
    let b = machine.run(200).unwrap();
    assert_eq!(a.metrics.instructions, b.metrics.instructions);
}

#[test]
fn spa_report_json_is_byte_identical_across_worker_counts() {
    // The CLI's `--threads` maps onto `Spa`'s batch size; 1 worker vs 8
    // workers with the same seed must produce byte-identical serialized
    // reports — not just equal values — so that cached or archived
    // artifacts (spa-server's result cache, CI baselines) never churn
    // with the executor's parallelism. This locks the worker-count
    // invariance of PR 2 in against the indexed CI engine.
    let spec = Benchmark::Ferret.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let sampler = |seed: u64| machine.run(seed).unwrap().metrics.runtime_seconds;

    let single = Spa::builder().batch_size(1).build().unwrap();
    let eight = Spa::builder().batch_size(8).build().unwrap();
    for seed in [0, 42] {
        let a = single.run(&sampler, seed, Direction::AtMost).unwrap();
        let b = eight.run(&sampler, seed, Direction::AtMost).unwrap();
        let a_json = serde_json::to_vec(&a).unwrap();
        let b_json = serde_json::to_vec(&b).unwrap();
        assert_eq!(a_json, b_json, "seed {seed}: serialized reports diverged");
    }
}

#[test]
fn spa_pipeline_is_reproducible_across_batch_sizes() {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let sampler = |seed: u64| machine.run(seed).unwrap().metrics.runtime_seconds;

    let serial = Spa::builder().batch_size(1).build().unwrap();
    let parallel = Spa::builder().batch_size(8).build().unwrap();
    let a = serial.run(&sampler, 0, Direction::AtMost).unwrap();
    let b = parallel.run(&sampler, 0, Direction::AtMost).unwrap();
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.interval, b.interval);
}
