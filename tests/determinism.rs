//! Replicability guarantees (§5: "We choose to experiment with SPA on
//! simulation data … to ensure replicability"): identical inputs must
//! give bit-identical outputs across every layer.

use spa::core::spa::{Direction, Spa};
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::variability::Variability;
use spa::sim::workload::parsec::Benchmark;

#[test]
fn simulator_runs_are_bit_identical_per_seed() {
    let spec = Benchmark::Dedup.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    for seed in [0, 1, 17, 12345] {
        let a = machine.run(seed).unwrap();
        let b = machine.run(seed).unwrap();
        assert_eq!(a.metrics, b.metrics, "seed {seed} diverged");
    }
}

#[test]
fn different_seeds_differ_only_through_injection() {
    let spec = Benchmark::Canneal.workload_scaled(0.25);
    // With injection disabled, seeds are irrelevant.
    let machine = Machine::new(SystemConfig::table2(), &spec)
        .unwrap()
        .with_variability(Variability::None);
    let a = machine.run(1).unwrap();
    let b = machine.run(2).unwrap();
    assert_eq!(a.metrics, b.metrics);

    // With the paper's injection, seeds matter.
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let a = machine.run(1).unwrap();
    let b = machine.run(2).unwrap();
    assert_ne!(a.metrics.runtime_cycles, b.metrics.runtime_cycles);
}

#[test]
fn workload_structure_is_seed_independent() {
    // §5.2 discipline: the program is fixed; only injected latencies
    // vary. Instruction counts are therefore identical across seeds
    // (they depend only on the op stream, which is identical).
    let spec = Benchmark::Freqmine.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let a = machine.run(100).unwrap();
    let b = machine.run(200).unwrap();
    assert_eq!(a.metrics.instructions, b.metrics.instructions);
}

#[test]
fn spa_pipeline_is_reproducible_across_batch_sizes() {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let sampler = |seed: u64| machine.run(seed).unwrap().metrics.runtime_seconds;

    let serial = Spa::builder().batch_size(1).build().unwrap();
    let parallel = Spa::builder().batch_size(8).build().unwrap();
    let a = serial.run(&sampler, 0, Direction::AtMost).unwrap();
    let b = parallel.run(&sampler, 0, Direction::AtMost).unwrap();
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.interval, b.interval);
}
