//! Replicability guarantees (§5: "We choose to experiment with SPA on
//! simulation data … to ensure replicability"): identical inputs must
//! give bit-identical outputs across every layer.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use spa::core::band::{BandReport, CdfBand};
use spa::core::ci::ci_exact;
use spa::core::ci_engine::SortedSamples;
use spa::core::smc::SmcEngine;
use spa::core::spa::{Direction, Spa};
use spa::sim::batch::batch_map;
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::variability::Variability;
use spa::sim::workload::parsec::Benchmark;

#[test]
fn simulator_runs_are_bit_identical_per_seed() {
    let spec = Benchmark::Dedup.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    for seed in [0, 1, 17, 12345] {
        let a = machine.run(seed).unwrap();
        let b = machine.run(seed).unwrap();
        assert_eq!(a.metrics, b.metrics, "seed {seed} diverged");
    }
}

#[test]
fn different_seeds_differ_only_through_injection() {
    let spec = Benchmark::Canneal.workload_scaled(0.25);
    // With injection disabled, seeds are irrelevant.
    let machine = Machine::new(SystemConfig::table2(), &spec)
        .unwrap()
        .with_variability(Variability::None);
    let a = machine.run(1).unwrap();
    let b = machine.run(2).unwrap();
    assert_eq!(a.metrics, b.metrics);

    // With the paper's injection, seeds matter.
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let a = machine.run(1).unwrap();
    let b = machine.run(2).unwrap();
    assert_ne!(a.metrics.runtime_cycles, b.metrics.runtime_cycles);
}

#[test]
fn workload_structure_is_seed_independent() {
    // §5.2 discipline: the program is fixed; only injected latencies
    // vary. Instruction counts are therefore identical across seeds
    // (they depend only on the op stream, which is identical).
    let spec = Benchmark::Freqmine.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let a = machine.run(100).unwrap();
    let b = machine.run(200).unwrap();
    assert_eq!(a.metrics.instructions, b.metrics.instructions);
}

#[test]
fn spa_report_json_is_byte_identical_across_worker_counts() {
    // The CLI's `--threads` maps onto `Spa`'s batch size; 1 worker vs 8
    // workers with the same seed must produce byte-identical serialized
    // reports — not just equal values — so that cached or archived
    // artifacts (spa-server's result cache, CI baselines) never churn
    // with the executor's parallelism. This locks the worker-count
    // invariance of PR 2 in against the indexed CI engine.
    let spec = Benchmark::Ferret.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let sampler = |seed: u64| machine.run(seed).unwrap().metrics.runtime_seconds;

    let single = Spa::builder().batch_size(1).build().unwrap();
    let eight = Spa::builder().batch_size(8).build().unwrap();
    for seed in [0, 42] {
        let a = single.run(&sampler, seed, Direction::AtMost).unwrap();
        let b = eight.run(&sampler, seed, Direction::AtMost).unwrap();
        let a_json = serde_json::to_vec(&a).unwrap();
        let b_json = serde_json::to_vec(&b).unwrap();
        assert_eq!(a_json, b_json, "seed {seed}: serialized reports diverged");
    }
}

#[test]
fn spa_pipeline_is_reproducible_across_batch_sizes() {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let sampler = |seed: u64| machine.run(seed).unwrap().metrics.runtime_seconds;

    let serial = Spa::builder().batch_size(1).build().unwrap();
    let parallel = Spa::builder().batch_size(8).build().unwrap();
    let a = serial.run(&sampler, 0, Direction::AtMost).unwrap();
    let b = parallel.run(&sampler, 0, Direction::AtMost).unwrap();
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.interval, b.interval);
}

/// One standard normal by Box–Muller (the workspace adds no
/// distribution crates).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[test]
fn dkw_quantile_cis_never_disagree_with_smc_searches() {
    // Differential battery: the DKW band's quantile CI and the
    // per-quantile SMC search (`ci_exact` at proportion q) answer
    // sibling questions — simultaneous vs marginal coverage of the same
    // true quantile at the same confidence — so on any shared sample
    // set the two intervals must overlap. 4 population shapes × 4
    // sample sizes × 20 seeds × 4 quantiles = 1280 seeded cases, and
    // for the median (where both sides are always bounded) the two
    // constructions must also land in the same width regime.
    const CONFIDENCE: f64 = 0.9;
    let sizes = [30usize, 64, 120, 240];
    let qs = [0.25, 0.5, 0.75, 0.9]; // all satisfy Eq. 8 at n >= 30
    let shapes: [(&str, fn(&mut ChaCha8Rng) -> f64); 4] = [
        ("gaussian", |rng| 10.0 + 2.0 * standard_normal(rng)),
        ("bimodal", |rng| {
            let mode = if rng.gen_bool(0.7) { 5.0 } else { 15.0 };
            mode + standard_normal(rng)
        }),
        ("duplicate-heavy", |rng| {
            ((10.0 + 2.0 * standard_normal(rng)) / 2.0).round() * 2.0
        }),
        ("heavy-tailed", |rng| {
            10.0 * (0.75 * standard_normal(rng)).exp()
        }),
    ];

    let mut cases = 0usize;
    let mut band_median_width = 0.0f64;
    let mut smc_median_width = 0.0f64;
    for (shape_idx, &(shape, draw)) in shapes.iter().enumerate() {
        for (size_idx, &n) in sizes.iter().enumerate() {
            for rep in 0..20u64 {
                let seed =
                    0xD1FF_0000 + (shape_idx as u64) * 0x1000 + (size_idx as u64) * 0x100 + rep;
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let xs: Vec<f64> = (0..n).map(|_| draw(&mut rng)).collect();
                let index = SortedSamples::new(&xs).unwrap();
                let band = CdfBand::dkw(&index, CONFIDENCE).unwrap();
                for &q in &qs {
                    let engine = SmcEngine::new(CONFIDENCE, q).unwrap();
                    let smc = ci_exact(&engine, &xs, Direction::AtMost).unwrap();
                    let ci = band.quantile_ci(q).unwrap();
                    let lo = ci.lower.unwrap_or(f64::NEG_INFINITY);
                    let hi = ci.upper.unwrap_or(f64::INFINITY);
                    assert!(
                        lo <= smc.upper() && smc.lower() <= hi,
                        "{shape} n={n} seed={seed} q={q}: disjoint band [{lo}, {hi}] \
                         vs SMC [{}, {}]",
                        smc.lower(),
                        smc.upper()
                    );
                    if q == 0.5 {
                        band_median_width += ci.width();
                        smc_median_width += smc.upper() - smc.lower();
                    }
                    cases += 1;
                }
            }
        }
    }
    assert_eq!(cases, 1280);
    // Width comparability at the median: the band pays for simultaneity
    // with a modestly wider interval (~1.5× in rank space), never a
    // different regime in either direction.
    assert!(band_median_width.is_finite() && smc_median_width > 0.0);
    let ratio = band_median_width / smc_median_width;
    assert!(
        (0.5..=4.0).contains(&ratio),
        "mean median-CI width ratio band/SMC = {ratio:.3} left the comparable regime"
    );
}

#[test]
fn band_report_json_is_byte_identical_across_worker_counts_and_spellings() {
    // The band path inherits the batch runner's worker-count invariance,
    // and canonicalization makes respelled quantile lists the same
    // report: every (jobs, spelling) combination below must serialize to
    // the same bytes, so the server's canonical cache key can treat them
    // as one job.
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let combos: [(usize, Vec<f64>); 3] = [
        (1, vec![0.5, 0.9]),
        (2, vec![0.9, 0.5]),
        (8, vec![0.5, 0.50, 0.9]),
    ];
    let reports: Vec<Vec<u8>> = combos
        .iter()
        .map(|(jobs, quantiles)| {
            let samples = batch_map(24, *jobs, |seed| {
                machine.run(seed).unwrap().metrics.runtime_seconds
            });
            let report = BandReport::from_samples(&samples, 0.9, quantiles, Some(0.95)).unwrap();
            serde_json::to_vec(&report).unwrap()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "jobs 1 vs 2 diverged");
    assert_eq!(
        reports[0], reports[2],
        "jobs 1 vs 8 / respelled list diverged"
    );
}
