//! End-to-end integration: simulator → SMC engine → confidence
//! intervals, exercising the full SPA pipeline across crates.

use spa::core::min_samples::min_samples;
use spa::core::property::MetricProperty;
use spa::core::spa::{Direction, Spa};
use spa::sim::config::SystemConfig;
use spa::sim::machine::Machine;
use spa::sim::metrics::Metric;
use spa::sim::runner::{extract_metric, run_population};
use spa::sim::workload::parsec::Benchmark;
use spa::stats::descriptive::{quantile, QuantileMethod};

#[test]
fn paper_sample_count_constants() {
    // §4.3's published numbers.
    assert_eq!(min_samples(0.9, 0.9).unwrap(), 22);
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    assert_eq!(spa.required_samples(), 22);
}

#[test]
fn spa_interval_from_simulated_population() {
    let spec = Benchmark::Freqmine.workload_scaled(0.25);
    let runs = run_population(SystemConfig::table2(), &spec, 0, 40).unwrap();
    let runtimes = extract_metric(&runs, Metric::RuntimeSeconds);

    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    let ci = spa
        .confidence_interval(&runtimes, Direction::AtMost)
        .unwrap();

    // The interval must be finite, ordered, and inside the sample range.
    assert!(ci.lower().is_finite() && ci.upper().is_finite());
    assert!(ci.lower() <= ci.upper());
    let lo = runtimes.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = runtimes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(ci.lower() >= lo && ci.upper() <= hi);

    // It must contain the sample F-quantile.
    let q = quantile(&runtimes, 0.9, QuantileMethod::LowerRank).unwrap();
    assert!(ci.contains(q), "{ci} should contain {q}");
}

#[test]
fn hypothesis_tests_agree_with_population_extremes() {
    let spec = Benchmark::Streamcluster.workload_scaled(0.25);
    let runs = run_population(SystemConfig::table2(), &spec, 0, 25).unwrap();
    let runtimes = extract_metric(&runs, Metric::RuntimeSeconds);
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();

    let max = runtimes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = runtimes.iter().copied().fold(f64::INFINITY, f64::min);

    // "runtime <= max" holds everywhere → positive; "<= below-min" → negative.
    let always = spa
        .hypothesis_test(&MetricProperty::new(Direction::AtMost, max), &runtimes)
        .unwrap();
    assert_eq!(
        always.assertion,
        Some(spa::core::clopper_pearson::Assertion::Positive)
    );
    let never = spa
        .hypothesis_test(
            &MetricProperty::new(Direction::AtMost, min * 0.5),
            &runtimes,
        )
        .unwrap();
    assert_eq!(
        never.assertion,
        Some(spa::core::clopper_pearson::Assertion::Negative)
    );
}

#[test]
fn coverage_self_check_on_simulated_population() {
    // A miniature version of the paper's §5.4 evaluation: the SPA CI at
    // C = 0.9 must cover the population ground truth in (roughly) at
    // least 90 % of small-sample trials. Uses a reduced population and
    // trial count to stay fast.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let spec = Benchmark::Fluidanimate.workload_scaled(0.25);
    let runs = run_population(SystemConfig::table2(), &spec, 0, 120).unwrap();
    let population = extract_metric(&runs, Metric::RuntimeSeconds);
    let truth = quantile(&population, 0.5, QuantileMethod::LowerRank).unwrap();

    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.5)
        .build()
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut covered = 0;
    let trials = 120;
    let mut idx: Vec<usize> = (0..population.len()).collect();
    for _ in 0..trials {
        let (chosen, _) = idx.partial_shuffle(&mut rng, 22);
        let sample: Vec<f64> = chosen.iter().map(|&i| population[i]).collect();
        let ci = spa.confidence_interval(&sample, Direction::AtMost).unwrap();
        if ci.contains(truth) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / trials as f64;
    assert!(
        coverage >= 0.85,
        "coverage {coverage} too low for C = 0.9 (finite-trial slack allowed)"
    );
}

#[test]
fn l2_doubling_speedup_is_detected() {
    // The §4.2 study at integration scale: 1 MB beats 512 kB on ferret
    // with a speedup interval strictly above 1.
    let workload = Benchmark::Ferret.workload();
    let base = Machine::new(
        SystemConfig::table2().with_l2_capacity(512 * 1024),
        &workload,
    )
    .unwrap();
    let improved = Machine::new(
        SystemConfig::table2().with_l2_capacity(1024 * 1024),
        &workload,
    )
    .unwrap();
    let samples: Vec<f64> = (0..22)
        .map(|seed| {
            let b = base.run(seed).unwrap().metrics.runtime_seconds;
            let i = improved.run(seed).unwrap().metrics.runtime_seconds;
            b / i
        })
        .collect();
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .unwrap();
    let ci = spa
        .confidence_interval(&samples, Direction::AtLeast)
        .unwrap();
    assert!(
        ci.lower() > 1.0,
        "speedup CI {ci} should be strictly above 1"
    );
    assert!(ci.upper() < 2.0, "speedup CI {ci} implausibly large");
}
