#![warn(missing_docs)]

//! # SPA — SMC for Processor Analysis
//!
//! A Rust reproduction of *"Rigorous Evaluation of Computer Processors
//! with Statistical Model Checking"* (MICRO 2023). This facade crate
//! re-exports the workspace members under stable module names:
//!
//! * [`core`] — the SMC engine, Clopper–Pearson confidence, and the SPA
//!   confidence-interval framework (the paper's contribution),
//! * [`stl`] — signal temporal logic properties (the paper's Table 1),
//! * [`stats`] — the numerical statistics substrate,
//! * [`baselines`] — bootstrap / rank-test / Z-score comparison methods,
//! * [`sim`] — the multicore processor simulator substrate used by the
//!   paper's experiments (a gem5 stand-in),
//! * [`server`] — the long-running SMC evaluation service (job queue,
//!   bias-free parallel rounds, result cache),
//! * [`obs`] — the observability layer: tracing spans, the metrics
//!   registry, and latency histograms (always verdict-neutral).
//!
//! See the workspace `README.md` for a tour and `examples/` for runnable
//! entry points.

pub use spa_baselines as baselines;
pub use spa_core as core;
pub use spa_obs as obs;
pub use spa_server as server;
pub use spa_sim as sim;
pub use spa_stats as stats;
pub use spa_stl as stl;
