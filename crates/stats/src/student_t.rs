//! Student's t distribution.
//!
//! The paper's Gaussian baseline uses the Z quantile even at 22 samples;
//! careful practitioners substitute the t quantile, which widens the
//! interval to account for estimating the standard deviation. The
//! `spa-baselines` crate offers both so the bench harness can quantify
//! how much of the Z-score's failure the t correction repairs (spoiler:
//! it fixes the width, not the distributional assumption).

use crate::special::inc_beta;
use crate::{Result, StatsError};

/// Student's t distribution with `nu` degrees of freedom.
///
/// # Examples
///
/// ```
/// use spa_stats::student_t::StudentT;
/// # fn main() -> Result<(), spa_stats::StatsError> {
/// let t = StudentT::new(21.0)?;
/// // The 97.5% t quantile at 21 dof is the classic 2.0796.
/// let q = t.inverse_cdf(0.975)?;
/// assert!((q - 2.0796).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Creates the distribution with `nu > 0` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-positive or
    /// non-finite `nu`.
    pub fn new(nu: f64) -> Result<Self> {
        if !nu.is_finite() || nu <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "nu",
                value: nu,
                expected: "a finite value > 0",
            });
        }
        Ok(Self { nu })
    }

    /// Degrees of freedom.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Cumulative distribution function `P(T ≤ t)` via the incomplete
    /// beta identity.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.nu / (self.nu + t * t);
        let tail = 0.5 * inc_beta(self.nu / 2.0, 0.5, x).expect("valid parameters");
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Inverse CDF (quantile) by bisection on the symmetric CDF.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p ∉ (0, 1)`.
    pub fn inverse_cdf(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                expected: "a value in (0, 1)",
            });
        }
        if (p - 0.5).abs() < 1e-15 {
            return Ok(0.0);
        }
        // Symmetry: solve for the upper tail and mirror.
        let upper = p >= 0.5;
        let p = if upper { p } else { 1.0 - p };
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * hi.max(1.0) {
                break;
            }
        }
        let t = 0.5 * (lo + hi);
        Ok(if upper { t } else { -t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_dof() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-3.0).is_err());
        assert!(StudentT::new(f64::NAN).is_err());
        assert_eq!(StudentT::new(5.0).unwrap().nu(), 5.0);
    }

    #[test]
    fn classic_table_values() {
        // (nu, p, t) triples from standard t tables.
        for &(nu, p, expect) in &[
            (1.0, 0.975, 12.706),
            (5.0, 0.975, 2.571),
            (10.0, 0.95, 1.812),
            (21.0, 0.975, 2.080),
            (21.0, 0.95, 1.721),
            (100.0, 0.975, 1.984),
        ] {
            let t = StudentT::new(nu).unwrap().inverse_cdf(p).unwrap();
            assert!(
                (t - expect).abs() < 2e-3 * expect,
                "nu={nu} p={p}: {t} vs {expect}"
            );
        }
    }

    #[test]
    fn symmetry() {
        let t = StudentT::new(7.0).unwrap();
        for &x in &[0.3, 1.0, 2.5] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-10);
        }
        assert_eq!(t.cdf(0.0), 0.5);
        assert!((t.inverse_cdf(0.2).unwrap() + t.inverse_cdf(0.8).unwrap()).abs() < 1e-8);
    }

    #[test]
    fn approaches_normal_for_large_dof() {
        let t = StudentT::new(10_000.0).unwrap();
        let q = t.inverse_cdf(0.975).unwrap();
        assert!((q - 1.96).abs() < 5e-3, "{q}");
    }

    #[test]
    fn heavier_tails_than_normal_at_small_dof() {
        let t5 = StudentT::new(5.0).unwrap().inverse_cdf(0.975).unwrap();
        let t21 = StudentT::new(21.0).unwrap().inverse_cdf(0.975).unwrap();
        assert!(t5 > t21);
        assert!(t21 > 1.96);
    }

    #[test]
    fn quantile_domain_checked() {
        let t = StudentT::new(3.0).unwrap();
        assert!(t.inverse_cdf(0.0).is_err());
        assert!(t.inverse_cdf(1.0).is_err());
    }

    proptest! {
        #[test]
        fn round_trip(nu in 1.0_f64..200.0, p in 0.01_f64..0.99) {
            let t = StudentT::new(nu).unwrap();
            let x = t.inverse_cdf(p).unwrap();
            prop_assert!((t.cdf(x) - p).abs() < 1e-6, "nu={nu} p={p} x={x}");
        }

        #[test]
        fn cdf_monotone(nu in 0.5_f64..100.0, a in -10.0_f64..10.0, d in 0.0_f64..5.0) {
            let t = StudentT::new(nu).unwrap();
            prop_assert!(t.cdf(a + d) >= t.cdf(a) - 1e-12);
        }
    }
}
