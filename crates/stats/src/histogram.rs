//! Fixed-bin histograms.
//!
//! Figures 1 and 2 of the paper are runtime histograms; the bench harness
//! uses this module to bin populations and render them as ASCII so that
//! "the shape" (bi-modality, skew) is visible directly in terminal output.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed range with equally sized bins.
///
/// Values outside the configured range are **not** folded into the edge
/// bins — they are tallied in separate [`underflow`](Self::underflow) and
/// [`overflow`](Self::overflow) counters so that bin counts (and anything
/// built on them, like [`mode_bin`](Self::mode_bin)) describe only
/// in-range observations. [`total`](Self::total) likewise counts in-range
/// observations only; [`observed`](Self::observed) adds the out-of-range
/// tallies back in, so no observation is silently dropped.
///
/// # Examples
///
/// ```
/// use spa_stats::histogram::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 6.0, 9.9, -2.0] {
///     h.record(x);
/// }
/// assert_eq!(h.total(), 4); // in-range only
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.observed(), 5);
/// assert_eq!(h.counts()[0], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    #[serde(default)]
    underflow: u64,
    #[serde(default)]
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "histogram range must be finite and non-empty"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram whose range covers the data with `bins` bins.
    ///
    /// Returns `None` for empty data. A degenerate (constant) data set
    /// gets a tiny symmetric range around the value.
    pub fn from_data(data: &[f64], bins: usize) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            // Widen the top edge slightly so the max lands inside.
            (lo, hi + (hi - lo) * 1e-9)
        };
        let mut h = Self::new(lo, hi, bins);
        for &x in data {
            h.record(x);
        }
        Some(h)
    }

    /// Records one observation.
    ///
    /// Observations below `lo` increment [`underflow`](Self::underflow),
    /// observations at or above `hi` increment
    /// [`overflow`](Self::overflow); neither touches any bin, so edge-bin
    /// counts stay faithful to the configured range.
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * bins as f64) as usize).min(bins - 1);
            self.counts[idx] += 1;
        }
    }

    /// Bin counts, in ascending bin order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations that fell below the configured range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations that fell at or above the configured range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of **in-range** recorded observations (the sum of all
    /// bin counts). Out-of-range observations are excluded; see
    /// [`observed`](Self::observed) for the grand total.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total number of observations ever recorded, in-range or not:
    /// `total() + underflow() + overflow()`.
    pub fn observed(&self) -> u64 {
        self.total() + self.underflow + self.overflow
    }

    /// `(low, high)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Renders the histogram as ASCII rows `low..high | ####` with the
    /// widest bar spanning `width` characters.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("{lo:>12.4} ..{hi:>12.4} | {bar} {c}\n"));
        }
        out
    }

    /// Index of the most populated bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("histogram has at least one bin")
    }

    /// Counts the local maxima of the (lightly smoothed) bin profile —
    /// a crude modality detector used in tests to confirm that the Fig. 1
    /// "real machine" population really is multi-modal.
    pub fn count_modes(&self, min_prominence: u64) -> usize {
        let c = &self.counts;
        let mut modes = 0;
        for i in 0..c.len() {
            let left = if i == 0 { 0 } else { c[i - 1] };
            let right = if i + 1 == c.len() { 0 } else { c[i + 1] };
            if c[i] > left && c[i] >= right && c[i] >= min_prominence {
                modes += 1;
            }
        }
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(9.999);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_is_tracked_separately() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(42.0);
        h.record(0.5);
        // Edge bins are untouched by out-of-range values.
        assert_eq!(h.counts()[0], 0);
        assert_eq!(h.counts()[3], 0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 1, "total() is in-range only");
        assert_eq!(h.observed(), 3);
    }

    #[test]
    fn top_edge_is_exclusive_and_counts_as_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(1.0); // hi itself is out of the half-open range
        assert_eq!(h.total(), 0);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn out_of_range_does_not_disturb_mode_detection() {
        let mut h = Histogram::new(0.0, 6.0, 6);
        for x in [1.1, 1.2, 4.1, 4.2, 4.3] {
            h.record(x);
        }
        // A storm of out-of-range values used to inflate the edge bins
        // and fabricate modes there.
        for _ in 0..100 {
            h.record(-1.0);
            h.record(99.0);
        }
        assert_eq!(h.mode_bin(), 4);
        assert_eq!(h.count_modes(2), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn from_data_covers_everything() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let h = Histogram::from_data(&data, 8).unwrap();
        assert_eq!(h.total(), data.len() as u64);
        assert!(Histogram::from_data(&[], 4).is_none());
    }

    #[test]
    fn from_data_constant_input() {
        let h = Histogram::from_data(&[2.0, 2.0, 2.0], 3).unwrap();
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_bounds_partition_range() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn ascii_render_has_one_row_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(1.0);
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    fn mode_detection() {
        // Bimodal profile: peaks at bins 1 and 4.
        let mut h = Histogram::new(0.0, 6.0, 6);
        for x in [1.1, 1.2, 1.3, 4.1, 4.2, 4.3, 4.4] {
            h.record(x);
        }
        assert_eq!(h.count_modes(2), 2);
        assert_eq!(h.mode_bin(), 4);
    }
}
