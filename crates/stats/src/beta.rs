//! The beta distribution.
//!
//! The Clopper–Pearson exact confidence in the SPA paper (Eq. 4) is written
//! in terms of `B(x | a, b)`, the CDF of a Beta(a, b) distribution. This
//! module wraps the special functions of [`crate::special`] in a
//! distribution object.

use crate::special::{inc_beta, inv_inc_beta, ln_beta};
use crate::{Result, StatsError};

/// A beta distribution with shape parameters `alpha` and `beta`.
///
/// # Examples
///
/// ```
/// use spa_stats::beta::BetaDist;
/// # fn main() -> Result<(), spa_stats::StatsError> {
/// let b = BetaDist::new(2.0, 2.0)?;
/// assert!((b.mean() - 0.5).abs() < 1e-15);
/// assert!((b.cdf(0.5) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDist {
    alpha: f64,
    beta: f64,
}

impl BetaDist {
    /// Creates a beta distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both shape
    /// parameters are finite and strictly positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                expected: "a finite value > 0",
            });
        }
        if !beta.is_finite() || beta <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "beta",
                value: beta,
                expected: "a finite value > 0",
            });
        }
        Ok(Self { alpha, beta })
    }

    /// The `alpha` shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The `beta` shape parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mean of the distribution: `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// Probability density function at `x`.
    ///
    /// Returns `0` outside `[0, 1]`.
    pub fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if x == 0.0 || x == 1.0 {
            // Handle boundary densities explicitly to avoid 0^0 issues.
            return match (x == 0.0, self.alpha, self.beta) {
                (true, a, _) if a < 1.0 => f64::INFINITY,
                (true, a, _) if a > 1.0 => 0.0,
                (false, _, b) if b < 1.0 => f64::INFINITY,
                (false, _, b) if b > 1.0 => 0.0,
                _ => ((self.alpha - 1.0) * 0.0 - ln_beta(self.alpha, self.beta)).exp(),
            };
        }
        ((self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta))
        .exp()
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    ///
    /// This is the `B(x | α, β)` of the SPA paper's Eq. 4. Values of `x`
    /// below 0 or above 1 clamp to 0 and 1 respectively.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            // Parameters were validated in `new`; x is now in (0, 1).
            inc_beta(self.alpha, self.beta, x).expect("validated beta cdf")
        }
    }

    /// Inverse CDF (quantile function).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p ∉ [0, 1]`.
    pub fn inverse_cdf(&self, p: f64) -> Result<f64> {
        inv_inc_beta(self.alpha, self.beta, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_shapes() {
        assert!(BetaDist::new(0.0, 1.0).is_err());
        assert!(BetaDist::new(1.0, -2.0).is_err());
        assert!(BetaDist::new(f64::INFINITY, 1.0).is_err());
        assert!(BetaDist::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn moments() {
        let b = BetaDist::new(2.0, 6.0).unwrap();
        assert!((b.mean() - 0.25).abs() < 1e-15);
        assert!((b.variance() - 2.0 * 6.0 / (64.0 * 9.0)).abs() < 1e-15);
        assert_eq!(b.alpha(), 2.0);
        assert_eq!(b.beta(), 6.0);
    }

    #[test]
    fn cdf_clamps_outside_support() {
        let b = BetaDist::new(3.0, 4.0).unwrap();
        assert_eq!(b.cdf(-0.5), 0.0);
        assert_eq!(b.cdf(1.5), 1.0);
    }

    #[test]
    fn pdf_outside_support_is_zero() {
        let b = BetaDist::new(3.0, 4.0).unwrap();
        assert_eq!(b.pdf(-0.1), 0.0);
        assert_eq!(b.pdf(1.1), 0.0);
    }

    #[test]
    fn pdf_boundaries() {
        // α < 1 ⇒ density blows up at 0.
        assert!(BetaDist::new(0.5, 2.0).unwrap().pdf(0.0).is_infinite());
        // α > 1 ⇒ density 0 at 0.
        assert_eq!(BetaDist::new(2.0, 2.0).unwrap().pdf(0.0), 0.0);
        // β < 1 ⇒ density blows up at 1.
        assert!(BetaDist::new(2.0, 0.5).unwrap().pdf(1.0).is_infinite());
    }

    #[test]
    fn cdf_known_value() {
        // Beta(2,3): CDF(x) = 6x^2/2 - 8x^3/... easier: I_x(2,3) = x^2(6-8x+3x^2)
        let b = BetaDist::new(2.0, 3.0).unwrap();
        let x: f64 = 0.4;
        let expect = x * x * (6.0 - 8.0 * x + 3.0 * x * x);
        assert!((b.cdf(x) - expect).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn quantile_round_trip(a in 0.3_f64..30.0, b in 0.3_f64..30.0, p in 0.001_f64..0.999) {
            let d = BetaDist::new(a, b).unwrap();
            let x = d.inverse_cdf(p).unwrap();
            prop_assert!((d.cdf(x) - p).abs() < 1e-8);
        }

        #[test]
        fn pdf_integrates_to_cdf_diff(a in 0.5_f64..10.0, b in 0.5_f64..10.0) {
            // Trapezoidal integral of pdf over [0.2, 0.8] ≈ CDF(0.8) − CDF(0.2).
            let d = BetaDist::new(a, b).unwrap();
            let n = 2000;
            let (lo, hi) = (0.2, 0.8);
            let h = (hi - lo) / n as f64;
            let mut integral = 0.5 * (d.pdf(lo) + d.pdf(hi));
            for i in 1..n {
                integral += d.pdf(lo + i as f64 * h);
            }
            integral *= h;
            let diff = d.cdf(hi) - d.cdf(lo);
            prop_assert!((integral - diff).abs() < 1e-5, "{integral} vs {diff}");
        }
    }
}
