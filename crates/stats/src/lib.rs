#![warn(missing_docs)]

//! Numerical statistics substrate for the SPA framework.
//!
//! The SPA paper ("Rigorous Evaluation of Computer Processors with
//! Statistical Model Checking", MICRO 2023) relies on a handful of
//! numerical building blocks: the regularized incomplete beta function
//! (for the Clopper–Pearson exact confidence of Eq. 4), the normal
//! distribution (for the Z-score baseline and the BCa bootstrap), the
//! binomial distribution (for rank-based confidence intervals) and plain
//! descriptive statistics (means, coefficients of variation, empirical
//! quantiles). This crate implements all of them from scratch so the rest
//! of the workspace has no numerical dependencies.
//!
//! # Example
//!
//! ```
//! use spa_stats::beta::BetaDist;
//! use spa_stats::descriptive::{mean, quantile, QuantileMethod};
//!
//! # fn main() -> Result<(), spa_stats::StatsError> {
//! let b = BetaDist::new(2.0, 3.0)?;
//! assert!((b.cdf(0.5) - 0.6875).abs() < 1e-12);
//!
//! let xs = [4.0, 1.0, 3.0, 2.0];
//! assert_eq!(mean(&xs), 2.5);
//! assert_eq!(quantile(&xs, 0.5, QuantileMethod::Linear)?, 2.5);
//! # Ok(())
//! # }
//! ```

pub mod beta;
pub mod binomial;
pub mod descriptive;
pub mod histogram;
pub mod normal;
pub mod special;
pub mod student_t;
pub mod summary;

mod error;

pub use error::StatsError;

/// Convenience alias used by fallible functions in this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
