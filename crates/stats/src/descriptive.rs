//! Descriptive statistics over slices of `f64`.
//!
//! The paper reports coefficients of variation (§6), empirical quantiles
//! used as population ground truth (§5.3), and sample means for the
//! Z-score baseline. All of those live here.

use crate::{Result, StatsError};

/// Arithmetic mean. Returns `NaN` for an empty slice (mirrors the
/// convention of `f64` reductions); use [`try_mean`] to get an error
/// instead.
///
/// # Examples
///
/// ```
/// use spa_stats::descriptive::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Returns the index of the first NaN in `xs`, as an error.
fn check_no_nan(xs: &[f64]) -> Result<()> {
    match xs.iter().position(|x| x.is_nan()) {
        Some(index) => Err(StatsError::NonFiniteData { index }),
        None => Ok(()),
    }
}

/// Arithmetic mean, failing on empty or NaN-containing input.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] if `xs` is empty and
/// [`StatsError::NonFiniteData`] if it contains a NaN (which would
/// silently poison the result).
pub fn try_mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyData);
    }
    check_no_nan(xs)?;
    Ok(mean(xs))
}

/// Coefficient of variation, failing instead of returning `NaN`: the
/// checked counterpart of [`coefficient_of_variation`].
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input,
/// [`StatsError::NonFiniteData`] if the input contains a NaN, and
/// [`StatsError::InvalidParameter`] for fewer than two data points or a
/// zero mean (where the ratio is undefined).
pub fn try_coefficient_of_variation(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyData);
    }
    check_no_nan(xs)?;
    if xs.len() < 2 {
        return Err(StatsError::InvalidParameter {
            name: "xs.len()",
            value: xs.len() as f64,
            expected: "at least two data points",
        });
    }
    let m = mean(xs);
    if m == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "mean",
            value: 0.0,
            expected: "a nonzero mean (CV is stddev/mean)",
        });
    }
    Ok(sample_stddev(xs) / m)
}

/// Unbiased sample variance (divides by `n − 1`).
///
/// Returns `NaN` for fewer than two data points.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
///
/// Returns `NaN` for fewer than two data points.
pub fn sample_stddev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Coefficient of variation: standard deviation divided by the mean
/// (§6 of the paper reports these per metric/benchmark).
///
/// Returns `NaN` for fewer than two points or a zero mean.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return f64::NAN;
    }
    sample_stddev(xs) / m
}

/// How an empirical quantile interpolates between order statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantileMethod {
    /// Linear interpolation between closest ranks (R type 7, the default
    /// of NumPy/SciPy — what the paper's Python tooling used).
    #[default]
    Linear,
    /// Lower of the two closest order statistics (R type 1): the largest
    /// data point `x` such that at least a fraction `q` of the data is
    /// `≤ x`. This is the natural match for SMC's proportion semantics,
    /// where ground truth is "the value below which F of the population
    /// falls" (§5.3).
    LowerRank,
    /// The nearest order statistic.
    Nearest,
}

/// Empirical `q`-quantile of `xs`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input,
/// [`StatsError::InvalidParameter`] if `q ∉ [0, 1]`, and
/// [`StatsError::NonFiniteData`] if the input contains a NaN (an
/// order statistic of unorderable data is meaningless).
///
/// # Examples
///
/// ```
/// use spa_stats::descriptive::{quantile, QuantileMethod};
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5, QuantileMethod::Linear)?, 2.5);
/// assert_eq!(quantile(&xs, 0.5, QuantileMethod::LowerRank)?, 2.0);
/// assert!(quantile(&[1.0, f64::NAN], 0.5, QuantileMethod::Linear).is_err());
/// # Ok::<(), spa_stats::StatsError>(())
/// ```
pub fn quantile(xs: &[f64], q: f64, method: QuantileMethod) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyData);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            value: q,
            expected: "a value in [0, 1]",
        });
    }
    check_no_nan(xs)?;
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&sorted, q, method))
}

/// Empirical `q`-quantile of already-sorted data (ascending).
///
/// Skips the sort; useful when taking many quantiles of one population.
/// `q` must be in `[0, 1]` and `sorted` non-empty (checked by
/// `debug_assert!`).
pub fn quantile_sorted(sorted: &[f64], q: f64, method: QuantileMethod) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    match method {
        QuantileMethod::Linear => {
            let h = (n as f64 - 1.0) * q;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
            }
        }
        QuantileMethod::LowerRank => {
            if q == 0.0 {
                sorted[0]
            } else {
                let k = (q * n as f64).ceil() as usize;
                sorted[k.clamp(1, n) - 1]
            }
        }
        QuantileMethod::Nearest => {
            let h = (n as f64 - 1.0) * q;
            sorted[h.round() as usize]
        }
    }
}

/// Minimum of a slice, `NaN` if empty.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum of a slice, `NaN` if empty.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Median (linear interpolation).
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input and
/// [`StatsError::NonFiniteData`] if the input contains a NaN.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5, QuantileMethod::Linear)
}

/// Fraction of data points `x` for which `x ≤ threshold`.
///
/// This is the empirical satisfaction proportion of the property
/// "metric ≤ threshold" — the `M/N` of the paper's Eq. 3 for a
/// less-than property.
pub fn proportion_at_or_below(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().filter(|&&x| x <= threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        // population variance is 4; sample variance = 32/7
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(mean(&[]).is_nan());
        assert!(try_mean(&[]).is_err());
        assert!(sample_variance(&[1.0]).is_nan());
        assert!(quantile(&[], 0.5, QuantileMethod::Linear).is_err());
        assert!(median(&[]).is_err());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(proportion_at_or_below(&[], 0.0).is_nan());
    }

    #[test]
    fn quantile_linear_matches_numpy() {
        // numpy.quantile([1,2,3,4,5], 0.25) == 2.0
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.25, QuantileMethod::Linear).unwrap(), 2.0);
        assert_eq!(quantile(&xs, 0.0, QuantileMethod::Linear).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0, QuantileMethod::Linear).unwrap(), 5.0);
        // numpy.quantile([1,2,3,4], 0.9) == 3.7000000000000002
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&ys, 0.9, QuantileMethod::Linear).unwrap() - 3.7).abs() < 1e-12);
    }

    #[test]
    fn quantile_lower_rank() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.0, QuantileMethod::LowerRank).unwrap(), 10.0);
        assert_eq!(quantile(&xs, 0.2, QuantileMethod::LowerRank).unwrap(), 10.0);
        assert_eq!(
            quantile(&xs, 0.21, QuantileMethod::LowerRank).unwrap(),
            20.0
        );
        assert_eq!(quantile(&xs, 0.5, QuantileMethod::LowerRank).unwrap(), 30.0);
        assert_eq!(quantile(&xs, 0.9, QuantileMethod::LowerRank).unwrap(), 50.0);
        assert_eq!(quantile(&xs, 1.0, QuantileMethod::LowerRank).unwrap(), 50.0);
    }

    #[test]
    fn quantile_nearest() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.4, QuantileMethod::Nearest).unwrap(), 2.0);
        assert_eq!(quantile(&xs, 0.95, QuantileMethod::Nearest).unwrap(), 3.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs).unwrap(), 3.0);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert!(quantile(&[1.0], -0.1, QuantileMethod::Linear).is_err());
        assert!(quantile(&[1.0], 1.1, QuantileMethod::Linear).is_err());
    }

    #[test]
    fn nan_inputs_are_rejected_with_index() {
        let poisoned = [1.0, 2.0, f64::NAN, 4.0];
        assert_eq!(
            quantile(&poisoned, 0.5, QuantileMethod::Linear),
            Err(StatsError::NonFiniteData { index: 2 })
        );
        assert_eq!(
            median(&poisoned),
            Err(StatsError::NonFiniteData { index: 2 })
        );
        assert_eq!(
            try_mean(&poisoned),
            Err(StatsError::NonFiniteData { index: 2 })
        );
        assert_eq!(
            try_coefficient_of_variation(&poisoned),
            Err(StatsError::NonFiniteData { index: 2 })
        );
        // Infinities are orderable and still admitted — only NaN poisons.
        assert!(quantile(&[1.0, f64::INFINITY], 0.5, QuantileMethod::Linear).is_ok());
    }

    #[test]
    fn try_cv_matches_unchecked_on_clean_data() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(
            try_coefficient_of_variation(&xs).unwrap(),
            coefficient_of_variation(&xs)
        );
        assert!(try_coefficient_of_variation(&[]).is_err());
        assert!(try_coefficient_of_variation(&[1.0]).is_err());
        assert!(try_coefficient_of_variation(&[-1.0, 1.0]).is_err()); // zero mean
    }

    #[test]
    fn cv_definition() {
        let xs = [1.0, 2.0, 3.0];
        let cv = coefficient_of_variation(&xs);
        assert!((cv - 1.0 / 2.0).abs() < 1e-12);
        assert!(coefficient_of_variation(&[0.0, 0.0]).is_nan());
    }

    #[test]
    fn proportion_semantics() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(proportion_at_or_below(&xs, 2.0), 0.75);
        assert_eq!(proportion_at_or_below(&xs, 0.5), 0.0);
        assert_eq!(proportion_at_or_below(&xs, 3.0), 1.0);
    }

    proptest! {
        #[test]
        fn quantile_within_range(mut xs in proptest::collection::vec(-1e6_f64..1e6, 1..100),
                                 q in 0.0_f64..=1.0) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for method in [QuantileMethod::Linear, QuantileMethod::LowerRank, QuantileMethod::Nearest] {
                let v = quantile_sorted(&xs, q, method);
                prop_assert!(v >= xs[0] && v <= xs[xs.len() - 1]);
            }
        }

        #[test]
        fn lower_rank_quantile_satisfies_proportion(
            mut xs in proptest::collection::vec(-1e3_f64..1e3, 1..100),
            q in 0.01_f64..1.0,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let v = quantile_sorted(&xs, q, QuantileMethod::LowerRank);
            // At least q of the data lies at or below the LowerRank quantile.
            prop_assert!(proportion_at_or_below(&xs, v) >= q - 1e-12);
        }

        #[test]
        fn mean_bounded_by_min_max(xs in proptest::collection::vec(-1e6_f64..1e6, 1..100)) {
            let m = mean(&xs);
            prop_assert!(m >= min(&xs) - 1e-9 && m <= max(&xs) + 1e-9);
        }
    }
}
