//! The normal (Gaussian) distribution.
//!
//! Used by the Z-score confidence-interval baseline (§2.4 / §6.1 of the
//! paper) and by the bias-corrected accelerated (BCa) bootstrap, which
//! needs `Φ` and `Φ⁻¹`.

use crate::special::erf;
use crate::{Result, StatsError};

/// A normal distribution `N(mean, sd²)`.
///
/// # Examples
///
/// ```
/// use spa_stats::normal::Normal;
/// # fn main() -> Result<(), spa_stats::StatsError> {
/// let n = Normal::standard();
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-8);
/// let z = Normal::standard().inverse_cdf(0.975)?;
/// assert!((z - 1.959963984540054).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sd` is not finite and
    /// strictly positive, or if `mean` is not finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                expected: "a finite value",
            });
        }
        if !sd.is_finite() || sd <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sd",
                value: sd,
                expected: "a finite value > 0",
            });
        }
        Ok(Self { mean, sd })
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-(z * z) / 2.0).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `Φ((x − μ)/σ)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Inverse CDF (quantile) using Acklam's rational approximation with
    /// one Halley refinement step; accurate to ~1e-9.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p ∉ (0, 1)`.
    pub fn inverse_cdf(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                expected: "a value in (0, 1)",
            });
        }
        Ok(self.mean + self.sd * standard_normal_quantile(p))
    }
}

/// Acklam's inverse-normal approximation for `p ∈ (0, 1)`.
fn standard_normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-accuracy CDF expansion.
    let e = 0.5 * erfc_hp(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// High-precision complementary error function via series/continued
/// fraction split (used only to polish the normal quantile).
fn erfc_hp(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn standard_quantiles_match_tables() {
        let n = Normal::standard();
        // Classic z-values.
        for &(p, z) in &[
            (0.5, 0.0),
            (0.8413447460685429, 1.0),
            (0.975, 1.959963984540054),
            (0.95, 1.6448536269514722),
            (0.995, 2.5758293035489004),
            (0.9995, 3.2905267314919255),
        ] {
            let q = n.inverse_cdf(p).unwrap();
            assert!((q - z).abs() < 1e-7, "p={p}: {q} vs {z}");
        }
    }

    #[test]
    fn cdf_symmetry() {
        let n = Normal::standard();
        for &x in &[0.1, 0.7, 1.3, 2.5] {
            assert!((n.cdf(x) + n.cdf(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn scaled_distribution() {
        let n = Normal::new(10.0, 2.0).unwrap();
        assert_eq!(n.mean(), 10.0);
        assert_eq!(n.sd(), 2.0);
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-8);
        assert!((n.inverse_cdf(0.5).unwrap() - 10.0).abs() < 1e-5);
        // pdf peak value 1/(σ√(2π))
        assert!((n.pdf(10.0) - 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn inverse_cdf_rejects_boundary() {
        let n = Normal::standard();
        assert!(n.inverse_cdf(0.0).is_err());
        assert!(n.inverse_cdf(1.0).is_err());
        assert!(n.inverse_cdf(-0.5).is_err());
    }

    proptest! {
        #[test]
        fn quantile_round_trip(p in 0.0001_f64..0.9999) {
            let n = Normal::standard();
            let x = n.inverse_cdf(p).unwrap();
            prop_assert!((n.cdf(x) - p).abs() < 1e-5, "p={p} x={x} cdf={}", n.cdf(x));
        }

        #[test]
        fn cdf_monotone(x in -5.0_f64..5.0, dx in 0.0_f64..3.0) {
            let n = Normal::standard();
            prop_assert!(n.cdf(x + dx) >= n.cdf(x) - 1e-12);
        }
    }
}
