use std::fmt;

/// Error type for numerical-statistics operations.
///
/// Every fallible function in this crate returns this error. It is
/// deliberately small: statistics code either receives a parameter outside
/// its mathematical domain, is asked to operate on an empty data set, or an
/// iterative scheme fails to converge.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution or function parameter lies outside its domain,
    /// e.g. a beta shape parameter that is not strictly positive.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted domain.
        expected: &'static str,
    },
    /// The operation needs at least one data point but the input was empty.
    EmptyData,
    /// The input contains a NaN, which would silently poison the result
    /// (every comparison and arithmetic reduction propagates it).
    NonFiniteData {
        /// Index of the first NaN in the input slice.
        index: usize,
    },
    /// An iterative numerical scheme (continued fraction, root finder)
    /// failed to converge within its iteration budget.
    NoConvergence {
        /// Which algorithm failed.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            StatsError::EmptyData => write!(f, "empty data set"),
            StatsError::NonFiniteData { index } => {
                write!(f, "input contains NaN at index {index}")
            }
            StatsError::NoConvergence { what } => {
                write!(f, "{what} failed to converge")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::InvalidParameter {
            name: "alpha",
            value: -1.0,
            expected: "a finite value > 0",
        };
        let s = e.to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("-1"));

        assert_eq!(StatsError::EmptyData.to_string(), "empty data set");
        assert!(StatsError::NonFiniteData { index: 3 }
            .to_string()
            .contains("index 3"));
        assert!(StatsError::NoConvergence { what: "betacf" }
            .to_string()
            .contains("betacf"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
