//! The binomial distribution.
//!
//! SMC treats each execution's property outcome as a Bernoulli trial, so
//! the count `M` of satisfying executions among `N` samples is
//! `Binom(N, p)` (paper §3.3). The rank-test baseline also needs binomial
//! CDFs to select order statistics for a quantile confidence interval.

use crate::special::{inc_beta, ln_gamma};
use crate::{Result, StatsError};

/// A binomial distribution with `n` trials and success probability `p`.
///
/// # Examples
///
/// ```
/// use spa_stats::binomial::Binomial;
/// # fn main() -> Result<(), spa_stats::StatsError> {
/// let b = Binomial::new(10, 0.5)?;
/// assert!((b.pmf(5) - 0.24609375).abs() < 1e-12);
/// assert!((b.cdf(10) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p ∉ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                expected: "a value in [0, 1]",
            });
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the binomial coefficient `C(n, k)`.
    fn ln_choose(n: u64, k: u64) -> f64 {
        ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
    }

    /// Probability mass function `P(X = k)`.
    ///
    /// Returns `0` for `k > n`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        (Self::ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln())
        .exp()
    }

    /// Cumulative distribution function `P(X ≤ k)`.
    ///
    /// Uses the identity `P(X ≤ k) = I_{1−p}(n−k, k+1)` so the result is
    /// accurate even for large `n`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n and all mass sits at n
        }
        inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p).expect("validated binomial cdf")
    }

    /// Survival function `P(X > k)`.
    pub fn sf(&self, k: u64) -> f64 {
        1.0 - self.cdf(k)
    }

    /// Smallest `k` such that `P(X ≤ k) ≥ q` (the quantile function).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<u64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter {
                name: "q",
                value: q,
                expected: "a value in [0, 1]",
            });
        }
        // Binary search on the monotone CDF.
        let (mut lo, mut hi) = (0_u64, self.n);
        if self.cdf(0) >= q {
            return Ok(0);
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= q {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3).unwrap();
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let b0 = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(3), 0.0);
        assert_eq!(b0.cdf(0), 1.0);

        let b1 = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b1.pmf(5), 1.0);
        assert_eq!(b1.pmf(2), 0.0);
        assert_eq!(b1.cdf(4), 0.0);
        assert_eq!(b1.cdf(5), 1.0);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(22, 0.9).unwrap();
        for k in 0..=22_u64 {
            let manual: f64 = (0..=k).map(|j| b.pmf(j)).sum();
            assert!(
                (b.cdf(k) - manual).abs() < 1e-10,
                "k={k}: {} vs {manual}",
                b.cdf(k)
            );
        }
    }

    #[test]
    fn moments() {
        let b = Binomial::new(100, 0.25).unwrap();
        assert!((b.mean() - 25.0).abs() < 1e-12);
        assert!((b.variance() - 18.75).abs() < 1e-12);
        assert_eq!(b.n(), 100);
        assert_eq!(b.p(), 0.25);
    }

    #[test]
    fn quantile_is_smallest_k() {
        let b = Binomial::new(22, 0.5).unwrap();
        let k = b.quantile(0.5).unwrap();
        assert!(b.cdf(k) >= 0.5);
        assert!(k == 0 || b.cdf(k - 1) < 0.5);
        assert!(b.quantile(1.5).is_err());
    }

    #[test]
    fn pmf_beyond_n_is_zero() {
        let b = Binomial::new(4, 0.5).unwrap();
        assert_eq!(b.pmf(5), 0.0);
    }

    proptest! {
        #[test]
        fn cdf_monotone(n in 1_u64..200, p in 0.0_f64..=1.0, k in 0_u64..200) {
            let b = Binomial::new(n, p).unwrap();
            let k = k % (n + 1);
            if k > 0 {
                prop_assert!(b.cdf(k) >= b.cdf(k - 1) - 1e-12);
            }
            prop_assert!((0.0..=1.0 + 1e-12).contains(&b.cdf(k)));
        }

        #[test]
        fn quantile_inverts_cdf(n in 1_u64..100, p in 0.05_f64..0.95, q in 0.01_f64..0.99) {
            let b = Binomial::new(n, p).unwrap();
            let k = b.quantile(q).unwrap();
            prop_assert!(b.cdf(k) >= q - 1e-12);
            if k > 0 {
                prop_assert!(b.cdf(k - 1) < q + 1e-12);
            }
        }
    }
}
