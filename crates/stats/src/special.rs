//! Special functions: log-gamma, regularized incomplete beta, and the
//! error function.
//!
//! These are the numerical primitives behind every distribution in this
//! crate. The Clopper–Pearson confidence of the SPA paper (Eq. 4) is a
//! difference of two beta CDFs, which reduce to [`inc_beta`].

use crate::{Result, StatsError};

/// Lanczos coefficients (g = 7, n = 9), good to ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`; accurate
/// to roughly 14–15 significant digits over the whole positive axis.
///
/// # Examples
///
/// ```
/// use spa_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics in debug builds if `x` is NaN; for non-positive integers the
/// result is infinite (the gamma function has poles there).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(!x.is_nan(), "ln_gamma(NaN)");
    if x <= 0.0 && x == x.floor() {
        return f64::INFINITY; // pole at non-positive integers
    }
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS_COEF[0];
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + LANCZOS_G + 0.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Natural logarithm of the beta function, `ln B(a, b)`.
///
/// # Examples
///
/// ```
/// use spa_stats::special::ln_beta;
/// // B(1, 1) = 1
/// assert!(ln_beta(1.0, 1.0).abs() < 1e-14);
/// ```
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

const MAX_CF_ITER: usize = 300;
const CF_EPS: f64 = 1e-15;
const CF_TINY: f64 = 1e-300;

/// Continued-fraction evaluation for the incomplete beta function
/// (modified Lentz algorithm, as in Numerical Recipes `betacf`).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < CF_TINY {
        d = CF_TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_CF_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < CF_TINY {
            d = CF_TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < CF_TINY {
            c = CF_TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < CF_TINY {
            d = CF_TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < CF_TINY {
            c = CF_TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < CF_EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence {
        what: "incomplete beta continued fraction",
    })
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// `I_x(a, b)` is the CDF of the Beta(a, b) distribution evaluated at `x`;
/// it is what the SPA paper writes as `B(x | a, b)` in Eq. 4.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `a ≤ 0`, `b ≤ 0`, or
/// `x ∉ [0, 1]`, and [`StatsError::NoConvergence`] if the continued
/// fraction fails (practically unreachable for valid input).
///
/// # Examples
///
/// ```
/// use spa_stats::special::inc_beta;
/// // I_x(1, 1) = x (uniform distribution)
/// assert!((inc_beta(1.0, 1.0, 0.3)? - 0.3).abs() < 1e-14);
/// # Ok::<(), spa_stats::StatsError>(())
/// ```
pub fn inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || a <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            expected: "a finite value > 0",
        });
    }
    if !b.is_finite() || b <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "b",
            value: b,
            expected: "a finite value > 0",
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            expected: "a value in [0, 1]",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)).
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // Use the continued fraction directly when it converges fastest,
    // otherwise use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((ln_front.exp() / a) * beta_cont_frac(a, b, x)?)
    } else {
        Ok(1.0 - (ln_front.exp() / b) * beta_cont_frac(b, a, 1.0 - x)?)
    }
}

/// Inverse of the regularized incomplete beta function: finds `x` such
/// that `I_x(a, b) = p`.
///
/// Uses bisection refined by Newton steps; accurate to ~1e-12 in `x`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for invalid shape parameters
/// or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use spa_stats::special::{inc_beta, inv_inc_beta};
/// let x = inv_inc_beta(3.0, 5.0, 0.42)?;
/// assert!((inc_beta(3.0, 5.0, x)? - 0.42).abs() < 1e-10);
/// # Ok::<(), spa_stats::StatsError>(())
/// ```
pub fn inv_inc_beta(a: f64, b: f64, p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
            expected: "a value in [0, 1]",
        });
    }
    // Validate a, b through a probe evaluation.
    inc_beta(a, b, 0.5)?;
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    let mut x = 0.5;
    for _ in 0..200 {
        let f = inc_beta(a, b, x)? - p;
        if f.abs() < 1e-14 {
            break;
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step using the beta density as derivative.
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_beta(a, b);
        let pdf = ln_pdf.exp();
        let newton = if pdf > 0.0 { x - f / pdf } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if hi - lo < 1e-15 {
            break;
        }
    }
    Ok(x)
}

/// The error function `erf(x)`, accurate to about 1.2e-7 (Abramowitz &
/// Stegun 7.1.26 rational approximation), sufficient for CDF lookups; the
/// normal quantile uses an independent high-accuracy algorithm.
///
/// # Examples
///
/// ```
/// use spa_stats::special::erf;
/// assert!(erf(0.0).abs() < 1e-8);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15_u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_pole_is_infinite() {
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-1.0).is_infinite());
    }

    #[test]
    fn inc_beta_uniform_case() {
        for &x in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_close(inc_beta(1.0, 1.0, x).unwrap(), x, 1e-13);
        }
    }

    #[test]
    fn inc_beta_known_values() {
        // I_x(2, 2) = x^2 (3 - 2x)
        for &x in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            assert_close(
                inc_beta(2.0, 2.0, x).unwrap(),
                x * x * (3.0 - 2.0 * x),
                1e-12,
            );
        }
        // I_x(1, b) = 1 - (1-x)^b
        assert_close(
            inc_beta(1.0, 5.0, 0.2).unwrap(),
            1.0 - 0.8_f64.powi(5),
            1e-12,
        );
        // I_x(a, 1) = x^a
        assert_close(inc_beta(4.0, 1.0, 0.7).unwrap(), 0.7_f64.powi(4), 1e-12);
    }

    #[test]
    fn inc_beta_rejects_bad_input() {
        assert!(inc_beta(-1.0, 1.0, 0.5).is_err());
        assert!(inc_beta(1.0, 0.0, 0.5).is_err());
        assert!(inc_beta(1.0, 1.0, 1.5).is_err());
        assert!(inc_beta(1.0, 1.0, -0.1).is_err());
        assert!(inc_beta(f64::NAN, 1.0, 0.5).is_err());
    }

    #[test]
    fn inv_inc_beta_round_trip() {
        for &(a, b) in &[
            (0.5, 0.5),
            (1.0, 3.0),
            (2.0, 2.0),
            (10.0, 4.0),
            (30.0, 70.0),
        ] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = inv_inc_beta(a, b, p).unwrap();
                assert_close(inc_beta(a, b, x).unwrap(), p, 1e-9);
            }
        }
    }

    #[test]
    fn erf_symmetry_and_known_values() {
        assert_close(erf(-1.0), -erf(1.0), 1e-12);
        assert_close(erf(2.0), 0.9953222650189527, 2e-6);
    }

    proptest! {
        #[test]
        fn inc_beta_in_unit_interval(a in 0.1_f64..50.0, b in 0.1_f64..50.0, x in 0.0_f64..=1.0) {
            let v = inc_beta(a, b, x).unwrap();
            prop_assert!((0.0..=1.0).contains(&v) || v.abs() < 1e-12, "I = {v}");
        }

        #[test]
        fn inc_beta_monotone_in_x(a in 0.2_f64..20.0, b in 0.2_f64..20.0,
                                  x1 in 0.0_f64..1.0, dx in 0.0_f64..0.5) {
            let x2 = (x1 + dx).min(1.0);
            let v1 = inc_beta(a, b, x1).unwrap();
            let v2 = inc_beta(a, b, x2).unwrap();
            prop_assert!(v2 >= v1 - 1e-12, "I_x not monotone: {v1} > {v2}");
        }

        #[test]
        fn inc_beta_reflection_symmetry(a in 0.2_f64..20.0, b in 0.2_f64..20.0, x in 0.0_f64..=1.0) {
            // I_x(a, b) + I_{1-x}(b, a) = 1
            let lhs = inc_beta(a, b, x).unwrap() + inc_beta(b, a, 1.0 - x).unwrap();
            prop_assert!((lhs - 1.0).abs() < 1e-10, "symmetry violated: {lhs}");
        }

        #[test]
        fn ln_gamma_recurrence(x in 0.5_f64..100.0) {
            // Γ(x+1) = x Γ(x)
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        }
    }
}
