//! Streaming (single-pass) summary statistics.
//!
//! The simulator produces metrics one execution at a time; [`Summary`]
//! accumulates count/mean/variance/min/max online using Welford's
//! algorithm so populations never need to be buffered just to get a CV.

use serde::{Deserialize, Serialize};

/// Online accumulator for count, mean, variance, min and max.
///
/// Uses Welford's numerically stable recurrence; merging two summaries is
/// supported for parallel accumulation.
///
/// # Examples
///
/// ```
/// use spa_stats::summary::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from an iterator of values (equivalent to
    /// `iter.collect::<Summary>()`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` for fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean).
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::NAN
        } else {
            self.sample_stddev() / m
        }
    }

    /// Minimum observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.sample_variance().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn single_point() {
        let s = Summary::from_iter([7.0]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.0);
        assert!(s.sample_variance().is_nan());
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn matches_two_pass_statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = xs.iter().copied().collect();
        assert!((s.mean() - descriptive::mean(&xs)).abs() < 1e-12);
        assert!((s.sample_variance() - descriptive::sample_variance(&xs)).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn cv_matches_descriptive() {
        let xs = [1.0, 2.0, 3.0];
        let s = Summary::from_iter(xs);
        assert!(
            (s.coefficient_of_variation() - descriptive::coefficient_of_variation(&xs)).abs()
                < 1e-12
        );
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = Summary::new();
        let b = Summary::from_iter([1.0, 2.0]);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c = Summary::from_iter([3.0]);
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    proptest! {
        #[test]
        fn merge_equals_concatenation(
            xs in proptest::collection::vec(-1e3_f64..1e3, 0..50),
            ys in proptest::collection::vec(-1e3_f64..1e3, 0..50),
        ) {
            let mut merged = Summary::from_iter(xs.iter().copied());
            merged.merge(&Summary::from_iter(ys.iter().copied()));

            let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
            let direct = Summary::from_iter(all.iter().copied());

            prop_assert_eq!(merged.count(), direct.count());
            if !all.is_empty() {
                prop_assert!((merged.mean() - direct.mean()).abs() < 1e-9);
                prop_assert_eq!(merged.min(), direct.min());
                prop_assert_eq!(merged.max(), direct.max());
            }
            if all.len() >= 2 {
                prop_assert!((merged.sample_variance() - direct.sample_variance()).abs() < 1e-7);
            }
        }
    }
}
