//! Determinism guard: a seeded traced run's recorded trace is
//! byte-stable.
//!
//! The trace-to-verdict pipeline relies on executions being a pure
//! function of `(config, workload, seed)`: retries, thread counts, and
//! re-runs must all see the identical trace. This test serializes a
//! fixed-seed run's full `ExecutionData` and compares it byte-for-byte
//! against a checked-in golden file. The golden file is self-blessing:
//! a fresh checkout writes it on first run, every later run (and every
//! CI job, which runs tests twice via build + test) must reproduce it
//! exactly.

use std::fs;
use std::path::PathBuf;

use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_blackscholes_seed42.json")
}

fn render_trace() -> String {
    let spec = Benchmark::Blackscholes.workload_scaled(0.2);
    let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
    let run = machine.run(42).unwrap();
    let data = run.stl_data.expect("trace collection enabled");
    let mut json = serde_json::to_string_pretty(&data).expect("trace serializes");
    json.push('\n');
    json
}

#[test]
fn recorded_trace_is_byte_stable() {
    let first = render_trace();
    let second = render_trace();
    assert_eq!(first, second, "same seed must serialize identically");

    let path = golden_path();
    match fs::read_to_string(&path) {
        Ok(golden) => assert_eq!(
            first,
            golden,
            "recorded trace drifted from the golden file; delete {} to \
             re-bless after an intentional trace-format change",
            path.display()
        ),
        Err(_) => {
            // First run in a fresh checkout: bless the golden file.
            fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
            fs::write(&path, &first).expect("write golden file");
        }
    }
}

#[test]
fn traced_signals_cover_the_whole_run() {
    let spec = Benchmark::Blackscholes.workload_scaled(0.2);
    let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
    let data = machine.run(42).unwrap().stl_data.unwrap();
    for signal in spa_sim::trace_recorder::RECORDED_SIGNALS {
        let samples = data.trace().samples(signal).expect("signal recorded");
        assert!(!samples.is_empty());
        assert_eq!(samples[0].time, 0, "{signal} defined from cycle 0");
        assert!(
            samples.windows(2).all(|w| w[0].time < w[1].time),
            "{signal} times strictly increasing"
        );
    }
}
