//! Whole-simulator integration tests: every benchmark on the Table 2
//! machine, metric sanity, and configuration sensitivity.

use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::metrics::Metric;
use spa_sim::variability::Variability;
use spa_sim::workload::parsec::Benchmark;

#[test]
fn every_benchmark_completes_with_sane_metrics() {
    for bench in Benchmark::ALL {
        let spec = bench.workload_scaled(0.25);
        let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
        for seed in [0, 7, 31] {
            let r = machine
                .run(seed)
                .unwrap_or_else(|e| panic!("{bench} seed {seed}: {e}"));
            let m = &r.metrics;
            assert!(m.runtime_cycles > 0, "{bench}: zero runtime");
            assert!(m.instructions > 0, "{bench}: no instructions");
            assert!(m.ipc > 0.0 && m.ipc < 16.0, "{bench}: ipc {}", m.ipc);
            assert!(
                m.l1_mpki >= 0.0 && m.l1_mpki < 500.0,
                "{bench}: l1 {}",
                m.l1_mpki
            );
            assert!(m.l2_mpki <= m.l1_mpki, "{bench}: L2 MPKI above L1 MPKI");
            assert!(
                (0.0..=1.0).contains(&m.l2_miss_rate),
                "{bench}: l2 rate {}",
                m.l2_miss_rate
            );
            assert!(m.max_load_latency >= 2, "{bench}: impossible load latency");
            assert!(
                m.avg_load_latency <= m.max_load_latency as f64,
                "{bench}: avg > max load latency"
            );
            assert!(
                m.l2_accesses <= m.l1d_misses + m.l1i_misses + 1,
                "{bench}: more L2 accesses than L1 misses"
            );
            assert!(
                m.dram_accesses <= m.l2_accesses,
                "{bench}: DRAM > L2 accesses"
            );
        }
    }
}

#[test]
fn pipeline_benchmarks_exercise_queues() {
    // ferret and dedup are pipelines: all of their work items must flow
    // through (instructions equal across seeds proves full drainage).
    for bench in [Benchmark::Ferret, Benchmark::Dedup] {
        let spec = bench.workload_scaled(0.25);
        let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
        let a = machine.run(0).unwrap().metrics.instructions;
        let b = machine.run(99).unwrap().metrics.instructions;
        assert_eq!(a, b, "{bench}: item loss depends on seed");
    }
}

#[test]
fn ferret_prefers_bigger_l2() {
    let spec = Benchmark::Ferret.workload();
    let small = Machine::new(SystemConfig::table2().with_l2_capacity(512 * 1024), &spec).unwrap();
    let large = Machine::new(SystemConfig::table2().with_l2_capacity(1024 * 1024), &spec).unwrap();
    // Average over a few common-random-number pairs: the 1 MB system
    // must be clearly faster (the §4.2 speedup study's premise).
    let mut small_total = 0u64;
    let mut large_total = 0u64;
    for seed in 0..5 {
        small_total += small.run(seed).unwrap().metrics.runtime_cycles;
        large_total += large.run(seed).unwrap().metrics.runtime_cycles;
    }
    assert!(
        small_total as f64 > large_total as f64 * 1.2,
        "expected ≥1.2x speedup, got {:.3}",
        small_total as f64 / large_total as f64
    );
}

#[test]
fn jitter_only_runs_are_less_variable_than_full_system() {
    let spec = Benchmark::Freqmine.workload_scaled(0.5);
    let jitter = Machine::new(SystemConfig::table2(), &spec)
        .unwrap()
        .with_variability(Variability::DramJitter { max_cycles: 4 });
    let full = Machine::new(SystemConfig::table2(), &spec).unwrap();

    let spread = |machine: &Machine| -> f64 {
        let xs: Vec<f64> = (0..12)
            .map(|s| machine.run(s).unwrap().metrics.runtime_seconds)
            .collect();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo) / lo
    };
    let jitter_spread = spread(&jitter);
    let full_spread = spread(&full);
    assert!(
        full_spread > jitter_spread,
        "full-system spread {full_spread} should exceed jitter-only {jitter_spread}"
    );
}

#[test]
fn mesh_network_runs_and_is_slower() {
    let spec = Benchmark::Freqmine.workload_scaled(0.25);
    let xbar = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let mesh = Machine::new(SystemConfig::table2().with_mesh(), &spec).unwrap();
    let mut x_total = 0u64;
    let mut m_total = 0u64;
    for seed in 0..3 {
        x_total += xbar.run(seed).unwrap().metrics.runtime_cycles;
        m_total += mesh.run(seed).unwrap().metrics.runtime_cycles;
    }
    assert!(
        m_total > x_total,
        "mesh ({m_total}) should be slower than crossbar ({x_total})"
    );
}

#[test]
fn prefetcher_helps_sequential_hurts_random() {
    let run_pair = |bench: Benchmark| {
        let spec = bench.workload_scaled(0.25);
        let base = Machine::new(SystemConfig::table2(), &spec).unwrap();
        let pf = Machine::new(SystemConfig::table2().with_prefetch(), &spec).unwrap();
        let mut b = 0u64;
        let mut p = 0u64;
        for seed in 0..3 {
            b += base.run(seed).unwrap().metrics.runtime_cycles;
            p += pf.run(seed).unwrap().metrics.runtime_cycles;
        }
        (b, p)
    };
    // canneal's random pointer chases make next-line prefetch pure
    // pollution + bandwidth waste.
    let (base, pf) = run_pair(Benchmark::Canneal);
    assert!(pf > base, "prefetch should hurt canneal: {base} vs {pf}");
}

#[test]
fn metric_extraction_is_total() {
    // Every Metric::ALL extractor yields a finite value on every
    // benchmark.
    for bench in [Benchmark::Canneal, Benchmark::Blackscholes] {
        let spec = bench.workload_scaled(0.25);
        let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
        let m = machine.run(3).unwrap().metrics;
        for metric in Metric::ALL {
            let v = metric.extract(&m);
            assert!(v.is_finite(), "{bench}/{metric}: {v}");
            assert!(v >= 0.0, "{bench}/{metric}: negative {v}");
        }
    }
}

#[test]
fn real_machine_model_is_multimodal_for_ferret() {
    let spec = Benchmark::Ferret.workload_scaled(0.5);
    let machine = Machine::new(SystemConfig::table2(), &spec)
        .unwrap()
        .with_variability(Variability::real_machine());
    let xs: Vec<f64> = (0..60)
        .map(|s| machine.run(s).unwrap().metrics.runtime_seconds)
        .collect();
    // Interfered runs must be clearly separated from clean ones: the
    // max should sit far above the median.
    let mut sorted = xs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = sorted[sorted.len() / 2];
    let max = sorted[sorted.len() - 1];
    assert!(
        max > median * 1.2,
        "no slow mode visible: median {median}, max {max}"
    );
}
