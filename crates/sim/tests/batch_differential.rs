//! Differential guard for the batch population engine: for every tested
//! job count the batched output — `ExecutionResult`s, metric samples,
//! and recorded traces — must be byte-identical to sequential
//! execution, and every error path must surface exactly as it does
//! sequentially.

use spa_sim::batch::{run_metric_population_batch, run_population_batch};
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::metrics::Metric;
use spa_sim::runner::{run_metric_population, run_population};
use spa_sim::workload::parsec::Benchmark;
use spa_sim::workload::{PInstr, QueueSpec, WorkloadSpec};
use spa_sim::SimError;

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn batched_population_matches_hand_rolled_sequential_loop() {
    // The reference is an independent sequential loop over the same
    // machine, not the batch engine's own jobs=1 path.
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let reference: Vec<_> = (3..9).map(|seed| machine.run(seed).unwrap()).collect();
    for jobs in JOB_COUNTS {
        let batched = run_population_batch(SystemConfig::table2(), &spec, 3, 6, jobs).unwrap();
        assert_eq!(batched, reference, "jobs={jobs}");
    }
    // The public runner (now parallel by default) agrees too.
    assert_eq!(
        run_population(SystemConfig::table2(), &spec, 3, 6).unwrap(),
        reference
    );
}

#[test]
fn recorded_traces_are_byte_identical_across_job_counts() {
    let spec = Benchmark::Blackscholes.workload_scaled(0.2);
    let config = SystemConfig::table2().with_trace();
    let render = |jobs: usize| -> Vec<String> {
        run_population_batch(config, &spec, 40, 4, jobs)
            .unwrap()
            .into_iter()
            .map(|run| {
                let data = run.stl_data.expect("trace collection enabled");
                serde_json::to_string_pretty(&data).expect("trace serializes")
            })
            .collect()
    };
    let reference = render(1);
    for jobs in JOB_COUNTS {
        assert_eq!(render(jobs), reference, "jobs={jobs}");
    }
}

#[test]
fn metric_samples_match_sequential_streaming_runner() {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let reference =
        run_metric_population(SystemConfig::table2(), &spec, 0, 6, Metric::RuntimeSeconds).unwrap();
    for jobs in JOB_COUNTS {
        let batched = run_metric_population_batch(
            SystemConfig::table2(),
            &spec,
            0,
            6,
            Metric::RuntimeSeconds,
            jobs,
        )
        .unwrap();
        assert_eq!(batched, reference, "jobs={jobs}");
    }
}

#[test]
fn seed_overflow_is_rejected_before_any_simulation() {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    for jobs in JOB_COUNTS {
        let err = run_population_batch(SystemConfig::table2(), &spec, u64::MAX - 3, 16, jobs)
            .expect_err("overflowing seed range must be rejected");
        assert_eq!(
            err,
            SimError::SeedOverflow {
                seed_start: u64::MAX - 3,
                count: 16,
            },
            "jobs={jobs}"
        );
    }
}

/// A consumer on a queue nobody ever closes or fills: deadlocks at a
/// deterministic cycle.
fn deadlocking_workload() -> WorkloadSpec {
    WorkloadSpec {
        name: "dead".into(),
        programs: vec![vec![
            PInstr::QueuePop {
                queue: 0,
                jump_if_closed: 1,
            },
            PInstr::End,
        ]],
        queues: vec![QueueSpec {
            capacity: 1,
            producers: 1,
        }],
        code_bytes: 64,
        ..WorkloadSpec::default()
    }
}

#[test]
fn deadlock_error_surfaces_identically_under_the_batch_runner() {
    let w = deadlocking_workload();
    let mut config = SystemConfig::table2();
    config.cores = 1;
    let machine = Machine::new(config, &w).unwrap();
    let sequential = machine.run(0).expect_err("workload deadlocks");
    assert!(matches!(sequential, SimError::Deadlock { .. }));
    for jobs in JOB_COUNTS {
        let batched = run_population_batch(config, &w, 0, 8, jobs)
            .expect_err("workload deadlocks under the batch runner");
        // Seed 0 is the lowest failing seed, so every job count must
        // report its error — the same one sequential execution reports.
        assert_eq!(batched, sequential, "jobs={jobs}");
    }
}
