//! Property-based fuzzing of the machine interpreter: randomly
//! generated (structurally valid) workloads must run to completion,
//! deterministically, with coherent metrics.

use proptest::prelude::*;

use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::variability::Variability;
use spa_sim::workload::{Op, PInstr, PoolSpec, WorkItem, WorkloadSpec};

/// A random basic op over a bounded address space.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1_u16..60, 1_u16..60).prop_map(|(c, i)| Op::Compute {
            cycles: c,
            instructions: i
        }),
        (0_u64..1 << 22).prop_map(|a| Op::Load { addr: a * 8 }),
        (0_u64..1 << 22).prop_map(|a| Op::Store { addr: a * 8 }),
        (0_u32..256, any::<bool>()).prop_map(|(pc, taken)| Op::Branch {
            pc: 0x1000 + pc * 4,
            taken
        }),
    ]
}

fn arb_item() -> impl Strategy<Value = WorkItem> {
    proptest::collection::vec(arb_op(), 1..24).prop_map(|ops| WorkItem { ops })
}

/// A random pool-worker workload: every thread drains the shared pool,
/// optionally under a lock, then ends. Always terminates.
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        proptest::collection::vec(arb_item(), 1..24),
        any::<bool>(), // guard items with a lock?
        1_u32..4,      // cores
    )
        .prop_map(|(items, locked, cores)| {
            let n = items.len() as u64;
            let program = if locked {
                vec![
                    PInstr::PoolPop {
                        pool: 0,
                        jump_if_empty: 6,
                    },
                    PInstr::LockAcquire(0),
                    PInstr::RunItem { table: 0 },
                    PInstr::LockRelease(0),
                    PInstr::Jump(0),
                    PInstr::Jump(0), // unreachable padding
                    PInstr::End,
                ]
            } else {
                vec![
                    PInstr::PoolPop {
                        pool: 0,
                        jump_if_empty: 3,
                    },
                    PInstr::RunItem { table: 0 },
                    PInstr::Jump(0),
                    PInstr::End,
                ]
            };
            WorkloadSpec {
                name: "fuzz".into(),
                programs: vec![program; cores as usize],
                tables: vec![items],
                pools: vec![PoolSpec {
                    start: 0,
                    end: n,
                    counter_addr: 0xA000_0000,
                }],
                queues: vec![],
                locks: u16::from(locked),
                barriers: vec![],
                code_bytes: 8 * 1024,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_workloads_terminate_with_coherent_metrics(
        w in arb_workload(),
        seed in 0_u64..1000,
    ) {
        let mut config = SystemConfig::table2();
        config.cores = w.programs.len() as u32;
        let machine = Machine::new(config, &w).unwrap();
        let r = machine.run(seed).unwrap();
        let m = r.metrics;
        // Every item is executed exactly once across all threads.
        let expected_instructions: u64 = w.tables[0]
            .iter()
            .flat_map(|i| i.ops.iter().map(Op::instructions))
            .sum();
        prop_assert!(m.instructions >= expected_instructions);
        prop_assert!(m.runtime_cycles > 0);
        prop_assert!(m.l1d_misses <= m.l1d_accesses);
        prop_assert!(m.l2_misses <= m.l2_accesses);
        prop_assert!(m.dram_accesses <= m.l2_accesses);
        prop_assert!(m.avg_load_latency.is_nan() || m.avg_load_latency >= 2.0);
    }

    #[test]
    fn random_workloads_are_deterministic(
        w in arb_workload(),
        seed in 0_u64..1000,
    ) {
        let mut config = SystemConfig::table2();
        config.cores = w.programs.len() as u32;
        let machine = Machine::new(config, &w)
            .unwrap()
            .with_variability(Variability::paper_default());
        let a = machine.run(seed).unwrap();
        let b = machine.run(seed).unwrap();
        // Debug-compare: avg_load_latency is NaN when the workload has
        // no loads, and NaN != NaN under PartialEq.
        prop_assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
    }

    #[test]
    fn zero_variability_ignores_seed(w in arb_workload()) {
        let mut config = SystemConfig::table2();
        config.cores = w.programs.len() as u32;
        let machine = Machine::new(config, &w)
            .unwrap()
            .with_variability(Variability::None);
        let a = machine.run(1).unwrap();
        let b = machine.run(2).unwrap();
        prop_assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
    }
}
