//! Differential guard for the event-driven simulator core: the
//! refactored scheduler (`spa_sim::sched` + `CoreInterpreter`) must
//! produce executions identical to the pre-refactor quantum-stepped
//! loop, which is kept verbatim inside the crate as the oracle
//! (`Machine::run_quantum_stepped`).
//!
//! Identical means identical [`spa_sim::metrics::ExecutionResult`]s —
//! every metric, the dropped-event count, and (when tracing) the STL
//! data — plus byte-identical serialized traces. The axes covered are
//! the Table 2 workloads, the variability models, fault specs, and
//! multiple seeds; a proptest additionally pins the scheduler's
//! ordering contract itself.

use proptest::prelude::*;
use spa_sim::config::SystemConfig;
use spa_sim::fault::FaultSpec;
use spa_sim::machine::Machine;
use spa_sim::sched::{ComponentId, EventScheduler};
use spa_sim::variability::Variability;
use spa_sim::workload::parsec::Benchmark;

const SEEDS: [u64; 3] = [11, 12, 13];

#[test]
fn event_core_matches_quantum_oracle_on_all_table2_workloads() {
    for bench in Benchmark::ALL {
        let spec = bench.workload_scaled(0.2);
        let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
        for seed in SEEDS {
            let event = machine.run(seed).unwrap();
            let quantum = machine.run_quantum_stepped(seed).unwrap();
            assert_eq!(event, quantum, "{bench:?} seed {seed}");
        }
    }
}

#[test]
fn differential_holds_across_variability_models() {
    let models = [
        Variability::None,
        Variability::DramJitter { max_cycles: 4 },
        Variability::paper_default(),
        Variability::real_machine(),
    ];
    for bench in [Benchmark::Ferret, Benchmark::Streamcluster] {
        let spec = bench.workload_scaled(0.2);
        for model in models {
            let machine = Machine::new(SystemConfig::table2(), &spec)
                .unwrap()
                .with_variability(model);
            for seed in SEEDS {
                let event = machine.run(seed).unwrap();
                let quantum = machine.run_quantum_stepped(seed).unwrap();
                assert_eq!(event, quantum, "{bench:?} {model:?} seed {seed}");
            }
        }
    }
}

#[test]
fn serialized_traces_are_byte_identical() {
    for bench in [Benchmark::Blackscholes, Benchmark::Ferret] {
        let spec = bench.workload_scaled(0.2);
        let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
        for seed in SEEDS {
            let event = machine.run(seed).unwrap();
            let quantum = machine.run_quantum_stepped(seed).unwrap();
            let event_json = serde_json::to_string_pretty(&event.stl_data.expect("traced"))
                .expect("trace serializes");
            let quantum_json = serde_json::to_string_pretty(&quantum.stl_data.expect("traced"))
                .expect("trace serializes");
            assert_eq!(event_json, quantum_json, "{bench:?} seed {seed}");
        }
    }
}

#[test]
fn fault_disposition_and_surviving_runs_are_engine_independent() {
    // The fault roll happens on its own RNG stream before any engine
    // runs, so the set of faulted seeds cannot depend on the engine;
    // the seeds that survive must then execute identically under both.
    let specs = [
        FaultSpec::none(),
        FaultSpec::none().with_crashes(0.3),
        FaultSpec::none()
            .with_crashes(0.1)
            .with_timeouts(0.1)
            .with_nan_metrics(0.1),
    ];
    let spec = Benchmark::Blackscholes.workload_scaled(0.2);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let mut survivors = 0;
    for fault in specs {
        for seed in 0..8 {
            match fault.roll(seed) {
                Some(kind) => {
                    assert_eq!(fault.roll(seed), Some(kind), "roll is deterministic");
                }
                None => {
                    survivors += 1;
                    let event = machine.run(seed).unwrap();
                    let quantum = machine.run_quantum_stepped(seed).unwrap();
                    assert_eq!(event, quantum, "{fault:?} seed {seed}");
                }
            }
        }
    }
    assert!(survivors > 0, "some seeds must survive to be compared");
}

#[test]
fn sched_counters_flush_per_run_and_are_verdict_neutral() {
    use spa_sim::sched::{EVENTS_POPPED, IDLE_SKIPS, RUNAHEAD_CYCLES};
    let spec = Benchmark::Blackscholes.workload_scaled(0.2);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let registry = spa_obs::metrics::global();
    let popped_before = registry.counter(EVENTS_POPPED).get();
    let skips_before = registry.counter(IDLE_SKIPS).get();
    let runahead_before = registry.counter(RUNAHEAD_CYCLES).get();
    let first = machine.run(3).unwrap();
    // Each run pops at least the initial per-core events; blackscholes
    // is embarrassingly parallel between barriers, so run-ahead must
    // actually fire.
    assert!(registry.counter(EVENTS_POPPED).get() >= popped_before + 4);
    assert!(registry.counter(IDLE_SKIPS).get() > skips_before);
    assert!(registry.counter(RUNAHEAD_CYCLES).get() > runahead_before);
    // Verdict neutrality: the counters observe the run without feeding
    // back into it — rerunning with accumulated counters changes
    // nothing about the result.
    let second = machine.run(3).unwrap();
    assert_eq!(first, second);
}

proptest! {
    /// The scheduler's ordering contract: pop order is the stable sort
    /// of the insertion sequence by time — i.e. it depends only on the
    /// `(time, seq)` key, where seq is assigned in insertion order, and
    /// never on heap internals. Equivalently, popping is invariant to
    /// *when* events were interleaved into the heap relative to
    /// later-scheduled, later-timed events.
    #[test]
    fn heap_pop_order_is_insertion_stable_by_time(times in proptest::collection::vec(0u64..50, 1..40)) {
        let mut sched = EventScheduler::new(times.len());
        for (id, &t) in times.iter().enumerate() {
            sched.schedule(id as ComponentId, t);
        }
        let mut popped = Vec::new();
        while let Some((at, id)) = sched.pop() {
            popped.push((at, id));
        }
        let mut expected: Vec<(u64, ComponentId)> = times
            .iter()
            .enumerate()
            .map(|(id, &t)| (t, id as ComponentId))
            .collect();
        expected.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        prop_assert_eq!(popped, expected);
        prop_assert_eq!(sched.stats().events_popped, times.len() as u64);
    }
}
