//! Population generation: many seeded executions of one configuration.
//!
//! §5.3 of the paper: "For each benchmark, we run 500 simulations to
//! determine the ground truth." The runner executes seeds
//! `0, 1, …, n−1` (or any explicit range) and returns the metric
//! vectors the statistics layer consumes.
//!
//! Since the batch engine landed, these entry points fan the seeds
//! across one worker per available hardware thread ([`crate::batch`]).
//! That is safe to do silently: per-seed RNG streams plus seed-ordered
//! collection make the output byte-identical to sequential execution.
//! Each worker drives the event-driven core ([`crate::sched`]), so the
//! two performance layers compose without touching any result.

use crate::batch::{available_jobs, run_metric_population_batch_with, run_population_batch_with};
use crate::config::SystemConfig;
use crate::metrics::{ExecutionResult, Metric};
use crate::variability::Variability;
use crate::workload::WorkloadSpec;
use crate::Result;

/// Runs `count` executions with seeds `seed_start..seed_start+count`.
///
/// # Errors
///
/// Propagates the first simulation error (e.g. a workload deadlock),
/// or [`crate::SimError::SeedOverflow`] if the range leaves `u64`.
///
/// # Examples
///
/// ```
/// use spa_sim::config::SystemConfig;
/// use spa_sim::runner::run_population;
/// use spa_sim::workload::parsec::Benchmark;
///
/// let spec = Benchmark::Blackscholes.workload_scaled(0.25);
/// let runs = run_population(SystemConfig::table2(), &spec, 0, 5)?;
/// assert_eq!(runs.len(), 5);
/// # Ok::<(), spa_sim::SimError>(())
/// ```
pub fn run_population(
    config: SystemConfig,
    workload: &WorkloadSpec,
    seed_start: u64,
    count: u64,
) -> Result<Vec<ExecutionResult>> {
    run_population_with(
        config,
        workload,
        Variability::paper_default(),
        seed_start,
        count,
    )
}

/// As [`run_population`] with an explicit variability model.
///
/// # Errors
///
/// Propagates the first simulation error, or
/// [`crate::SimError::SeedOverflow`] if the range leaves `u64`.
pub fn run_population_with(
    config: SystemConfig,
    workload: &WorkloadSpec,
    variability: Variability,
    seed_start: u64,
    count: u64,
) -> Result<Vec<ExecutionResult>> {
    run_population_batch_with(
        config,
        workload,
        variability,
        seed_start,
        count,
        available_jobs(),
    )
}

/// Extracts one metric from a population of runs.
///
/// Prefer [`run_metric_population`] when the full [`ExecutionResult`]s
/// are not otherwise needed: it streams each run through the metric
/// evaluation stage instead of materializing the whole population
/// first.
pub fn extract_metric(runs: &[ExecutionResult], metric: Metric) -> Vec<f64> {
    runs.iter().map(|r| metric.extract(&r.metrics)).collect()
}

/// Runs `count` executions and streams each through the pipeline's
/// metric evaluation stage, returning only the metric samples.
///
/// Equivalent to [`run_population`] followed by [`extract_metric`], but
/// each `ExecutionResult` (metrics struct plus any recorded trace) is
/// dropped as soon as its sample is extracted — the scalar path never
/// holds the whole population in memory.
///
/// # Errors
///
/// Propagates the first simulation error.
///
/// # Examples
///
/// ```
/// use spa_sim::config::SystemConfig;
/// use spa_sim::metrics::Metric;
/// use spa_sim::runner::run_metric_population;
/// use spa_sim::workload::parsec::Benchmark;
///
/// let spec = Benchmark::Blackscholes.workload_scaled(0.25);
/// let ipc = run_metric_population(SystemConfig::table2(), &spec, 0, 5, Metric::Ipc)?;
/// assert_eq!(ipc.len(), 5);
/// # Ok::<(), spa_sim::SimError>(())
/// ```
pub fn run_metric_population(
    config: SystemConfig,
    workload: &WorkloadSpec,
    seed_start: u64,
    count: u64,
    metric: Metric,
) -> Result<Vec<f64>> {
    run_metric_population_with(
        config,
        workload,
        Variability::paper_default(),
        seed_start,
        count,
        metric,
    )
}

/// As [`run_metric_population`] with an explicit variability model.
///
/// # Errors
///
/// Propagates the first simulation error, or
/// [`crate::SimError::SeedOverflow`] if the range leaves `u64`.
pub fn run_metric_population_with(
    config: SystemConfig,
    workload: &WorkloadSpec,
    variability: Variability,
    seed_start: u64,
    count: u64,
    metric: Metric,
) -> Result<Vec<f64>> {
    run_metric_population_batch_with(
        config,
        workload,
        variability,
        seed_start,
        count,
        metric,
        available_jobs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::parsec::Benchmark;

    #[test]
    fn population_is_seed_deterministic() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let a = run_population(SystemConfig::table2(), &spec, 10, 3).unwrap();
        let b = run_population(SystemConfig::table2(), &spec, 10, 3).unwrap();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.seed, y.seed);
        }
        assert_eq!(a[0].seed, 10);
    }

    #[test]
    fn metric_extraction_matches_runs() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let runs = run_population(SystemConfig::table2(), &spec, 0, 4).unwrap();
        let runtimes = extract_metric(&runs, Metric::RuntimeSeconds);
        assert_eq!(runtimes.len(), 4);
        for (r, &v) in runs.iter().zip(&runtimes) {
            assert_eq!(v, r.metrics.runtime_seconds);
            assert!(v > 0.0);
        }
    }

    #[test]
    fn streamed_metrics_match_materialized_extraction() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let runs = run_population(SystemConfig::table2(), &spec, 5, 4).unwrap();
        let materialized = extract_metric(&runs, Metric::Ipc);
        let streamed =
            run_metric_population(SystemConfig::table2(), &spec, 5, 4, Metric::Ipc).unwrap();
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn overflowing_seed_range_is_rejected() {
        // Regression: `seed_start..seed_start + count` used to be
        // computed unchecked — a debug panic, a silently empty
        // population in release builds.
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let err = run_population(SystemConfig::table2(), &spec, u64::MAX - 1, 4).unwrap_err();
        assert_eq!(
            err,
            crate::SimError::SeedOverflow {
                seed_start: u64::MAX - 1,
                count: 4,
            }
        );
        let err = run_metric_population(SystemConfig::table2(), &spec, u64::MAX, 2, Metric::Ipc)
            .unwrap_err();
        assert!(matches!(err, crate::SimError::SeedOverflow { .. }));
    }

    #[test]
    fn variability_model_is_respected() {
        let spec = Benchmark::Ferret.workload_scaled(0.25);
        let none =
            run_population_with(SystemConfig::table2(), &spec, Variability::None, 0, 3).unwrap();
        // With no injection every run is identical.
        assert_eq!(none[0].metrics, none[1].metrics);
        assert_eq!(none[1].metrics, none[2].metrics);

        let jittered = run_population(SystemConfig::table2(), &spec, 0, 3).unwrap();
        let distinct = jittered
            .windows(2)
            .any(|w| w[0].metrics.runtime_cycles != w[1].metrics.runtime_cycles);
        assert!(distinct, "jitter should perturb runtimes");
    }
}
