//! A gshare branch predictor (per core).
//!
//! The workload emits branches with a per-site bias; the predictor's
//! 2-bit saturating counters indexed by `PC ⊕ history` capture the
//! predictable ones and mispredict on the genuinely data-dependent rest,
//! producing the branch-MPKI metric and the misprediction-handling time
//! that Table 1 row 3's example property inspects.

/// Per-core gshare predictor with 2-bit counters.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    history: u64,
    mask: u64,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^log2_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or greater than 24.
    pub fn new(log2_entries: u32) -> Self {
        assert!((1..=24).contains(&log2_entries), "1..=24 bits supported");
        let entries = 1usize << log2_entries;
        Self {
            counters: vec![1; entries], // weakly not-taken
            history: 0,
            mask: (entries - 1) as u64,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts and then trains on the actual outcome; returns whether
    /// the prediction was correct.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc ^ self.history) & self.mask) as usize;
        let predicted_taken = self.counters[idx] >= 2;
        let correct = predicted_taken == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        // 2-bit saturating update.
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]` (`NaN` before any prediction).
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            f64::NAN
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_branch() {
        let mut p = BranchPredictor::new(10);
        // Always-taken branch at one PC: once the global history register
        // saturates to all-ones (mask width = 10 bits ⇒ ~12 steps) the
        // index stabilizes and mispredictions stop.
        for _ in 0..30 {
            p.predict_and_train(0x400, true);
        }
        let before = p.mispredictions();
        for _ in 0..100 {
            p.predict_and_train(0x400, true);
        }
        assert_eq!(p.mispredictions(), before);
        assert!(p.mispredict_rate() < 0.2);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = BranchPredictor::new(10);
        // Strictly alternating T/N/T/N is captured by gshare history.
        let mut outcome = false;
        for _ in 0..200 {
            p.predict_and_train(0x800, outcome);
            outcome = !outcome;
        }
        let before = p.mispredictions();
        for _ in 0..200 {
            p.predict_and_train(0x800, outcome);
            outcome = !outcome;
        }
        let late = p.mispredictions() - before;
        assert!(late < 20, "late mispredictions: {late}");
    }

    #[test]
    fn counts_are_consistent() {
        let mut p = BranchPredictor::new(8);
        for i in 0..50_u64 {
            p.predict_and_train(i * 64, i % 3 == 0);
        }
        assert_eq!(p.predictions(), 50);
        assert!(p.mispredictions() <= 50);
    }

    #[test]
    #[should_panic(expected = "1..=24 bits")]
    fn zero_entries_panics() {
        let _ = BranchPredictor::new(0);
    }

    #[test]
    fn rate_nan_when_unused() {
        assert!(BranchPredictor::new(4).mispredict_rate().is_nan());
    }
}
