//! DRAM timing with the paper's variability-injection hook.
//!
//! Table 2: 3 GB memory at a 90-cycle access latency. Following
//! Alameldeen & Wood (and §5.2 of the paper), each access may receive a
//! small uniform-random extra latency supplied by the configured
//! [`variability`](crate::variability) model — this is the *only* place
//! randomness enters a simulated execution. A small number of banks with
//! busy-until scoreboards provides first-order queuing under bursts.

use crate::cache::BlockAddr;

/// The DRAM model.
#[derive(Debug, Clone)]
pub struct Dram {
    base_latency: u64,
    banks: Vec<u64>,
    accesses: u64,
    jitter_cycles_total: u64,
    queue_cycles_total: u64,
}

/// Number of independent banks (fixed; enough that queueing is rare
/// except under genuine bursts).
const BANKS: usize = 8;

impl Dram {
    /// Creates the DRAM with `base_latency` cycles per access.
    pub fn new(base_latency: u64) -> Self {
        Self {
            base_latency,
            banks: vec![0; BANKS],
            accesses: 0,
            jitter_cycles_total: 0,
            queue_cycles_total: 0,
        }
    }

    /// Performs an access to `block` issued at `now` with `jitter` extra
    /// cycles (from the variability model); returns the completion time.
    pub fn access(&mut self, block: BlockAddr, now: u64, jitter: u64) -> u64 {
        let bank = &mut self.banks[(block as usize) % BANKS];
        let start = now.max(*bank);
        self.queue_cycles_total += start - now;
        let done = start + self.base_latency + jitter;
        // The bank frees after a fixed occupancy (burst transfer), not
        // the full access latency — pipelined DRAM.
        *bank = start + (self.base_latency / 3).max(1);
        self.accesses += 1;
        self.jitter_cycles_total += jitter;
        done
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Sum of injected jitter cycles.
    pub fn jitter_cycles_total(&self) -> u64 {
        self.jitter_cycles_total
    }

    /// Sum of bank-queue wait cycles.
    pub fn queue_cycles_total(&self) -> u64 {
        self.queue_cycles_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_latency_applied() {
        let mut d = Dram::new(90);
        assert_eq!(d.access(0, 100, 0), 190);
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.jitter_cycles_total(), 0);
    }

    #[test]
    fn jitter_extends_latency() {
        let mut d = Dram::new(90);
        assert_eq!(d.access(1, 100, 4), 194);
        assert_eq!(d.jitter_cycles_total(), 4);
    }

    #[test]
    fn same_bank_queues() {
        let mut d = Dram::new(90);
        let first = d.access(0, 0, 0);
        assert_eq!(first, 90);
        // Same bank (block 0 and block 8 both map to bank 0): second
        // access at t=0 waits for the bank occupancy window (30 cycles).
        let second = d.access(8, 0, 0);
        assert_eq!(second, 30 + 90);
        assert_eq!(d.queue_cycles_total(), 30);
    }

    #[test]
    fn different_banks_parallel() {
        let mut d = Dram::new(90);
        let a = d.access(0, 0, 0);
        let b = d.access(1, 0, 0);
        assert_eq!(a, 90);
        assert_eq!(b, 90);
        assert_eq!(d.queue_cycles_total(), 0);
    }
}
