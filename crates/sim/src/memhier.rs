//! The full memory hierarchy: private L1 I/D → crossbar → shared
//! inclusive L2 + MESI directory → DRAM.
//!
//! One call prices a complete memory operation: cache lookups, coherence
//! actions (upgrades, invalidations, dirty forwards), crossbar
//! occupancy, DRAM queueing, and the injected jitter. The timing is
//! transaction-level — each access computes its completion time against
//! busy-until scoreboards rather than exchanging individual messages —
//! which preserves first-order contention while staying fast enough for
//! the paper's 500-run populations.

use crate::cache::{Access, BlockAddr, CacheArray};
use crate::coherence::{CoreId, Directory, MesiState};
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::interconnect::Network;
use crate::tlb::Tlb;
use crate::variability::VariabilityState;

/// Which structures an access touched (for metric accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Completion latency in cycles (includes everything).
    pub latency: u64,
    /// The L1 (D or I) missed.
    pub l1_miss: bool,
    /// The shared L2 missed (DRAM was accessed).
    pub l2_miss: bool,
    /// The data TLB missed (data accesses only).
    pub tlb_miss: bool,
}

/// The assembled hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: SystemConfig,
    l1d: Vec<CacheArray>,
    l1i: Vec<CacheArray>,
    dtlb: Vec<Tlb>,
    l2: CacheArray,
    directory: Directory,
    network: Network,
    dram: Dram,
    max_load_latency: u64,
    total_load_latency: u64,
    loads: u64,
    stores: u64,
    prefetches: u64,
    prefetch_hits_wasted: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for a validated config.
    pub fn new(config: SystemConfig) -> Self {
        let cores = config.cores as usize;
        Self {
            l1d: (0..cores)
                .map(|_| CacheArray::new(&config.l1d, config.block_bytes))
                .collect(),
            l1i: (0..cores)
                .map(|_| CacheArray::new(&config.l1i, config.block_bytes))
                .collect(),
            dtlb: (0..cores).map(|_| Tlb::new(config.tlb_entries)).collect(),
            l2: CacheArray::new(&config.l2, config.block_bytes),
            directory: Directory::new(config.cores),
            network: Network::new(&config),
            dram: Dram::new(config.dram_latency),
            config,
            max_load_latency: 0,
            total_load_latency: 0,
            loads: 0,
            stores: 0,
            prefetches: 0,
            prefetch_hits_wasted: 0,
        }
    }

    /// Performs a data access (load or store) by `core` to byte address
    /// `addr` issued at cycle `now`; returns the outcome with its
    /// total latency.
    pub fn data_access(
        &mut self,
        core: CoreId,
        addr: u64,
        is_store: bool,
        now: u64,
        variability: &mut VariabilityState,
    ) -> AccessOutcome {
        let block = addr / self.config.block_bytes;
        let mut out = AccessOutcome::default();

        // TLB first: a miss adds the page-walk penalty serially.
        let page = addr / self.config.page_bytes;
        let mut t = now;
        if !self.dtlb[core as usize].access(page) {
            out.tlb_miss = true;
            t += self.config.tlb_miss_penalty;
        }

        // L1 lookup (fills on miss; the victim is released below).
        t += self.config.l1d.latency;
        match self.l1d[core as usize].access(block) {
            Access::Hit => {
                if is_store {
                    // Store hits still need write permission.
                    t = self.price_store_permission(core, block, t);
                }
            }
            miss => {
                out.l1_miss = true;
                if let Access::MissEvicted(victim) = miss {
                    self.directory.evict_l1(core, victim);
                }
                t = self.fetch_block(core, block, t, is_store, &mut out, variability);
            }
        }

        out.latency = t.saturating_sub(now);
        if is_store {
            self.stores += 1;
        } else {
            self.loads += 1;
            self.total_load_latency += out.latency;
            self.max_load_latency = self.max_load_latency.max(out.latency);
        }
        out
    }

    /// Prices obtaining write permission for a block already in this
    /// core's L1.
    fn price_store_permission(&mut self, core: CoreId, block: BlockAddr, t: u64) -> u64 {
        match self.directory.state(block) {
            MesiState::Modified | MesiState::Exclusive
                if self.directory.sharers(block) == vec![core] =>
            {
                // Silent upgrade (or already M by this core).
                self.directory.write(core, block);
                t
            }
            _ => {
                // Upgrade miss: directory access + parallel invalidations
                // + ack collection.
                let outcome = self.directory.write(core, block);
                for other in &outcome.invalidated {
                    self.l1d[*other as usize].invalidate(block);
                }
                let inv_cost = if outcome.invalidated.is_empty() {
                    0
                } else {
                    2 * self.network.control_latency(core)
                };
                t + self.config.l2.latency + inv_cost
            }
        }
    }

    /// Handles an L1 miss (the L1 array has already been filled by the
    /// demand lookup): consult L2 + directory, possibly DRAM, and handle
    /// inclusion victims. Returns the completion time.
    fn fetch_block(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        t: u64,
        is_store: bool,
        out: &mut AccessOutcome,
        variability: &mut VariabilityState,
    ) -> u64 {
        // Request crosses the network (control) and looks up the L2.
        let mut t = t + self.network.control_latency(core) + self.config.l2.latency;

        // Coherence resolution.
        let outcome = if is_store {
            self.directory.write(core, block)
        } else {
            self.directory.read(core, block)
        };
        for other in &outcome.invalidated {
            self.l1d[*other as usize].invalidate(block);
        }
        if !outcome.invalidated.is_empty() {
            t += 2 * self.network.control_latency(core);
        }
        if let Some(owner) = outcome.fetched_from_owner {
            // Dirty line forwarded from the owner's L1 through the
            // network: owner L1 access + transfer.
            t += self.config.l1d.latency;
            t = self.network.transfer(owner, t);
        }

        // L2 array lookup/fill (demand access).
        match self.l2.access(block) {
            Access::Hit => {}
            miss => {
                out.l2_miss = true;
                let jitter = variability.dram_jitter();
                t = self.dram.access(block, t, jitter);
                if let Access::MissEvicted(victim) = miss {
                    // Inclusive L2: back-invalidate every L1 copy.
                    for holder in self.directory.evict_l2(victim) {
                        self.l1d[holder as usize].invalidate(victim);
                        self.l1i[holder as usize].invalidate(victim);
                    }
                }
                self.maybe_prefetch(block + 1, t, variability);
            }
        }

        // Data block returns to the requester over its network path.
        self.network.transfer(core, t)
    }

    /// Performs an instruction fetch by `core` at byte address `pc`
    /// issued at cycle `now`. Hits are free (overlapped with decode);
    /// misses go to the L2/DRAM path.
    pub fn inst_fetch(
        &mut self,
        core: CoreId,
        pc: u64,
        now: u64,
        variability: &mut VariabilityState,
    ) -> AccessOutcome {
        let block = pc / self.config.block_bytes;
        let mut out = AccessOutcome::default();
        match self.l1i[core as usize].access(block) {
            Access::Hit => {}
            _ => {
                out.l1_miss = true;
                let mut t = now + self.config.l1i.latency + self.network.control_latency(core);
                t += self.config.l2.latency;
                match self.l2.access(block) {
                    Access::Hit => {}
                    miss => {
                        out.l2_miss = true;
                        let jitter = variability.dram_jitter();
                        t = self.dram.access(block, t, jitter);
                        if let Access::MissEvicted(victim) = miss {
                            for holder in self.directory.evict_l2(victim) {
                                self.l1d[holder as usize].invalidate(victim);
                                self.l1i[holder as usize].invalidate(victim);
                            }
                        }
                    }
                }
                t = self.network.transfer(core, t);
                out.latency = t - now;
            }
        }
        out
    }

    /// Aggregate L1 data-cache misses across cores.
    pub fn l1d_misses(&self) -> u64 {
        self.l1d.iter().map(CacheArray::misses).sum()
    }

    /// Aggregate L1 data-cache accesses across cores.
    pub fn l1d_accesses(&self) -> u64 {
        self.l1d.iter().map(CacheArray::accesses).sum()
    }

    /// Aggregate L1 instruction-cache misses across cores.
    pub fn l1i_misses(&self) -> u64 {
        self.l1i.iter().map(CacheArray::misses).sum()
    }

    /// Aggregate L1 instruction-cache accesses across cores.
    pub fn l1i_accesses(&self) -> u64 {
        self.l1i.iter().map(CacheArray::accesses).sum()
    }

    /// Shared L2 misses.
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses()
    }

    /// Shared L2 accesses.
    pub fn l2_accesses(&self) -> u64 {
        self.l2.accesses()
    }

    /// Aggregate data-TLB misses.
    pub fn tlb_misses(&self) -> u64 {
        self.dtlb.iter().map(Tlb::misses).sum()
    }

    /// Worst-case load latency observed (cycles).
    pub fn max_load_latency(&self) -> u64 {
        self.max_load_latency
    }

    /// Mean load latency (cycles; `NaN` before any load).
    pub fn avg_load_latency(&self) -> f64 {
        if self.loads == 0 {
            f64::NAN
        } else {
            self.total_load_latency as f64 / self.loads as f64
        }
    }

    /// Number of loads serviced.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of stores serviced.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Next-line L2 prefetch on a demand miss: fills `block` into the L2
    /// in the background (occupying a DRAM bank but never stalling the
    /// demand access).
    fn maybe_prefetch(&mut self, block: BlockAddr, now: u64, variability: &mut VariabilityState) {
        if !self.config.l2_next_line_prefetch {
            return;
        }
        if self.l2.contains(block) {
            self.prefetch_hits_wasted += 1;
            return;
        }
        self.prefetches += 1;
        let jitter = variability.dram_jitter();
        let _ = self.dram.access(block, now, jitter);
        if let Access::MissEvicted(victim) = self.l2.access(block) {
            for holder in self.directory.evict_l2(victim) {
                self.l1d[holder as usize].invalidate(victim);
                self.l1i[holder as usize].invalidate(victim);
            }
        }
    }

    /// Flushes one core's private caches (thread migration onto a cold
    /// core, §2.1): every resident L1 line is dropped and released in
    /// the directory.
    pub fn flush_core(&mut self, core: CoreId) {
        for block in self.l1d[core as usize].resident_blocks() {
            self.directory.evict_l1(core, block);
        }
        self.l1d[core as usize].clear();
        self.l1i[core as usize].clear();
    }

    /// Coherence invalidation messages sent.
    pub fn invalidations(&self) -> u64 {
        self.directory.invalidations_sent()
    }

    /// DRAM accesses performed.
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses()
    }

    /// Total injected jitter cycles.
    pub fn jitter_cycles(&self) -> u64 {
        self.dram.jitter_cycles_total()
    }

    /// Prefetches issued (0 unless the prefetcher is enabled).
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variability::Variability;

    fn hier() -> (MemoryHierarchy, VariabilityState) {
        (
            MemoryHierarchy::new(SystemConfig::table2()),
            Variability::None.state_for_run(0),
        )
    }

    #[test]
    fn cold_load_goes_to_dram() {
        let (mut h, mut v) = hier();
        let out = h.data_access(0, 0x1000, false, 0, &mut v);
        assert!(out.l1_miss);
        assert!(out.l2_miss);
        assert!(out.tlb_miss);
        // 2 (L1) + 1 (xbar) + 16 (L2) + 90 (DRAM) + 5 (transfer) + 30 (TLB walk)
        assert_eq!(out.latency, 30 + 2 + 1 + 16 + 90 + 5);
        assert_eq!(h.dram_accesses(), 1);
    }

    #[test]
    fn warm_load_hits_l1() {
        let (mut h, mut v) = hier();
        h.data_access(0, 0x1000, false, 0, &mut v);
        let out = h.data_access(0, 0x1000, false, 200, &mut v);
        assert!(!out.l1_miss);
        assert!(!out.l2_miss);
        assert_eq!(out.latency, 2);
        assert_eq!(h.max_load_latency(), 144);
    }

    #[test]
    fn l2_hit_after_remote_l1_fill() {
        let (mut h, mut v) = hier();
        h.data_access(0, 0x1000, false, 0, &mut v);
        // Core 1 misses its L1 but hits the shared L2.
        let out = h.data_access(1, 0x1000, false, 500, &mut v);
        assert!(out.l1_miss);
        assert!(!out.l2_miss);
        assert!(out.latency < 144, "latency {}", out.latency);
    }

    #[test]
    fn store_to_shared_line_invalidates() {
        let (mut h, mut v) = hier();
        h.data_access(0, 0x2000, false, 0, &mut v);
        h.data_access(1, 0x2000, false, 300, &mut v);
        let inv_before = h.invalidations();
        // Core 0 still has the line in L1; its store must upgrade.
        let out = h.data_access(0, 0x2000, true, 600, &mut v);
        assert!(!out.l1_miss);
        assert!(h.invalidations() > inv_before);
        assert!(out.latency > 2);
    }

    #[test]
    fn dirty_forwarding_on_remote_read() {
        let (mut h, mut v) = hier();
        h.data_access(0, 0x3000, true, 0, &mut v); // core 0 owns M
        let out = h.data_access(1, 0x3000, false, 400, &mut v);
        assert!(out.l1_miss);
        assert!(!out.l2_miss, "dirty data comes from the owner, not DRAM");
    }

    #[test]
    fn store_after_own_store_is_silent() {
        let (mut h, mut v) = hier();
        h.data_access(2, 0x4000, true, 0, &mut v);
        let out = h.data_access(2, 0x4000, true, 300, &mut v);
        assert_eq!(out.latency, 2);
    }

    #[test]
    fn inst_fetch_hits_are_free() {
        let (mut h, mut v) = hier();
        let out = h.inst_fetch(0, 0x8000, 0, &mut v);
        assert!(out.l1_miss);
        assert!(out.latency > 0);
        let out = h.inst_fetch(0, 0x8000, 100, &mut v);
        assert!(!out.l1_miss);
        assert_eq!(out.latency, 0);
    }

    #[test]
    fn tlb_second_access_same_page_hits() {
        let (mut h, mut v) = hier();
        let a = h.data_access(0, 0x1000, false, 0, &mut v);
        let b = h.data_access(0, 0x1040, false, 200, &mut v); // same 4K page, next block
        assert!(a.tlb_miss);
        assert!(!b.tlb_miss);
    }

    #[test]
    fn stats_accumulate() {
        let (mut h, mut v) = hier();
        for i in 0..10 {
            h.data_access(0, i * 64, false, i * 10, &mut v);
        }
        h.data_access(0, 0, true, 1000, &mut v);
        assert_eq!(h.loads(), 10);
        assert_eq!(h.stores(), 1);
        assert_eq!(h.l1d_accesses(), 11);
        assert!(h.avg_load_latency() > 0.0);
    }

    #[test]
    fn flush_core_releases_lines() {
        let (mut h, mut v) = hier();
        h.data_access(0, 0x1000, false, 0, &mut v);
        h.data_access(0, 0x2000, true, 100, &mut v);
        h.flush_core(0);
        // Both lines are gone: the next accesses miss L1 again (but hit
        // the still-warm L2).
        let out = h.data_access(0, 0x1000, false, 1000, &mut v);
        assert!(out.l1_miss);
        assert!(!out.l2_miss);
        // The directory no longer lists core 0 anywhere, so another
        // core's store needs no invalidation.
        let inv = h.invalidations();
        h.data_access(1, 0x1000, true, 2000, &mut v);
        // Core 0 re-read the line above, so one invalidation for core 0
        // is legitimate; flushing again and re-storing shows none.
        h.flush_core(0);
        h.flush_core(1);
        h.data_access(2, 0x2000, true, 3000, &mut v);
        assert!(h.invalidations() <= inv + 1);
    }

    #[test]
    fn next_line_prefetch_fills_l2() {
        let mut h = MemoryHierarchy::new(SystemConfig::table2().with_prefetch());
        let mut v = Variability::None.state_for_run(0);
        // Demand miss on block 0x1000/64 prefetches the next block.
        h.data_access(0, 0x1000, false, 0, &mut v);
        assert_eq!(h.prefetches(), 1);
        // The next line is already in L2: the second access misses L1
        // but NOT L2.
        let out = h.data_access(0, 0x1000 + 64, false, 500, &mut v);
        assert!(out.l1_miss);
        assert!(!out.l2_miss, "prefetched line should hit in L2");
        // Without the prefetcher the same pattern misses twice.
        let mut h2 = MemoryHierarchy::new(SystemConfig::table2());
        let mut v2 = Variability::None.state_for_run(0);
        h2.data_access(0, 0x1000, false, 0, &mut v2);
        assert_eq!(h2.prefetches(), 0);
        let out = h2.data_access(0, 0x1000 + 64, false, 500, &mut v2);
        assert!(out.l2_miss);
    }

    #[test]
    fn jitter_lengthens_misses() {
        let mut h = MemoryHierarchy::new(SystemConfig::table2());
        let mut v = Variability::DramJitter { max_cycles: 4 }.state_for_run(9);
        let mut total = 0u64;
        for i in 0..50 {
            total += h
                .data_access(0, i * 64 * 4096, false, i * 1000, &mut v)
                .latency;
        }
        let mut h2 = MemoryHierarchy::new(SystemConfig::table2());
        let mut v2 = Variability::None.state_for_run(9);
        let mut total2 = 0u64;
        for i in 0..50 {
            total2 += h2
                .data_access(0, i * 64 * 4096, false, i * 1000, &mut v2)
                .latency;
        }
        assert!(total >= total2);
        assert_eq!(h.jitter_cycles(), total - total2);
    }
}
