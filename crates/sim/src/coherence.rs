//! MESI directory coherence (the Table 2 protocol).
//!
//! The directory sits beside the shared L2 and tracks, per block, which
//! private L1 caches hold the line and in what state. Timing effects —
//! invalidation round-trips, dirty-owner forwarding — are returned as a
//! [`DirOutcome`] for the memory hierarchy to convert into cycles; the
//! directory itself only maintains protocol state.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::cache::BlockAddr;

/// Identifier of a core / private cache (index into the sharer mask).
pub type CoreId = u32;

/// MESI state of a block as recorded by the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MesiState {
    /// No private cache holds the line.
    #[default]
    Invalid,
    /// Exactly one cache holds it, clean, with write permission
    /// obtainable silently.
    Exclusive,
    /// One or more caches hold read-only copies.
    Shared,
    /// Exactly one cache holds a dirty copy.
    Modified,
}

/// What the directory had to do to satisfy a request; the memory
/// hierarchy prices these into latency.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirOutcome {
    /// Cores whose L1 copies were invalidated.
    pub invalidated: Vec<CoreId>,
    /// A dirty owner had to forward/write back the line.
    pub fetched_from_owner: Option<CoreId>,
    /// The block's new state.
    pub new_state: MesiState,
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: u64,
    state: MesiStateRepr,
}

/// Internal compact state (avoids storing `MesiState::Invalid` entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum MesiStateRepr {
    #[default]
    Invalid,
    Exclusive,
    Shared,
    Modified,
}

impl From<MesiStateRepr> for MesiState {
    fn from(s: MesiStateRepr) -> Self {
        match s {
            MesiStateRepr::Invalid => MesiState::Invalid,
            MesiStateRepr::Exclusive => MesiState::Exclusive,
            MesiStateRepr::Shared => MesiState::Shared,
            MesiStateRepr::Modified => MesiState::Modified,
        }
    }
}

/// The MESI directory.
///
/// # Examples
///
/// ```
/// use spa_sim::coherence::{Directory, MesiState};
/// let mut d = Directory::new(4);
/// let r = d.read(0, 100);
/// assert_eq!(r.new_state, MesiState::Exclusive);
/// let r = d.read(1, 100);
/// assert_eq!(r.new_state, MesiState::Shared);
/// let w = d.write(2, 100);
/// assert_eq!(w.invalidated.len(), 2); // cores 0 and 1 lose their copies
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    entries: HashMap<BlockAddr, DirEntry>,
    cores: u32,
    invalidations_sent: u64,
    owner_forwards: u64,
}

impl Directory {
    /// Creates a directory for `cores` private caches.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or greater than 64 (sharer-mask width).
    pub fn new(cores: u32) -> Self {
        assert!((1..=64).contains(&cores), "1..=64 cores supported");
        Self {
            entries: HashMap::new(),
            cores,
            invalidations_sent: 0,
            owner_forwards: 0,
        }
    }

    /// Current state of a block.
    pub fn state(&self, block: BlockAddr) -> MesiState {
        self.entries
            .get(&block)
            .map_or(MesiState::Invalid, |e| e.state.into())
    }

    /// Sharer cores of a block (including an exclusive/modified owner).
    pub fn sharers(&self, block: BlockAddr) -> Vec<CoreId> {
        let mask = self.entries.get(&block).map_or(0, |e| e.sharers);
        (0..self.cores).filter(|c| mask & (1 << c) != 0).collect()
    }

    /// Handles a read (load) request from `core`.
    pub fn read(&mut self, core: CoreId, block: BlockAddr) -> DirOutcome {
        debug_assert!(core < self.cores);
        let entry = self.entries.entry(block).or_default();
        let bit = 1u64 << core;
        match entry.state {
            MesiStateRepr::Invalid => {
                entry.state = MesiStateRepr::Exclusive;
                entry.sharers = bit;
                DirOutcome {
                    new_state: MesiState::Exclusive,
                    ..DirOutcome::default()
                }
            }
            MesiStateRepr::Exclusive | MesiStateRepr::Shared => {
                let was_alone = entry.sharers == bit;
                entry.sharers |= bit;
                entry.state = if was_alone && entry.state == MesiStateRepr::Exclusive {
                    MesiStateRepr::Exclusive // re-read by the owner
                } else {
                    MesiStateRepr::Shared
                };
                DirOutcome {
                    new_state: entry.state.into(),
                    ..DirOutcome::default()
                }
            }
            MesiStateRepr::Modified => {
                let owner_bit = entry.sharers;
                let owner = owner_bit.trailing_zeros();
                if owner_bit == bit {
                    // Owner re-reads its own dirty line.
                    DirOutcome {
                        new_state: MesiState::Modified,
                        ..DirOutcome::default()
                    }
                } else {
                    // Dirty data forwarded; both keep shared copies.
                    self.owner_forwards += 1;
                    entry.sharers |= bit;
                    entry.state = MesiStateRepr::Shared;
                    DirOutcome {
                        fetched_from_owner: Some(owner),
                        new_state: MesiState::Shared,
                        invalidated: Vec::new(),
                    }
                }
            }
        }
    }

    /// Handles a write (store) request from `core`.
    pub fn write(&mut self, core: CoreId, block: BlockAddr) -> DirOutcome {
        debug_assert!(core < self.cores);
        let entry = self.entries.entry(block).or_default();
        let bit = 1u64 << core;
        match entry.state {
            MesiStateRepr::Invalid => {
                entry.state = MesiStateRepr::Modified;
                entry.sharers = bit;
                DirOutcome {
                    new_state: MesiState::Modified,
                    ..DirOutcome::default()
                }
            }
            MesiStateRepr::Exclusive if entry.sharers == bit => {
                // Silent E → M upgrade.
                entry.state = MesiStateRepr::Modified;
                DirOutcome {
                    new_state: MesiState::Modified,
                    ..DirOutcome::default()
                }
            }
            MesiStateRepr::Modified if entry.sharers == bit => DirOutcome {
                new_state: MesiState::Modified,
                ..DirOutcome::default()
            },
            _ => {
                // Invalidate every other sharer; fetch from a dirty owner.
                let others = entry.sharers & !bit;
                let fetched = if entry.state == MesiStateRepr::Modified && others != 0 {
                    self.owner_forwards += 1;
                    Some(others.trailing_zeros())
                } else {
                    None
                };
                let invalidated: Vec<CoreId> =
                    (0..self.cores).filter(|c| others & (1 << c) != 0).collect();
                self.invalidations_sent += invalidated.len() as u64;
                entry.sharers = bit;
                entry.state = MesiStateRepr::Modified;
                DirOutcome {
                    invalidated,
                    fetched_from_owner: fetched,
                    new_state: MesiState::Modified,
                }
            }
        }
    }

    /// Core `core` silently drops its copy (L1 eviction).
    pub fn evict_l1(&mut self, core: CoreId, block: BlockAddr) {
        if let Some(entry) = self.entries.get_mut(&block) {
            entry.sharers &= !(1u64 << core);
            if entry.sharers == 0 {
                self.entries.remove(&block);
            } else if entry.state == MesiStateRepr::Exclusive
                || entry.state == MesiStateRepr::Modified
            {
                // Sole owner left; remaining mask should be empty, but be
                // safe: demote to shared.
                entry.state = MesiStateRepr::Shared;
            }
        }
    }

    /// The inclusive L2 evicts `block`: every L1 copy must be
    /// invalidated. Returns the cores that held it.
    pub fn evict_l2(&mut self, block: BlockAddr) -> Vec<CoreId> {
        match self.entries.remove(&block) {
            None => Vec::new(),
            Some(entry) => {
                let holders: Vec<CoreId> = (0..self.cores)
                    .filter(|c| entry.sharers & (1 << c) != 0)
                    .collect();
                self.invalidations_sent += holders.len() as u64;
                holders
            }
        }
    }

    /// Total invalidation messages sent.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations_sent
    }

    /// Total dirty-owner forwards.
    pub fn owner_forwards(&self) -> u64 {
        self.owner_forwards
    }

    /// Number of blocks the directory currently tracks.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_read_gets_exclusive() {
        let mut d = Directory::new(4);
        let r = d.read(0, 7);
        assert_eq!(r.new_state, MesiState::Exclusive);
        assert!(r.invalidated.is_empty());
        assert_eq!(d.sharers(7), vec![0]);
    }

    #[test]
    fn second_reader_shares() {
        let mut d = Directory::new(4);
        d.read(0, 7);
        let r = d.read(1, 7);
        assert_eq!(r.new_state, MesiState::Shared);
        assert_eq!(d.sharers(7), vec![0, 1]);
        assert_eq!(d.state(7), MesiState::Shared);
    }

    #[test]
    fn silent_e_to_m_upgrade() {
        let mut d = Directory::new(4);
        d.read(2, 9);
        let w = d.write(2, 9);
        assert_eq!(w.new_state, MesiState::Modified);
        assert!(w.invalidated.is_empty());
        assert!(w.fetched_from_owner.is_none());
        assert_eq!(d.invalidations_sent(), 0);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new(4);
        d.read(0, 5);
        d.read(1, 5);
        d.read(3, 5);
        let w = d.write(2, 5);
        assert_eq!(w.invalidated, vec![0, 1, 3]);
        assert_eq!(d.state(5), MesiState::Modified);
        assert_eq!(d.sharers(5), vec![2]);
        assert_eq!(d.invalidations_sent(), 3);
    }

    #[test]
    fn read_of_modified_forwards_from_owner() {
        let mut d = Directory::new(4);
        d.write(1, 5);
        let r = d.read(0, 5);
        assert_eq!(r.fetched_from_owner, Some(1));
        assert_eq!(r.new_state, MesiState::Shared);
        assert_eq!(d.owner_forwards(), 1);
        assert_eq!(d.sharers(5), vec![0, 1]);
    }

    #[test]
    fn owner_rereads_own_dirty_line() {
        let mut d = Directory::new(4);
        d.write(1, 5);
        let r = d.read(1, 5);
        assert_eq!(r.new_state, MesiState::Modified);
        assert!(r.fetched_from_owner.is_none());
    }

    #[test]
    fn write_to_modified_other_owner() {
        let mut d = Directory::new(4);
        d.write(1, 5);
        let w = d.write(2, 5);
        assert_eq!(w.fetched_from_owner, Some(1));
        assert_eq!(w.invalidated, vec![1]);
        assert_eq!(d.sharers(5), vec![2]);
    }

    #[test]
    fn l1_eviction_clears_sharer() {
        let mut d = Directory::new(4);
        d.read(0, 5);
        d.read(1, 5);
        d.evict_l1(0, 5);
        assert_eq!(d.sharers(5), vec![1]);
        d.evict_l1(1, 5);
        assert_eq!(d.state(5), MesiState::Invalid);
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn l2_eviction_back_invalidates() {
        let mut d = Directory::new(4);
        d.read(0, 5);
        d.read(2, 5);
        let holders = d.evict_l2(5);
        assert_eq!(holders, vec![0, 2]);
        assert_eq!(d.state(5), MesiState::Invalid);
        assert!(d.evict_l2(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "1..=64 cores")]
    fn zero_cores_panics() {
        let _ = Directory::new(0);
    }

    proptest! {
        #[test]
        fn single_writer_invariant(ops in proptest::collection::vec((0_u32..4, 0_u64..8, any::<bool>()), 1..200)) {
            // After any sequence of reads/writes, a Modified or Exclusive
            // block has exactly one sharer.
            let mut d = Directory::new(4);
            for (core, block, is_write) in ops {
                if is_write {
                    d.write(core, block);
                } else {
                    d.read(core, block);
                }
            }
            for block in 0..8 {
                match d.state(block) {
                    MesiState::Modified | MesiState::Exclusive => {
                        prop_assert_eq!(d.sharers(block).len(), 1);
                    }
                    MesiState::Shared => {
                        prop_assert!(!d.sharers(block).is_empty());
                    }
                    MesiState::Invalid => {
                        prop_assert!(d.sharers(block).is_empty());
                    }
                }
            }
        }
    }
}
