//! Workload representation: ops, work items, and thread programs.
//!
//! A workload is data, not code: each thread runs a small program over
//! basic ops (compute / load / store / branch) and coordination
//! instructions (locks, barriers, bounded queues, shared work pools).
//! Work *items* — units such as one ferret query or one canneal move —
//! are op sequences stored in tables; programs pull item ids from pools
//! or queues and execute them. Because item→thread assignment is decided
//! by runtime arrival order at pools/queues, the injected DRAM jitter
//! changes who executes what, and metrics vary run to run exactly as
//! §2.1 of the paper describes.
//!
//! Workload structure is generated from a *fixed* internal key, never
//! the execution seed, so the program is identical across runs (§5.2).

pub mod parsec;

use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// A basic operation executed by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Pure computation: `cycles` of latency, `instructions` committed.
    Compute {
        /// Latency in cycles.
        cycles: u16,
        /// Instructions represented.
        instructions: u16,
    },
    /// A load from a byte address (1 instruction).
    Load {
        /// Byte address.
        addr: u64,
    },
    /// A store to a byte address (1 instruction).
    Store {
        /// Byte address.
        addr: u64,
    },
    /// A conditional branch (1 instruction) with its static PC and
    /// dynamic outcome.
    Branch {
        /// Branch site address (predictor index).
        pc: u32,
        /// Whether the branch is taken this execution of the op.
        taken: bool,
    },
}

impl Op {
    /// Instructions this op represents.
    pub fn instructions(&self) -> u64 {
        match self {
            Op::Compute { instructions, .. } => *instructions as u64,
            _ => 1,
        }
    }
}

/// A unit of schedulable work: one query, one transaction, one chunk.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// The ops executed when a thread runs this item.
    pub ops: Vec<Op>,
}

/// A shared pool of item ids `[start, end)` consumed in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// First item id.
    pub start: u64,
    /// One past the last item id.
    pub end: u64,
    /// Byte address of the pool's shared counter (its cache line
    /// ping-pongs between consumers, as in a real work queue).
    pub counter_addr: u64,
}

/// A bounded inter-stage queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSpec {
    /// Buffer capacity in items.
    pub capacity: u32,
    /// Number of producer threads; the queue closes when all have
    /// issued `CloseQueue`.
    pub producers: u32,
}

/// One instruction of a thread program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PInstr {
    /// Execute a basic op.
    Basic(Op),
    /// Acquire a lock (blocking; includes the lock-line store).
    LockAcquire(u16),
    /// Release a lock.
    LockRelease(u16),
    /// Arrive at a barrier (blocking until all parties arrive).
    Barrier(u16),
    /// Pop the next item id from a pool into the item register; jump to
    /// the given program index when the pool is empty.
    PoolPop {
        /// Pool index.
        pool: u16,
        /// Jump target when exhausted.
        jump_if_empty: u32,
    },
    /// Execute the ops of the current item, reading them from the given
    /// item table.
    RunItem {
        /// Item-table index.
        table: u16,
    },
    /// Push the current item id to a queue (blocking when full).
    QueuePush(u16),
    /// Pop an item id from a queue into the item register (blocking when
    /// empty); jump when the queue is closed and drained.
    QueuePop {
        /// Queue index.
        queue: u16,
        /// Jump target at closure.
        jump_if_closed: u32,
    },
    /// Declare this producer finished with a queue.
    CloseQueue(u16),
    /// Set the item register explicitly (static schedules).
    SetItem(u64),
    /// Unconditional jump.
    Jump(u32),
    /// Thread finished.
    End,
}

/// A complete multithreaded workload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name (e.g. `ferret`).
    pub name: String,
    /// One program per thread; the machine requires
    /// `programs.len() == config.cores`.
    pub programs: Vec<Vec<PInstr>>,
    /// Item tables referenced by [`PInstr::RunItem`].
    pub tables: Vec<Vec<WorkItem>>,
    /// Shared pools.
    pub pools: Vec<PoolSpec>,
    /// Bounded queues.
    pub queues: Vec<QueueSpec>,
    /// Number of locks (lock `i` has line address `lock_base + 64·i`).
    pub locks: u16,
    /// Barrier party counts.
    pub barriers: Vec<u32>,
    /// Code footprint in bytes (drives the L1I behaviour).
    pub code_bytes: u64,
}

impl WorkloadSpec {
    /// Structural validation: every jump, table, pool, queue, lock and
    /// barrier reference must exist, and pools must reference valid item
    /// ids.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| {
            Err(SimError::InvalidConfig {
                field: "workload",
                message: msg,
            })
        };
        if self.programs.is_empty() {
            return fail("no thread programs".into());
        }
        let max_items: u64 = self
            .tables
            .iter()
            .map(|t| t.len() as u64)
            .min()
            .unwrap_or(0);
        for pool in &self.pools {
            if pool.start > pool.end {
                return fail(format!("pool range {}..{} inverted", pool.start, pool.end));
            }
            if !self.tables.is_empty() && pool.end > max_items {
                return fail(format!(
                    "pool end {} exceeds smallest table size {max_items}",
                    pool.end
                ));
            }
        }
        for (tid, prog) in self.programs.iter().enumerate() {
            if prog.is_empty() {
                return fail(format!("thread {tid} has an empty program"));
            }
            if !matches!(prog.last(), Some(PInstr::End | PInstr::Jump(_))) {
                return fail(format!("thread {tid} program does not end in End/Jump"));
            }
            for (pc, instr) in prog.iter().enumerate() {
                let target = match instr {
                    PInstr::Jump(t) => Some(*t),
                    PInstr::PoolPop { jump_if_empty, .. } => Some(*jump_if_empty),
                    PInstr::QueuePop { jump_if_closed, .. } => Some(*jump_if_closed),
                    _ => None,
                };
                if let Some(t) = target {
                    if t as usize >= prog.len() {
                        return fail(format!("thread {tid} pc {pc}: jump to {t} out of range"));
                    }
                }
                match instr {
                    PInstr::RunItem { table } if *table as usize >= self.tables.len() => {
                        return fail(format!("thread {tid} pc {pc}: no item table {table}"));
                    }
                    PInstr::PoolPop { pool, .. } if *pool as usize >= self.pools.len() => {
                        return fail(format!("thread {tid} pc {pc}: no pool {pool}"));
                    }
                    PInstr::QueuePush(q) | PInstr::CloseQueue(q)
                        if *q as usize >= self.queues.len() =>
                    {
                        return fail(format!("thread {tid} pc {pc}: no queue {q}"));
                    }
                    PInstr::QueuePop { queue, .. } if *queue as usize >= self.queues.len() => {
                        return fail(format!("thread {tid} pc {pc}: no queue {queue}"));
                    }
                    PInstr::LockAcquire(l) | PInstr::LockRelease(l) if *l >= self.locks => {
                        return fail(format!("thread {tid} pc {pc}: no lock {l}"));
                    }
                    PInstr::Barrier(b) if *b as usize >= self.barriers.len() => {
                        return fail(format!("thread {tid} pc {pc}: no barrier {b}"));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Total ops across all item tables (a size/effort indicator).
    pub fn total_item_ops(&self) -> usize {
        self.tables
            .iter()
            .flat_map(|t| t.iter().map(|i| i.ops.len()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            programs: vec![vec![
                PInstr::Basic(Op::Compute {
                    cycles: 5,
                    instructions: 5,
                }),
                PInstr::End,
            ]],
            code_bytes: 4096,
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn minimal_validates() {
        assert!(minimal().validate().is_ok());
    }

    #[test]
    fn empty_workload_rejected() {
        let w = WorkloadSpec::default();
        assert!(w.validate().is_err());
    }

    #[test]
    fn jump_out_of_range_rejected() {
        let mut w = minimal();
        w.programs[0].insert(0, PInstr::Jump(99));
        assert!(w.validate().is_err());
    }

    #[test]
    fn dangling_references_rejected() {
        for bad in [
            PInstr::RunItem { table: 0 },
            PInstr::PoolPop {
                pool: 0,
                jump_if_empty: 1,
            },
            PInstr::QueuePush(0),
            PInstr::QueuePop {
                queue: 0,
                jump_if_closed: 1,
            },
            PInstr::CloseQueue(0),
            PInstr::LockAcquire(0),
            PInstr::LockRelease(0),
            PInstr::Barrier(0),
        ] {
            let mut w = minimal();
            w.programs[0].insert(0, bad);
            assert!(w.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn program_must_terminate() {
        let mut w = minimal();
        w.programs[0].pop(); // drop End
        assert!(w.validate().is_err());
    }

    #[test]
    fn pool_bounds_checked() {
        let mut w = minimal();
        w.tables = vec![vec![WorkItem::default(); 4]];
        w.pools = vec![PoolSpec {
            start: 0,
            end: 5, // beyond table
            counter_addr: 0x100,
        }];
        assert!(w.validate().is_err());
        w.pools[0].end = 4;
        assert!(w.validate().is_ok());
    }

    #[test]
    fn op_instruction_counts() {
        assert_eq!(
            Op::Compute {
                cycles: 3,
                instructions: 7
            }
            .instructions(),
            7
        );
        assert_eq!(Op::Load { addr: 0 }.instructions(), 1);
        assert_eq!(Op::Store { addr: 0 }.instructions(), 1);
        assert_eq!(Op::Branch { pc: 0, taken: true }.instructions(), 1);
    }

    #[test]
    fn total_ops_counts_tables() {
        let mut w = minimal();
        w.tables = vec![
            vec![
                WorkItem {
                    ops: vec![Op::Load { addr: 0 }; 3],
                },
                WorkItem {
                    ops: vec![Op::Load { addr: 0 }; 2],
                },
            ],
            vec![WorkItem {
                ops: vec![Op::Load { addr: 0 }; 5],
            }],
        ];
        assert_eq!(w.total_item_ops(), 10);
    }
}
