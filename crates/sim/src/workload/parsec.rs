//! Synthetic workloads modelled on the PARSEC benchmarks the paper
//! evaluates (§5.1: PARSEC with simsmall inputs, excluding raytrace,
//! vips and x264; ferret is the focus because it "exhibits some of the
//! greatest variability, due to frequent synchronization and data
//! sharing").
//!
//! Each generator reproduces the benchmark's *statistical* character —
//! parallelization style, synchronization intensity, working-set size,
//! sharing pattern, and cost heterogeneity — rather than its
//! computation:
//!
//! | Benchmark | Style | Variability driver |
//! |-----------|-------|--------------------|
//! | ferret | pipeline + shared worker pool | work stealing, heavy sharing |
//! | blackscholes | static data-parallel | nearly none |
//! | bodytrack | phased dynamic chunks + barriers | chunk assignment |
//! | canneal | shared move pool, huge working set | cache thrash, lock order |
//! | dedup | 4-stage pipeline, bounded queues | backpressure |
//! | facesim | phased, neighbour sharing | invalidation order |
//! | fluidanimate | barriers + fine-grain locks | lock convoys |
//! | freqmine | shared pool, read-mostly tree | assignment |
//! | streamcluster | barrier-heavy phases | straggler timing |
//!
//! The structure is generated from a *fixed* key (never the execution
//! seed), so every run executes the identical program (§5.2).

use serde::{Deserialize, Serialize};

use crate::rng::{SimRng, Stream};
use crate::workload::{Op, PInstr, PoolSpec, QueueSpec, WorkItem, WorkloadSpec};

/// Shared read-mostly data region ("the database").
const DB_BASE: u64 = 0x1000_0000;
/// Shared writable region (results, counters).
const SHARED_BASE: u64 = 0x4000_0000;
/// Per-item private scratch regions.
const PRIV_BASE: u64 = 0x8000_0000;
/// Pool-counter lines.
const POOL_BASE: u64 = 0xA000_0000;

/// The PARSEC benchmarks used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Content-based similarity search (pipeline; the paper's focus).
    Ferret,
    /// Option pricing (embarrassingly parallel).
    Blackscholes,
    /// Body tracking (phased data-parallel).
    Bodytrack,
    /// Simulated annealing for chip routing (cache-thrashing).
    Canneal,
    /// Stream deduplication (pipeline).
    Dedup,
    /// Face simulation (neighbour sharing).
    Facesim,
    /// Fluid dynamics (barriers + fine-grain locks).
    Fluidanimate,
    /// Frequent itemset mining (shared tree).
    Freqmine,
    /// Online clustering (barrier-heavy).
    Streamcluster,
}

impl Benchmark {
    /// All benchmarks, ferret first (the paper's ordering).
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Ferret,
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Dedup,
        Benchmark::Facesim,
        Benchmark::Fluidanimate,
        Benchmark::Freqmine,
        Benchmark::Streamcluster,
    ];

    /// Lower-case benchmark name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Ferret => "ferret",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Dedup => "dedup",
            Benchmark::Facesim => "facesim",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Streamcluster => "streamcluster",
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<Self> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Builds the benchmark's workload at standard (simsmall-like)
    /// scale.
    pub fn workload(&self) -> WorkloadSpec {
        self.workload_scaled(1.0)
    }

    /// Builds the workload with item counts scaled by `scale`
    /// (`0 < scale ≤ 4`); tests use small scales for speed.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 4]`.
    pub fn workload_scaled(&self, scale: f64) -> WorkloadSpec {
        assert!(scale > 0.0 && scale <= 4.0, "scale out of range");
        let mut spec = match self {
            Benchmark::Ferret => ferret(scale),
            Benchmark::Blackscholes => blackscholes(scale),
            Benchmark::Bodytrack => bodytrack(scale),
            Benchmark::Canneal => canneal(scale),
            Benchmark::Dedup => dedup(scale),
            Benchmark::Facesim => facesim(scale),
            Benchmark::Fluidanimate => fluidanimate(scale),
            Benchmark::Freqmine => freqmine(scale),
            Benchmark::Streamcluster => streamcluster(scale),
        };
        spec.name = self.name().to_owned();
        debug_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
        spec
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fixed workload-structure key (never the execution seed; see §5.2).
const WORKLOAD_KEY: u64 = 0x5EED_0F57_A71C;

fn gen_for(bench: &str, lane: u64) -> SimRng {
    // Mix the benchmark name into the lane so benchmarks differ.
    let tag: u64 = bench
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
    SimRng::new(WORKLOAD_KEY ^ tag, Stream::Workload, lane)
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(4)
}

/// Emits `count` loads over `[base, base+span)` with `locality` of them
/// confined to a `hot_span` window starting at `hot_off`.
#[allow(clippy::too_many_arguments)]
fn emit_loads(
    ops: &mut Vec<Op>,
    rng: &mut SimRng,
    base: u64,
    span: u64,
    hot_off: u64,
    hot_span: u64,
    locality: f64,
    count: usize,
) {
    for _ in 0..count {
        let addr = if rng.uniform_f64() < locality {
            base + hot_off + rng.uniform_u64(0, hot_span.saturating_sub(1).max(1))
        } else {
            base + rng.uniform_u64(0, span.saturating_sub(1).max(1))
        };
        ops.push(Op::Load { addr: addr & !7 });
    }
}

fn emit_compute(ops: &mut Vec<Op>, rng: &mut SimRng, total_cycles: u64) {
    let mut left = total_cycles;
    while left > 0 {
        let c = rng.uniform_u64(8, 40).min(left).max(1);
        ops.push(Op::Compute {
            cycles: c as u16,
            instructions: (c + c / 2) as u16,
        });
        left -= c;
    }
}

fn emit_branches(ops: &mut Vec<Op>, rng: &mut SimRng, site_base: u32, sites: u32, count: usize) {
    for _ in 0..count {
        let site = site_base + rng.uniform_u64(0, sites as u64 - 1) as u32 * 8;
        // Mixed predictability: most branches biased, some random.
        let bias = match site % 3 {
            0 => 0.95,
            1 => 0.8,
            _ => 0.5,
        };
        ops.push(Op::Branch {
            pc: site,
            taken: rng.uniform_f64() < bias,
        });
    }
}

/// The standard dynamic-pool worker program:
/// `loop { pool-pop; run item } → (optional barrier) → end`.
fn pool_worker(pool: u16, table: u16, barrier: Option<u16>) -> Vec<PInstr> {
    let mut prog = vec![
        PInstr::PoolPop {
            pool,
            jump_if_empty: 3,
        },
        PInstr::RunItem { table },
        PInstr::Jump(0),
    ];
    if let Some(b) = barrier {
        prog.push(PInstr::Barrier(b));
    }
    prog.push(PInstr::End);
    prog
}

// ---------------------------------------------------------------------
// ferret: 4-stage logical pipeline mapped onto 4 cores:
//   t0 = source (segmentation/extraction), t1+t2 = worker pool
//   (indexing/ranking against the shared database), t3 = sink (top-K
//   aggregation under a lock).
// ---------------------------------------------------------------------
fn ferret(scale: f64) -> WorkloadSpec {
    let queries = scaled(260, scale);
    let db_span: u64 = 1536 * 1024; // 1.5 MB database
                                    // Index region re-scanned periodically by workers: ~700 KB of it is
                                    // live at a time, so it fits a 1 MB L2 but thrashes a 512 kB one —
                                    // the capacity sensitivity behind the paper's §4.2 speedup study.
    let index_base: u64 = DB_BASE + 0x0800_0000;
    let index_lines: u64 = 600 * 1024 / 64;
    let mut index_cursor: u64 = 0;
    let clusters = 24u64;
    // Per-cluster hot set sized well inside the 32 KB L1D, so a worker
    // that keeps a cluster's burst enjoys L1 hits while splitting the
    // burst between workers makes both miss — cache affinity turns the
    // assignment (decided by timing) into real work differences.
    let hot_span: u64 = 12 * 1024;

    let mut rng = gen_for("ferret", 0);
    let mut source_items = Vec::with_capacity(queries);
    let mut work_items = Vec::with_capacity(queries);
    let mut sink_items = Vec::with_capacity(queries);

    let mut cluster = 0u64;
    for q in 0..queries {
        // Queries arrive in bursts from the same cluster, so which
        // worker handles consecutive queries decides cache affinity.
        if q % 16 == 0 {
            cluster = rng.uniform_u64(0, clusters - 1);
        }

        // Source: read the query image (sequential private region).
        let mut ops = Vec::new();
        let qbase = PRIV_BASE + (q as u64) * 8192;
        for j in 0..10 {
            ops.push(Op::Load {
                addr: qbase + j * 512,
            });
        }
        let n_cycles = rng.uniform_u64(60, 120);
        emit_compute(&mut ops, &mut rng, n_cycles);
        emit_branches(&mut ops, &mut rng, 0x1000, 12, 4);
        source_items.push(WorkItem { ops });

        // Worker: the heavy stage — probe the shared database with
        // strong reuse of the query's cluster hot set, update the
        // cluster's accumulator lines (which ping-pong between workers
        // when a burst is split), then item-dependent ranking compute.
        // Every 24th query additionally walks a stretch of the shared
        // index; successive walks revisit the same lines, so hit rate
        // depends on whether the L2 can hold the ~700 KB live set.
        let mut ops = Vec::new();
        if q % 24 == 23 {
            for _ in 0..2304 {
                ops.push(Op::Load {
                    addr: index_base + (index_cursor % index_lines) * 64,
                });
                index_cursor += 1;
            }
        }
        let n_loads = rng.uniform_u64(40, 64) as usize;
        emit_loads(
            &mut ops,
            &mut rng,
            DB_BASE,
            db_span,
            cluster * hot_span,
            hot_span,
            0.85,
            n_loads,
        );
        // Accumulator read-modify-writes on four cluster-owned lines:
        // cheap when one worker keeps the burst (silent M-state stores),
        // expensive when the burst is split (directory ping-pong).
        for j in 0..8 {
            let acc = SHARED_BASE + 0x4000 + cluster * 1024 + j * 64;
            ops.push(Op::Load { addr: acc });
            ops.push(Op::Store { addr: acc });
        }
        let n_cycles = rng.uniform_u64(150, 700);
        emit_compute(&mut ops, &mut rng, n_cycles);
        emit_branches(&mut ops, &mut rng, 0x2000, 48, 10);
        for j in 0..6 {
            ops.push(Op::Store {
                addr: PRIV_BASE + 0x0400_0000 + (q as u64) * 1024 + j * 64,
            });
        }
        work_items.push(WorkItem { ops });

        // Sink: merge into the shared top-K structure. Most merges are
        // cheap, but a periodic re-rank is expensive; when one lands
        // while the worker→sink queue is already full, the workers
        // convoy behind it — a low-frequency bifurcation whose impact
        // depends on run-specific timing (the variability driver the
        // paper attributes to ferret's frequent synchronization).
        let mut ops = Vec::new();
        for j in 0..4 {
            ops.push(Op::Load {
                addr: SHARED_BASE + (q as u64 % 64) * 64 + j * 8,
            });
        }
        ops.push(Op::Store {
            addr: SHARED_BASE + (q as u64 % 64) * 64,
        });
        let n_cycles = if q % 10 == 9 {
            rng.uniform_u64(4_000, 10_000)
        } else {
            rng.uniform_u64(30, 80)
        };
        emit_compute(&mut ops, &mut rng, n_cycles);
        sink_items.push(WorkItem { ops });
    }

    let source = vec![
        PInstr::PoolPop {
            pool: 0,
            jump_if_empty: 4,
        },
        PInstr::RunItem { table: 0 },
        PInstr::QueuePush(0),
        PInstr::Jump(0),
        PInstr::CloseQueue(0),
        PInstr::End,
    ];
    let worker = vec![
        PInstr::QueuePop {
            queue: 0,
            jump_if_closed: 4,
        },
        PInstr::RunItem { table: 1 },
        PInstr::QueuePush(1),
        PInstr::Jump(0),
        PInstr::CloseQueue(1),
        PInstr::End,
    ];
    let sink = vec![
        PInstr::QueuePop {
            queue: 1,
            jump_if_closed: 5,
        },
        PInstr::LockAcquire(0),
        PInstr::RunItem { table: 2 },
        PInstr::LockRelease(0),
        PInstr::Jump(0),
        PInstr::End,
    ];

    WorkloadSpec {
        name: String::new(),
        programs: vec![source, worker.clone(), worker, sink],
        tables: vec![source_items, work_items, sink_items],
        pools: vec![PoolSpec {
            start: 0,
            end: queries as u64,
            counter_addr: POOL_BASE,
        }],
        queues: vec![
            QueueSpec {
                capacity: 6,
                producers: 1,
            },
            QueueSpec {
                capacity: 3,
                producers: 2,
            },
        ],
        locks: 1,
        barriers: vec![],
        code_bytes: 96 * 1024, // larger than L1I: some fetch misses
    }
}

// ---------------------------------------------------------------------
// blackscholes: static partitioning, no sharing, barrier at the end.
// ---------------------------------------------------------------------
fn blackscholes(scale: f64) -> WorkloadSpec {
    let per_thread = scaled(60, scale);
    let threads = 4usize;
    let mut rng = gen_for("blackscholes", 0);
    let mut items = Vec::with_capacity(per_thread * threads);
    // Each thread's option slice is small (16 KB) and re-walked every
    // item, so after the first pass everything is L1-resident — the
    // near-zero variability the paper reports for blackscholes.
    for t in 0..threads {
        for i in 0..per_thread {
            let mut ops = Vec::new();
            let slice = PRIV_BASE + (t as u64) * 0x0100_0000;
            let off = (i as u64 * 512) % (16 * 1024);
            for j in 0..2 {
                ops.push(Op::Load {
                    addr: slice + (off + j * 64) % (4 * 1024),
                });
            }
            let n_cycles = rng.uniform_u64(800, 840);
            emit_compute(&mut ops, &mut rng, n_cycles);
            emit_branches(&mut ops, &mut rng, 0x3000, 8, 3);
            ops.push(Op::Store {
                addr: slice + 0x8000 + off,
            });
            items.push(WorkItem { ops });
        }
    }
    let programs = (0..threads)
        .map(|t| {
            let start = (t * per_thread) as u64;
            let mut prog = Vec::new();
            for k in 0..per_thread as u64 {
                prog.push(PInstr::SetItem(start + k));
                prog.push(PInstr::RunItem { table: 0 });
            }
            prog.push(PInstr::Barrier(0));
            prog.push(PInstr::End);
            prog
        })
        .collect();
    WorkloadSpec {
        name: String::new(),
        programs,
        tables: vec![items],
        pools: vec![],
        queues: vec![],
        locks: 0,
        barriers: vec![4],
        code_bytes: 16 * 1024, // fits in L1I
    }
}

// ---------------------------------------------------------------------
// bodytrack: phases of dynamically chunked data-parallel work with a
// barrier between phases.
// ---------------------------------------------------------------------
fn bodytrack(scale: f64) -> WorkloadSpec {
    let phases = 5usize;
    let chunks_per_phase = scaled(36, scale);
    let mut rng = gen_for("bodytrack", 0);
    let frame_span: u64 = 512 * 1024;
    let mut items = Vec::new();
    for p in 0..phases {
        for _ in 0..chunks_per_phase {
            let mut ops = Vec::new();
            let n_loads = rng.uniform_u64(10, 22) as usize;
            let hot_off = rng.uniform_u64(0, frame_span / 2);
            emit_loads(
                &mut ops,
                &mut rng,
                DB_BASE + (p as u64) * frame_span,
                frame_span,
                hot_off,
                frame_span / 8,
                0.6,
                n_loads,
            );
            let n_cycles = rng.uniform_u64(120, 420);
            emit_compute(&mut ops, &mut rng, n_cycles);
            emit_branches(&mut ops, &mut rng, 0x4000, 24, 6);
            ops.push(Op::Store {
                addr: SHARED_BASE + 0x1000 + rng.uniform_u64(0, 255) * 64,
            });
            items.push(WorkItem { ops });
        }
    }
    let programs = (0..4)
        .map(|_| {
            let mut prog = Vec::new();
            for p in 0..phases as u16 {
                let base = prog.len() as u32;
                prog.push(PInstr::PoolPop {
                    pool: p,
                    jump_if_empty: base + 3,
                });
                prog.push(PInstr::RunItem { table: 0 });
                prog.push(PInstr::Jump(base));
                prog.push(PInstr::Barrier(0));
            }
            prog.push(PInstr::End);
            prog
        })
        .collect();
    let pools = (0..phases as u64)
        .map(|p| PoolSpec {
            start: p * chunks_per_phase as u64,
            end: (p + 1) * chunks_per_phase as u64,
            counter_addr: POOL_BASE + p * 64,
        })
        .collect();
    WorkloadSpec {
        name: String::new(),
        programs,
        tables: vec![items],
        pools,
        queues: vec![],
        locks: 0,
        barriers: vec![4],
        code_bytes: 48 * 1024,
    }
}

// ---------------------------------------------------------------------
// canneal: shared pool of annealing moves over a working set far larger
// than the L2; element swaps guarded by striped locks.
// ---------------------------------------------------------------------
fn canneal(scale: f64) -> WorkloadSpec {
    let moves = scaled(200, scale);
    let netlist_span: u64 = 16 * 1024 * 1024; // 16 MB ⇒ constant L2 misses
    let mut rng = gen_for("canneal", 0);
    let mut items = Vec::with_capacity(moves);
    for _ in 0..moves {
        let mut ops = Vec::new();
        // Evaluate two candidate elements and their neighbours: random
        // pointer chasing across the netlist.
        let n_loads = rng.uniform_u64(14, 22) as usize;
        emit_loads(
            &mut ops,
            &mut rng,
            DB_BASE,
            netlist_span,
            0,
            netlist_span,
            0.0,
            n_loads,
        );
        let n_cycles = rng.uniform_u64(60, 160);
        emit_compute(&mut ops, &mut rng, n_cycles);
        emit_branches(&mut ops, &mut rng, 0x5000, 16, 5);
        // Swap: the two element updates plus a read-modify-write of one
        // of eight shared region-header lines — the headers are written
        // by every thread, so their MESI state depends on interleaving.
        for _ in 0..2 {
            ops.push(Op::Store {
                addr: (DB_BASE + rng.uniform_u64(0, netlist_span - 1)) & !7,
            });
        }
        let header = SHARED_BASE + rng.uniform_u64(0, 7) * 64;
        ops.push(Op::Load { addr: header });
        ops.push(Op::Store { addr: header });
        items.push(WorkItem { ops });
    }
    let programs = (0..4).map(|_| pool_worker(0, 0, None)).collect();
    WorkloadSpec {
        name: String::new(),
        programs,
        tables: vec![items],
        pools: vec![PoolSpec {
            start: 0,
            end: moves as u64,
            counter_addr: POOL_BASE,
        }],
        queues: vec![],
        locks: 0,
        barriers: vec![],
        code_bytes: 24 * 1024,
    }
}

// ---------------------------------------------------------------------
// dedup: 4-stage pipeline — chunk → hash → compress → write — with
// bounded queues and strongly heterogeneous stage costs.
// ---------------------------------------------------------------------
fn dedup(scale: f64) -> WorkloadSpec {
    let chunks = scaled(220, scale);
    let mut rng = gen_for("dedup", 0);
    let mut chunk_items = Vec::with_capacity(chunks);
    let mut hash_items = Vec::with_capacity(chunks);
    let mut compress_items = Vec::with_capacity(chunks);
    let mut write_items = Vec::with_capacity(chunks);
    for c in 0..chunks as u64 {
        // Chunk: sequential streaming reads.
        let mut ops = Vec::new();
        for j in 0..8 {
            ops.push(Op::Load {
                addr: DB_BASE + c * 4096 + j * 512,
            });
        }
        let n_cycles = rng.uniform_u64(40, 90);
        emit_compute(&mut ops, &mut rng, n_cycles);
        chunk_items.push(WorkItem { ops });

        // Hash: compute + small table lookups; ~30 % duplicates hash
        // cheaply.
        let dup = rng.chance(0.3);
        let mut ops = Vec::new();
        emit_loads(
            &mut ops,
            &mut rng,
            SHARED_BASE + 0x10000,
            256 * 1024,
            0,
            64 * 1024,
            0.8,
            6,
        );
        emit_compute(&mut ops, &mut rng, if dup { 60 } else { 200 });
        hash_items.push(WorkItem { ops });

        // Compress: the expensive stage; duplicates skip it almost
        // entirely — strong cost heterogeneity drives backpressure.
        let mut ops = Vec::new();
        let n_cycles = if dup {
            rng.uniform_u64(20, 60)
        } else {
            rng.uniform_u64(500, 1100)
        };
        emit_compute(&mut ops, &mut rng, n_cycles);
        emit_branches(&mut ops, &mut rng, 0x6000, 32, 8);
        compress_items.push(WorkItem { ops });

        // Write: sequential output stores.
        let mut ops = Vec::new();
        for j in 0..6 {
            ops.push(Op::Store {
                addr: PRIV_BASE + 0x0800_0000 + c * 2048 + j * 64,
            });
        }
        write_items.push(WorkItem { ops });
    }

    let stage = |table: u16, in_q: Option<u16>, out_q: Option<u16>, pool: Option<u16>| {
        let mut prog = Vec::new();
        let close_pc = 4;
        match (in_q, pool) {
            (Some(q), None) => prog.push(PInstr::QueuePop {
                queue: q,
                jump_if_closed: close_pc,
            }),
            (None, Some(p)) => prog.push(PInstr::PoolPop {
                pool: p,
                jump_if_empty: close_pc,
            }),
            _ => unreachable!("stage has exactly one input"),
        }
        prog.push(PInstr::RunItem { table });
        match out_q {
            Some(q) => prog.push(PInstr::QueuePush(q)),
            None => prog.push(PInstr::Jump(0)), // sink: loop directly
        }
        prog.push(PInstr::Jump(0));
        // close_pc:
        match out_q {
            Some(q) => prog.push(PInstr::CloseQueue(q)),
            None => prog.push(PInstr::Jump(5)),
        }
        prog.push(PInstr::End);
        prog
    };

    WorkloadSpec {
        name: String::new(),
        programs: vec![
            stage(0, None, Some(0), Some(0)),
            stage(1, Some(0), Some(1), None),
            stage(2, Some(1), Some(2), None),
            stage(3, Some(2), None, None),
        ],
        tables: vec![chunk_items, hash_items, compress_items, write_items],
        pools: vec![PoolSpec {
            start: 0,
            end: chunks as u64,
            counter_addr: POOL_BASE,
        }],
        queues: vec![
            QueueSpec {
                capacity: 8,
                producers: 1,
            },
            QueueSpec {
                capacity: 8,
                producers: 1,
            },
            QueueSpec {
                capacity: 8,
                producers: 1,
            },
        ],
        locks: 0,
        barriers: vec![],
        code_bytes: 64 * 1024,
    }
}

// ---------------------------------------------------------------------
// facesim: phased data-parallel with neighbour sharing — adjacent items
// read overlapping regions and write boundary elements other threads
// read next phase.
// ---------------------------------------------------------------------
fn facesim(scale: f64) -> WorkloadSpec {
    let phases = 4usize;
    let per_phase = scaled(32, scale);
    let mesh_span: u64 = 2 * 1024 * 1024;
    let slice = mesh_span / per_phase as u64;
    let mut rng = gen_for("facesim", 0);
    let mut items = Vec::new();
    for _p in 0..phases {
        for i in 0..per_phase as u64 {
            let mut ops = Vec::new();
            // Read own slice plus neighbour overlap.
            let lo = i.saturating_sub(1) * slice;
            let n_loads = rng.uniform_u64(12, 20) as usize;
            emit_loads(
                &mut ops,
                &mut rng,
                DB_BASE + lo,
                slice * 3,
                slice,
                slice,
                0.7,
                n_loads,
            );
            let n_cycles = rng.uniform_u64(200, 380);
            emit_compute(&mut ops, &mut rng, n_cycles);
            emit_branches(&mut ops, &mut rng, 0x7000, 20, 5);
            // Write boundary (shared with neighbours).
            ops.push(Op::Store {
                addr: DB_BASE + i * slice,
            });
            ops.push(Op::Store {
                addr: DB_BASE + (i + 1) * slice - 64,
            });
            items.push(WorkItem { ops });
        }
    }
    let programs = (0..4)
        .map(|_| {
            let mut prog = Vec::new();
            for p in 0..phases as u16 {
                let base = prog.len() as u32;
                prog.push(PInstr::PoolPop {
                    pool: p,
                    jump_if_empty: base + 3,
                });
                prog.push(PInstr::RunItem { table: 0 });
                prog.push(PInstr::Jump(base));
                prog.push(PInstr::Barrier(0));
            }
            prog.push(PInstr::End);
            prog
        })
        .collect();
    let pools = (0..phases as u64)
        .map(|p| PoolSpec {
            start: p * per_phase as u64,
            end: (p + 1) * per_phase as u64,
            counter_addr: POOL_BASE + p * 64,
        })
        .collect();
    WorkloadSpec {
        name: String::new(),
        programs,
        tables: vec![items],
        pools,
        queues: vec![],
        locks: 0,
        barriers: vec![4],
        code_bytes: 80 * 1024,
    }
}

// ---------------------------------------------------------------------
// fluidanimate: barriers plus fine-grain lock-protected updates of
// shared cell lists.
// ---------------------------------------------------------------------
fn fluidanimate(scale: f64) -> WorkloadSpec {
    let phases = 3usize;
    let per_phase = scaled(40, scale);
    let grid_span: u64 = 1024 * 1024;
    let mut rng = gen_for("fluidanimate", 0);
    let mut items = Vec::new();
    for _p in 0..phases {
        for _ in 0..per_phase {
            let mut ops = Vec::new();
            let n_loads = rng.uniform_u64(8, 16) as usize;
            let hot_off = rng.uniform_u64(0, grid_span / 2);
            emit_loads(
                &mut ops,
                &mut rng,
                DB_BASE,
                grid_span,
                hot_off,
                grid_span / 16,
                0.75,
                n_loads,
            );
            let n_cycles = rng.uniform_u64(90, 260);
            emit_compute(&mut ops, &mut rng, n_cycles);
            emit_branches(&mut ops, &mut rng, 0x8000, 16, 4);
            // Shared cell update (the lock is taken by the program).
            ops.push(Op::Store {
                addr: SHARED_BASE + 0x2000 + rng.uniform_u64(0, 127) * 64,
            });
            items.push(WorkItem { ops });
        }
    }
    let programs = (0..4)
        .map(|t: u16| {
            let mut prog = Vec::new();
            for p in 0..phases as u16 {
                let base = prog.len() as u32;
                prog.push(PInstr::PoolPop {
                    pool: p,
                    jump_if_empty: base + 5,
                });
                // Fine-grain: lock stripe chosen by thread to create
                // convoys that depend on arrival order.
                prog.push(PInstr::LockAcquire(t % 2));
                prog.push(PInstr::RunItem { table: 0 });
                prog.push(PInstr::LockRelease(t % 2));
                prog.push(PInstr::Jump(base));
                prog.push(PInstr::Barrier(0));
            }
            prog.push(PInstr::End);
            prog
        })
        .collect();
    let pools = (0..phases as u64)
        .map(|p| PoolSpec {
            start: p * per_phase as u64,
            end: (p + 1) * per_phase as u64,
            counter_addr: POOL_BASE + p * 64,
        })
        .collect();
    WorkloadSpec {
        name: String::new(),
        programs,
        tables: vec![items],
        pools,
        queues: vec![],
        locks: 2,
        barriers: vec![4],
        code_bytes: 40 * 1024,
    }
}

// ---------------------------------------------------------------------
// freqmine: shared pool over a read-mostly FP-tree.
// ---------------------------------------------------------------------
fn freqmine(scale: f64) -> WorkloadSpec {
    let tasks = scaled(160, scale);
    let tree_span: u64 = 2560 * 1024; // 2.5 MB
    let mut rng = gen_for("freqmine", 0);
    let mut items = Vec::with_capacity(tasks);
    for _ in 0..tasks {
        let mut ops = Vec::new();
        // Tree descent: localized runs with random restarts.
        let start = rng.uniform_u64(0, tree_span - 1);
        let n_loads = rng.uniform_u64(16, 30) as usize;
        emit_loads(
            &mut ops,
            &mut rng,
            DB_BASE,
            tree_span,
            start.min(tree_span - 4096),
            64 * 1024,
            0.85,
            n_loads,
        );
        let n_cycles = rng.uniform_u64(100, 500);
        emit_compute(&mut ops, &mut rng, n_cycles);
        emit_branches(&mut ops, &mut rng, 0x9000, 40, 8);
        items.push(WorkItem { ops });
    }
    WorkloadSpec {
        name: String::new(),
        programs: (0..4).map(|_| pool_worker(0, 0, None)).collect(),
        tables: vec![items],
        pools: vec![PoolSpec {
            start: 0,
            end: tasks as u64,
            counter_addr: POOL_BASE,
        }],
        queues: vec![],
        locks: 0,
        barriers: vec![],
        code_bytes: 56 * 1024,
    }
}

// ---------------------------------------------------------------------
// streamcluster: many short barrier-separated phases; stragglers set
// the pace.
// ---------------------------------------------------------------------
fn streamcluster(scale: f64) -> WorkloadSpec {
    let phases = 8usize;
    let per_phase = scaled(16, scale);
    let points_span: u64 = 1024 * 1024;
    let mut rng = gen_for("streamcluster", 0);
    let mut items = Vec::new();
    for _p in 0..phases {
        for _ in 0..per_phase {
            let mut ops = Vec::new();
            let n_loads = rng.uniform_u64(10, 18) as usize;
            emit_loads(
                &mut ops,
                &mut rng,
                DB_BASE,
                points_span,
                0,
                points_span / 4,
                0.5,
                n_loads,
            );
            let n_cycles = rng.uniform_u64(150, 550);
            emit_compute(&mut ops, &mut rng, n_cycles);
            emit_branches(&mut ops, &mut rng, 0xA000, 12, 4);
            items.push(WorkItem { ops });
        }
    }
    let programs = (0..4)
        .map(|_| {
            let mut prog = Vec::new();
            for p in 0..phases as u16 {
                let base = prog.len() as u32;
                prog.push(PInstr::PoolPop {
                    pool: p,
                    jump_if_empty: base + 3,
                });
                prog.push(PInstr::RunItem { table: 0 });
                prog.push(PInstr::Jump(base));
                prog.push(PInstr::Barrier(0));
            }
            prog.push(PInstr::End);
            prog
        })
        .collect();
    let pools = (0..phases as u64)
        .map(|p| PoolSpec {
            start: p * per_phase as u64,
            end: (p + 1) * per_phase as u64,
            counter_addr: POOL_BASE + p * 64,
        })
        .collect();
    WorkloadSpec {
        name: String::new(),
        programs,
        tables: vec![items],
        pools,
        queues: vec![],
        locks: 0,
        barriers: vec![4],
        code_bytes: 32 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_validate() {
        for b in Benchmark::ALL {
            let w = b.workload_scaled(0.25);
            assert!(w.validate().is_ok(), "{b}: {:?}", w.validate());
            assert_eq!(w.programs.len(), 4, "{b} must have 4 threads");
            assert_eq!(w.name, b.name());
            assert!(w.total_item_ops() > 0, "{b} has no work");
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Benchmark::from_name("raytrace"), None);
    }

    #[test]
    fn structure_is_deterministic() {
        let a = Benchmark::Ferret.workload_scaled(0.25);
        let b = Benchmark::Ferret.workload_scaled(0.25);
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.programs, b.programs);
    }

    #[test]
    fn benchmarks_are_distinct() {
        let f = Benchmark::Ferret.workload_scaled(0.25);
        let c = Benchmark::Canneal.workload_scaled(0.25);
        assert_ne!(f.tables, c.tables);
    }

    #[test]
    #[should_panic(expected = "scale out of range")]
    fn bad_scale_panics() {
        let _ = Benchmark::Ferret.workload_scaled(0.0);
    }

    #[test]
    fn scale_changes_item_count() {
        let small = Benchmark::Freqmine.workload_scaled(0.25);
        let big = Benchmark::Freqmine.workload_scaled(1.0);
        assert!(big.tables[0].len() > small.tables[0].len());
    }
}
