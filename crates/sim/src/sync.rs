//! Synchronization primitives of the simulated threading runtime.
//!
//! These are the places where injected timing noise becomes *semantic*
//! variability: the order in which threads arrive at a lock, barrier, or
//! bounded queue decides who gets which work item next, which changes
//! cache contents, which changes timing — the paper's §2.1 "thread
//! interleaving" mechanism. The primitives are pure state machines:
//! callers pass in the current simulated time and receive wake-up
//! instructions to schedule.

use std::collections::VecDeque;

/// A core (thread) identifier within a simulated machine.
pub type ThreadId = u32;

/// A wake-up produced by a primitive: schedule `thread` to resume at
/// time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wake {
    /// The thread to resume.
    pub thread: ThreadId,
    /// Simulated cycle at which it resumes.
    pub at: u64,
}

/// A mutual-exclusion lock with FIFO handoff.
///
/// # Examples
///
/// ```
/// use spa_sim::sync::Lock;
/// let mut l = Lock::new(2);
/// assert!(l.acquire(0, 100).is_none()); // got it immediately
/// assert!(l.acquire(1, 105).is_none() == false || true);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lock {
    held_by: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
    handoff_cycles: u64,
    acquisitions: u64,
    contended: u64,
}

impl Lock {
    /// Creates a lock whose release→grant handoff costs
    /// `handoff_cycles` (coherence transfer of the lock line).
    pub fn new(handoff_cycles: u64) -> Self {
        Self {
            handoff_cycles,
            ..Self::default()
        }
    }

    /// Thread `t` tries to acquire at time `now`. Returns `None` if the
    /// lock was granted immediately; otherwise the thread is queued and
    /// will be woken by a later [`release`](Self::release).
    pub fn acquire(&mut self, t: ThreadId, _now: u64) -> Option<()> {
        self.acquisitions += 1;
        if self.held_by.is_none() {
            self.held_by = Some(t);
            None
        } else {
            self.contended += 1;
            self.waiters.push_back(t);
            Some(())
        }
    }

    /// Thread `t` releases at time `now`; if a waiter exists it is
    /// granted the lock and a wake-up is returned.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not hold the lock (a workload bug).
    pub fn release(&mut self, t: ThreadId, now: u64) -> Option<Wake> {
        assert_eq!(self.held_by, Some(t), "release by non-holder");
        match self.waiters.pop_front() {
            Some(next) => {
                self.held_by = Some(next);
                Some(Wake {
                    thread: next,
                    at: now + self.handoff_cycles,
                })
            }
            None => {
                self.held_by = None;
                None
            }
        }
    }

    /// Current holder, if any.
    pub fn holder(&self) -> Option<ThreadId> {
        self.held_by
    }

    /// Total acquisition attempts.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Attempts that had to wait.
    pub fn contended(&self) -> u64 {
        self.contended
    }
}

/// A rendezvous barrier for a fixed party count.
#[derive(Debug, Clone)]
pub struct Barrier {
    parties: u32,
    waiting: Vec<ThreadId>,
    release_cycles: u64,
    episodes: u64,
}

impl Barrier {
    /// Creates a barrier for `parties` threads with a broadcast release
    /// cost of `release_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: u32, release_cycles: u64) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Self {
            parties,
            waiting: Vec::new(),
            release_cycles,
            episodes: 0,
        }
    }

    /// Thread `t` arrives at time `now`. If it is the last arrival the
    /// barrier opens: all parked threads (and `t`) resume at
    /// `now + release_cycles`, returned as wake-ups (the caller handles
    /// `t` itself via the returned list too). Returns `None` while the
    /// barrier is still filling (the thread parks).
    pub fn arrive(&mut self, t: ThreadId, now: u64) -> Option<Vec<Wake>> {
        self.waiting.push(t);
        if self.waiting.len() as u32 == self.parties {
            self.episodes += 1;
            let at = now + self.release_cycles;
            let wakes = self
                .waiting
                .drain(..)
                .map(|thread| Wake { thread, at })
                .collect();
            Some(wakes)
        } else {
            None
        }
    }

    /// Completed barrier episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Threads currently parked.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }
}

/// A bounded FIFO queue carrying work-item indices between pipeline
/// stages, with blocking push (full) and pop (empty) and explicit
/// closure by producers.
#[derive(Debug, Clone)]
pub struct BoundedQueue {
    items: VecDeque<u64>,
    capacity: usize,
    closed: bool,
    waiting_pop: VecDeque<ThreadId>,
    waiting_push: VecDeque<(ThreadId, u64)>,
    transfer_cycles: u64,
    pushes: u64,
    pops: u64,
    push_blocks: u64,
    pop_blocks: u64,
}

/// Result of a queue pop attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopResult {
    /// Got an item.
    Item(u64),
    /// Queue empty but producers may still push: the thread parks.
    Blocked,
    /// Queue empty and closed: no more items will ever arrive.
    Closed,
}

/// Result of a queue push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushResult {
    /// Item enqueued; optionally a parked consumer to wake.
    Stored(Option<Wake>),
    /// Queue full: the thread parks holding its item.
    Blocked,
}

impl BoundedQueue {
    /// Creates a queue of `capacity` items with a `transfer_cycles`
    /// wake-up cost.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, transfer_cycles: u64) -> Self {
        assert!(capacity > 0, "queue needs nonzero capacity");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            closed: false,
            waiting_pop: VecDeque::new(),
            waiting_push: VecDeque::new(),
            transfer_cycles,
            pushes: 0,
            pops: 0,
            push_blocks: 0,
            pop_blocks: 0,
        }
    }

    /// Thread `t` pushes `item` at `now`.
    pub fn push(&mut self, t: ThreadId, item: u64, now: u64) -> PushResult {
        debug_assert!(!self.closed, "push to closed queue");
        if self.items.len() == self.capacity {
            self.push_blocks += 1;
            self.waiting_push.push_back((t, item));
            return PushResult::Blocked;
        }
        self.items.push_back(item);
        self.pushes += 1;
        let wake = self.waiting_pop.pop_front().map(|thread| Wake {
            thread,
            at: now + self.transfer_cycles,
        });
        PushResult::Stored(wake)
    }

    /// Thread `t` pops at `now`.
    pub fn pop(&mut self, t: ThreadId, _now: u64) -> PopResult {
        if let Some(item) = self.items.pop_front() {
            self.pops += 1;
            return PopResult::Item(item);
        }
        if self.closed && self.waiting_push.is_empty() {
            return PopResult::Closed;
        }
        self.pop_blocks += 1;
        self.waiting_pop.push_back(t);
        PopResult::Blocked
    }

    /// After a consumer takes an item, a parked producer may proceed:
    /// returns `(producer wake, its item is enqueued)` if one was
    /// waiting. Call after every successful pop.
    pub fn admit_parked_producer(&mut self, now: u64) -> Option<Wake> {
        if self.items.len() == self.capacity {
            return None;
        }
        let (thread, item) = self.waiting_push.pop_front()?;
        self.items.push_back(item);
        self.pushes += 1;
        Some(Wake {
            thread,
            at: now + self.transfer_cycles,
        })
    }

    /// Marks the queue closed (no further pushes); returns parked
    /// consumers to wake so they can observe closure.
    pub fn close(&mut self, now: u64) -> Vec<Wake> {
        self.closed = true;
        self.waiting_pop
            .drain(..)
            .map(|thread| Wake {
                thread,
                at: now + self.transfer_cycles,
            })
            .collect()
    }

    /// Whether the queue is closed and fully drained.
    pub fn exhausted(&self) -> bool {
        self.closed && self.items.is_empty() && self.waiting_push.is_empty()
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total blocked pushes (backpressure events).
    pub fn push_blocks(&self) -> u64 {
        self.push_blocks
    }

    /// Total blocked pops (starvation events).
    pub fn pop_blocks(&self) -> u64 {
        self.pop_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fifo_handoff() {
        let mut l = Lock::new(3);
        assert!(l.acquire(0, 10).is_none());
        assert!(l.acquire(1, 12).is_some()); // blocked
        assert!(l.acquire(2, 13).is_some()); // blocked
        let w = l.release(0, 20).unwrap();
        assert_eq!(w, Wake { thread: 1, at: 23 });
        assert_eq!(l.holder(), Some(1));
        let w = l.release(1, 30).unwrap();
        assert_eq!(w.thread, 2);
        assert!(l.release(2, 40).is_none());
        assert_eq!(l.holder(), None);
        assert_eq!(l.acquisitions(), 3);
        assert_eq!(l.contended(), 2);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut l = Lock::new(1);
        l.acquire(0, 0);
        let _ = l.release(1, 5);
    }

    #[test]
    fn barrier_releases_all_at_once() {
        let mut b = Barrier::new(3, 5);
        assert!(b.arrive(0, 10).is_none());
        assert!(b.arrive(1, 20).is_none());
        assert_eq!(b.waiting(), 2);
        let wakes = b.arrive(2, 30).unwrap();
        assert_eq!(wakes.len(), 3);
        assert!(wakes.iter().all(|w| w.at == 35));
        assert_eq!(b.episodes(), 1);
        assert_eq!(b.waiting(), 0);
        // Reusable.
        assert!(b.arrive(0, 100).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_panics() {
        let _ = Barrier::new(0, 1);
    }

    #[test]
    fn queue_push_pop_fifo() {
        let mut q = BoundedQueue::new(2, 1);
        assert!(matches!(q.push(0, 10, 0), PushResult::Stored(None)));
        assert!(matches!(q.push(0, 11, 1), PushResult::Stored(None)));
        assert_eq!(q.len(), 2);
        // Full: producer parks.
        assert!(matches!(q.push(0, 12, 2), PushResult::Blocked));
        assert_eq!(q.push_blocks(), 1);
        // Consumer pops in FIFO order.
        assert_eq!(q.pop(1, 5), PopResult::Item(10));
        // Parked producer's item admitted.
        let w = q.admit_parked_producer(5).unwrap();
        assert_eq!(w.thread, 0);
        assert_eq!(q.pop(1, 6), PopResult::Item(11));
        assert_eq!(q.pop(1, 7), PopResult::Item(12));
    }

    #[test]
    fn queue_blocking_pop_and_wake() {
        let mut q = BoundedQueue::new(4, 2);
        assert_eq!(q.pop(3, 0), PopResult::Blocked);
        assert_eq!(q.pop_blocks(), 1);
        // A push wakes the parked consumer.
        match q.push(0, 99, 10) {
            PushResult::Stored(Some(w)) => assert_eq!(w, Wake { thread: 3, at: 12 }),
            other => panic!("expected wake, got {other:?}"),
        }
    }

    #[test]
    fn queue_closure_semantics() {
        let mut q = BoundedQueue::new(4, 1);
        q.push(0, 7, 0);
        let wakes = q.close(5);
        assert!(wakes.is_empty()); // nobody was parked
                                   // Remaining item still drains…
        assert_eq!(q.pop(1, 6), PopResult::Item(7));
        // …then closure is observed.
        assert_eq!(q.pop(1, 7), PopResult::Closed);
        assert!(q.exhausted());
    }

    #[test]
    fn close_wakes_parked_consumers() {
        let mut q = BoundedQueue::new(4, 1);
        assert_eq!(q.pop(2, 0), PopResult::Blocked);
        let wakes = q.close(10);
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].thread, 2);
        assert_eq!(q.pop(2, 11), PopResult::Closed);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_queue_panics() {
        let _ = BoundedQueue::new(0, 1);
    }

    #[test]
    fn is_empty_reflects_buffer() {
        let mut q = BoundedQueue::new(2, 1);
        assert!(q.is_empty());
        q.push(0, 1, 0);
        assert!(!q.is_empty());
    }
}
