//! The discrete-event component scheduler at the heart of the machine.
//!
//! Before this module existed, `machine.rs` owned a bare
//! `BinaryHeap<Reverse<(time, seq, thread)>>` and hopped every runnable
//! core forward in fixed 400-cycle quanta — a straight-line compute
//! burst of 10k cycles cost 25 heap round-trips that decided nothing.
//! This module names the pieces:
//!
//! * [`Component`] — anything the scheduler can advance. `next_tick`
//!   reports the component's next self-scheduled event time (`None` =
//!   idle/parked/finished); `tick` advances it from a popped event and
//!   returns the time it next wants to run (`None` = it parked or
//!   finished and must not be rescheduled).
//! * [`WakeSink`] — how cross-component wake-ups (lock hand-offs,
//!   barrier releases, queue transfers) flow back into the heap: a
//!   component's `tick` buffers wakes in its context, and the scheduler
//!   drains them into the heap *in production order, before the
//!   component's own yield* — exactly the order the old loop pushed
//!   them, so seq tie-breaks are preserved.
//! * [`EventScheduler`] — the heap plus the *run-ahead* rule: when a
//!   component yields at a time strictly earlier than every queued
//!   event, the push-then-pop round trip is provably a no-op (a fresh
//!   push carries the globally largest seq, so it loses every tie) and
//!   the component keeps running inline. Parked and finished components
//!   never re-enter the heap at all; wakes re-admit parked ones.
//!
//! Ordering contract: events are popped in ascending `(time, seq)`
//! order, where `seq` is assigned in push order — ties between
//! simultaneous events resolve first-pushed-first. Because every push
//! happens at or after the currently popped time (yields come from a
//! component's own monotone clock; wakes carry the running component's
//! clock plus a hand-off cost), pop times are globally — and therefore
//! per-component — monotone non-decreasing. [`EventScheduler::pop`]
//! enforces the per-component invariant with a `debug_assert`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use spa_obs::metrics::global;

/// Counter: events popped from the scheduler heap (flushed once per
/// run with the run's total, never per event).
pub const EVENTS_POPPED: &str = "sim.sched.events_popped";
/// Counter: heap round-trips elided by the run-ahead rule — yields
/// that were strictly earlier than every queued event and so continued
/// inline (flushed once per run).
pub const IDLE_SKIPS: &str = "sim.sched.idle_skips";
/// Counter: cycles advanced by run-ahead quanta — quanta entered
/// inline (without a heap pop) that yielded again (flushed once per
/// run).
pub const RUNAHEAD_CYCLES: &str = "sim.sched.runahead_cycles";

/// Index of a component in the scheduler's component slice.
pub type ComponentId = u32;

/// A schedulable simulation component.
///
/// `Ctx` is the shared machine state a component needs while ticking
/// (memory hierarchy, sync primitives, trace buffers); it is a type
/// parameter so the scheduler stays independent of the machine's
/// internals.
pub trait Component<Ctx> {
    /// The component's next self-scheduled event time, or `None` when
    /// it is idle (parked on a sync primitive) or finished. Idle
    /// components have no heap entry; only a wake re-admits them.
    fn next_tick(&self) -> Option<u64>;

    /// Advances the component from an event popped at `now`. Returns
    /// the time the component next wants to run, or `None` when it
    /// parked or finished — in which case it must not be rescheduled.
    fn tick(&mut self, now: u64, ctx: &mut Ctx) -> Option<u64>;
}

/// A context that buffers cross-component wake-ups during a tick.
pub trait WakeSink {
    /// Drains buffered wakes in production order into `schedule`.
    /// Called by the scheduler after every tick, before the ticking
    /// component's own yield is pushed.
    fn drain_wakes(&mut self, schedule: &mut dyn FnMut(ComponentId, u64));
}

/// Per-run scheduler statistics (the `sim.sched.*` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events popped from the heap.
    pub events_popped: u64,
    /// Heap round-trips elided by run-ahead.
    pub idle_skips: u64,
    /// Cycles advanced by run-ahead quanta that yielded again.
    pub runahead_cycles: u64,
}

/// The event heap: ascending `(time, seq, component)` with seq assigned
/// in push order, so simultaneous events pop first-pushed-first.
#[derive(Debug, Clone, Default)]
pub struct EventScheduler {
    heap: BinaryHeap<Reverse<(u64, u64, ComponentId)>>,
    seq: u64,
    /// Last popped time per component, for the monotonicity invariant.
    last_pop: Vec<u64>,
    stats: SchedStats,
}

impl EventScheduler {
    /// An empty scheduler for `components` components (ids
    /// `0..components`).
    pub fn new(components: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            last_pop: vec![0; components],
            stats: SchedStats::default(),
        }
    }

    /// Schedules component `id` at time `at`. Pushes made later always
    /// lose ties against pushes made earlier (seq tie-break).
    pub fn schedule(&mut self, id: ComponentId, at: u64) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, id)));
    }

    /// Pops the earliest event, ties broken by push order.
    ///
    /// In debug builds, asserts that popped times are monotone
    /// non-decreasing per component — the single enforced invariant
    /// behind every "the pop time cannot precede …" argument in the
    /// machine (notably the parked-resume clamp, which only has to
    /// guard against the *waker's* clock trailing the parked thread's
    /// own, never against the scheduler going backwards).
    pub fn pop(&mut self) -> Option<(u64, ComponentId)> {
        let Reverse((at, _, id)) = self.heap.pop()?;
        self.stats.events_popped += 1;
        let last = self.last_pop[id as usize];
        debug_assert!(
            at >= last,
            "scheduler popped time {at} for component {id} after {last}: \
             per-component pop times must be monotone non-decreasing"
        );
        self.last_pop[id as usize] = at;
        Some((at, id))
    }

    /// Whether an event at `at` would run before everything queued:
    /// true when the heap is empty or `at` is *strictly* earlier than
    /// the earliest queued event. Strictness matters — a fresh push
    /// carries the globally largest seq, so it loses ties against every
    /// queued event and must go through the heap when times are equal.
    pub fn runs_next(&self, at: u64) -> bool {
        match self.heap.peek() {
            None => true,
            Some(Reverse((head, _, _))) => at < *head,
        }
    }

    /// Queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// This scheduler's per-run statistics so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Flushes the per-run statistics to the process-global `sim.sched.*`
    /// counters (call once per run, like `sim.batch.*`).
    pub fn flush_stats(&self) {
        let registry = global();
        registry
            .counter(EVENTS_POPPED)
            .add(self.stats.events_popped);
        registry.counter(IDLE_SKIPS).add(self.stats.idle_skips);
        registry
            .counter(RUNAHEAD_CYCLES)
            .add(self.stats.runahead_cycles);
    }

    /// Runs components to completion: pops events, ticks the popped
    /// component, drains its wakes into the heap (production order,
    /// before its own yield), and applies the run-ahead rule — a yield
    /// strictly earlier than every queued event continues inline
    /// instead of round-tripping through the heap.
    ///
    /// The loop ends when the heap is empty; the caller decides whether
    /// that means completion or deadlock (components that parked and
    /// were never woken).
    ///
    /// # Panics
    ///
    /// Panics if an event's component id is out of range for
    /// `components`.
    pub fn drive<Ctx, C>(&mut self, components: &mut [C], ctx: &mut Ctx)
    where
        Ctx: WakeSink,
        C: Component<Ctx>,
    {
        while let Some((at, id)) = self.pop() {
            let component = &mut components[id as usize];
            let mut now = at;
            let mut ran_ahead = false;
            loop {
                let next = component.tick(now, ctx);
                ctx.drain_wakes(&mut |wake_id, wake_at| self.schedule(wake_id, wake_at));
                if ran_ahead {
                    self.stats.runahead_cycles += next.map_or(0, |t| t.saturating_sub(now));
                }
                let Some(next_at) = next else { break };
                debug_assert_eq!(
                    component.next_tick(),
                    Some(next_at),
                    "a component's yield time must agree with its next_tick"
                );
                if self.runs_next(next_at) {
                    // Run-ahead: the push-then-pop pair would return
                    // this very event (its seq is maximal, so it wins
                    // only strictly-earlier comparisons, which is what
                    // `runs_next` checked). Elide the round trip.
                    self.stats.idle_skips += 1;
                    ran_ahead = true;
                    now = next_at;
                } else {
                    self.schedule(id, next_at);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_ascend_by_time_then_insertion_order() {
        let mut s = EventScheduler::new(4);
        s.schedule(0, 30);
        s.schedule(1, 10);
        s.schedule(2, 10);
        s.schedule(3, 20);
        let order: Vec<(u64, ComponentId)> = std::iter::from_fn(|| s.pop()).collect();
        // Equal times pop in insertion order (1 before 2).
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
        assert_eq!(s.stats().events_popped, 4);
    }

    #[test]
    fn runs_next_requires_strictly_earlier() {
        let mut s = EventScheduler::new(2);
        assert!(s.runs_next(100), "empty heap: anything runs next");
        s.schedule(0, 50);
        assert!(s.runs_next(49));
        assert!(!s.runs_next(50), "ties must go through the heap");
        assert!(!s.runs_next(51));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone non-decreasing")]
    fn backwards_pop_is_caught_in_debug() {
        let mut s = EventScheduler::new(1);
        s.schedule(0, 100);
        s.pop();
        // Scheduling the same component earlier than its last popped
        // time violates the push-at-or-after-now contract.
        s.schedule(0, 10);
        s.pop();
    }

    /// A toy component: runs a fixed list of quantum lengths, parking
    /// forever after the last one.
    struct Toy {
        time: u64,
        quanta: Vec<u64>,
        next: usize,
        ticks: u64,
    }

    struct ToyCtx {
        wakes: Vec<(ComponentId, u64)>,
    }

    impl WakeSink for ToyCtx {
        fn drain_wakes(&mut self, schedule: &mut dyn FnMut(ComponentId, u64)) {
            for (id, at) in self.wakes.drain(..) {
                schedule(id, at);
            }
        }
    }

    impl Component<ToyCtx> for Toy {
        fn next_tick(&self) -> Option<u64> {
            (self.next < self.quanta.len()).then_some(self.time)
        }
        fn tick(&mut self, now: u64, _ctx: &mut ToyCtx) -> Option<u64> {
            self.time = self.time.max(now) + self.quanta.get(self.next).copied()?;
            self.next += 1;
            self.ticks += 1;
            self.next_tick()
        }
    }

    #[test]
    fn drive_runs_ahead_when_alone() {
        // One component: every yield is strictly earliest, so after the
        // single initial pop it runs entirely inline.
        let mut toys = vec![Toy {
            time: 0,
            quanta: vec![5; 10],
            next: 0,
            ticks: 0,
        }];
        let mut ctx = ToyCtx { wakes: Vec::new() };
        let mut s = EventScheduler::new(1);
        s.schedule(0, 0);
        s.drive(&mut toys, &mut ctx);
        assert_eq!(toys[0].ticks, 10);
        assert_eq!(toys[0].time, 50);
        let stats = s.stats();
        assert_eq!(stats.events_popped, 1, "one pop, nine elisions");
        assert_eq!(stats.idle_skips, 9);
        // Eight of the nine inline quanta yielded again (the last one
        // parked), 5 cycles each.
        assert_eq!(stats.runahead_cycles, 40);
    }

    #[test]
    fn drive_interleaves_contending_components() {
        // Two components with equal quanta: neither is ever strictly
        // earliest while the other is queued, so no run-ahead happens
        // and they alternate through the heap.
        let mut toys = vec![
            Toy {
                time: 0,
                quanta: vec![10; 4],
                next: 0,
                ticks: 0,
            },
            Toy {
                time: 0,
                quanta: vec![10; 4],
                next: 0,
                ticks: 0,
            },
        ];
        let mut ctx = ToyCtx { wakes: Vec::new() };
        let mut s = EventScheduler::new(2);
        s.schedule(0, 0);
        s.schedule(1, 0);
        s.drive(&mut toys, &mut ctx);
        assert_eq!(toys[0].ticks, 4);
        assert_eq!(toys[1].ticks, 4);
        let stats = s.stats();
        // Every quantum goes through the heap: each yield ties the
        // other component's queued event, and ties never run ahead.
        assert_eq!(stats.events_popped, 8);
        assert_eq!(stats.idle_skips, 0);
    }

    #[test]
    fn flush_stats_accumulates_counters() {
        let mut s = EventScheduler::new(1);
        s.schedule(0, 1);
        s.pop();
        let before = global().counter(EVENTS_POPPED).get();
        s.flush_stats();
        s.flush_stats();
        assert_eq!(global().counter(EVENTS_POPPED).get(), before + 2);
    }
}
