//! Per-run trace recording: piecewise-constant performance signals
//! sampled at scheduling-quantum boundaries.
//!
//! The paper's STL workflow (§4, Table 1) monitors temporal properties
//! over *signal traces*, not end-of-run scalars. The machine already
//! records event streams and an active-thread signal; this module adds
//! the derived performance signals properties most often reference —
//! cumulative IPC, L1D/L2 miss rates, and core occupancy — each sampled
//! at the end of every core's scheduling quantum, including quanta the
//! event scheduler runs ahead without a heap round-trip (the sample
//! schedule is part of the engines' identity contract). Samples are
//! buffered here and written into a [`spa_stl::trace::Trace`] at the
//! end of the run, where per-signal times must be strictly increasing.

use spa_stl::trace::Trace;

/// The signals a [`TraceRecorder`] emits, in emission order.
pub const RECORDED_SIGNALS: [&str; 4] = ["ipc", "l1d_miss_rate", "l2_miss_rate", "occupancy"];

/// Cap on recorded samples per run (keeps traces bounded, mirroring
/// [`crate::config::DEFAULT_EVENT_CAP`]).
const SAMPLE_CAP: usize = 20_000;

/// One buffered observation of every recorded signal at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Point {
    at: u64,
    ipc: f64,
    l1d_miss_rate: f64,
    l2_miss_rate: f64,
    occupancy: f64,
}

/// Buffers piecewise-constant signal samples during a run and writes
/// them into an STL trace afterwards.
///
/// Recording order follows the (deterministic) event schedule, so
/// for a fixed `(config, workload, seed)` the emitted trace is
/// byte-stable — the determinism guard in `tests/trace_golden.rs`
/// enforces this.
///
/// # Examples
///
/// ```
/// use spa_sim::trace_recorder::TraceRecorder;
/// use spa_stl::trace::Trace;
///
/// let mut rec = TraceRecorder::new(2);
/// rec.record(100, 250, 5, 50, 1, 5, 2);
/// let mut trace = Trace::new();
/// rec.write_into(&mut trace);
/// assert_eq!(trace.value_at("ipc", 100).unwrap(), 2.5);
/// assert_eq!(trace.value_at("occupancy", 100).unwrap(), 1.0);
/// // A baseline sample makes every signal defined from cycle 0.
/// assert_eq!(trace.value_at("ipc", 0).unwrap(), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    cores: u32,
    points: Vec<Point>,
}

impl TraceRecorder {
    /// A recorder for a machine with `cores` cores.
    pub fn new(cores: u32) -> Self {
        Self {
            cores,
            points: Vec::new(),
        }
    }

    /// Records one sample of every signal at cycle `at` from cumulative
    /// machine counters.
    ///
    /// Rates guard their denominators: IPC is 0 at cycle 0 and miss
    /// rates are 0 before the first access. Samples past the cap are
    /// dropped silently — the trace stays valid, just coarser at the
    /// tail.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        at: u64,
        instructions: u64,
        l1d_misses: u64,
        l1d_accesses: u64,
        l2_misses: u64,
        l2_accesses: u64,
        active: u32,
    ) {
        if self.points.len() >= SAMPLE_CAP {
            return;
        }
        let rate = |misses: u64, accesses: u64| {
            if accesses > 0 {
                misses as f64 / accesses as f64
            } else {
                0.0
            }
        };
        let ipc = if at > 0 {
            instructions as f64 / at as f64
        } else {
            0.0
        };
        self.points.push(Point {
            at,
            ipc,
            l1d_miss_rate: rate(l1d_misses, l1d_accesses),
            l2_miss_rate: rate(l2_misses, l2_accesses),
            occupancy: active as f64 / f64::from(self.cores.max(1)),
        });
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Writes the buffered samples into `trace` as the four
    /// [`RECORDED_SIGNALS`].
    ///
    /// Samples are sorted by time and deduplicated keeping the first
    /// sample per instant (the same convention the machine uses for its
    /// active-thread signal), satisfying the trace's strictly-increasing
    /// time requirement. A baseline sample at cycle 0 (zero IPC and miss
    /// rates, full occupancy) is synthesized when none was recorded, so
    /// `value_at` is defined over the whole run.
    pub fn write_into(&self, trace: &mut Trace) {
        let mut points = self.points.clone();
        points.sort_by_key(|p| p.at);
        let mut last_time = None;
        if points.first().map_or(true, |p| p.at > 0) {
            let baseline = Point {
                at: 0,
                ipc: 0.0,
                l1d_miss_rate: 0.0,
                l2_miss_rate: 0.0,
                occupancy: 1.0,
            };
            Self::push_point(trace, &baseline);
            last_time = Some(0);
        }
        for point in &points {
            if last_time == Some(point.at) {
                continue; // keep strictly increasing times
            }
            last_time = Some(point.at);
            Self::push_point(trace, point);
        }
    }

    fn push_point(trace: &mut Trace, point: &Point) {
        let values = [
            point.ipc,
            point.l1d_miss_rate,
            point.l2_miss_rate,
            point.occupancy,
        ];
        for (signal, value) in RECORDED_SIGNALS.iter().zip(values) {
            trace
                .push(signal, point.at, value)
                .expect("times strictly increasing");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signals_are_written_in_time_order_with_baseline() {
        let mut rec = TraceRecorder::new(4);
        // Recorded out of order, with a duplicate instant.
        rec.record(200, 400, 10, 100, 2, 10, 4);
        rec.record(100, 150, 5, 50, 1, 5, 2);
        rec.record(200, 999, 99, 100, 9, 10, 1); // dup: first at t=200 wins
        let mut trace = Trace::new();
        rec.write_into(&mut trace);

        for signal in RECORDED_SIGNALS {
            assert!(trace.has_signal(signal), "missing {signal}");
        }
        // Baseline synthesized at t=0.
        assert_eq!(trace.value_at("ipc", 0).unwrap(), 0.0);
        assert_eq!(trace.value_at("occupancy", 0).unwrap(), 1.0);
        // Sorted samples, first-per-instant kept.
        assert_eq!(trace.value_at("ipc", 100).unwrap(), 1.5);
        assert_eq!(trace.value_at("ipc", 200).unwrap(), 2.0);
        assert_eq!(trace.value_at("occupancy", 200).unwrap(), 1.0);
        assert_eq!(trace.value_at("l1d_miss_rate", 100).unwrap(), 0.1);
        assert_eq!(trace.value_at("l2_miss_rate", 200).unwrap(), 0.2);
    }

    #[test]
    fn rates_guard_zero_denominators() {
        let mut rec = TraceRecorder::new(1);
        rec.record(0, 0, 0, 0, 0, 0, 1);
        let mut trace = Trace::new();
        rec.write_into(&mut trace);
        assert_eq!(trace.value_at("ipc", 0).unwrap(), 0.0);
        assert_eq!(trace.value_at("l1d_miss_rate", 0).unwrap(), 0.0);
        assert_eq!(trace.value_at("l2_miss_rate", 0).unwrap(), 0.0);
        assert_eq!(trace.value_at("occupancy", 0).unwrap(), 1.0);
    }

    #[test]
    fn empty_recorder_still_emits_defined_signals() {
        let rec = TraceRecorder::new(8);
        let mut trace = Trace::new();
        rec.write_into(&mut trace);
        for signal in RECORDED_SIGNALS {
            assert!(trace.has_signal(signal));
            assert!(trace.value_at(signal, 12345).is_ok());
        }
    }

    #[test]
    fn sample_cap_bounds_memory() {
        let mut rec = TraceRecorder::new(1);
        for t in 0..(SAMPLE_CAP as u64 + 100) {
            rec.record(t + 1, t, 0, 0, 0, 0, 1);
        }
        assert_eq!(rec.len(), SAMPLE_CAP);
    }
}
