//! Batch-of-machines population engine: one [`Machine`], many seeds,
//! a pool of worker threads, byte-identical output.
//!
//! The paper's ground-truth populations (§5.3: "we run 500 simulations
//! to determine the ground truth") are embarrassingly parallel: each
//! execution is a pure function of `(config, workload, seed)` and the
//! seeds are independent by construction — every seed derives its own
//! RNG stream via [`Variability::state_for_run`], so no run observes
//! another run's randomness. This module exploits that:
//!
//! * the `Machine` is constructed (and validated) **once**,
//! * seeds are claimed by worker threads from a shared atomic cursor,
//! * finished results flow through a **bounded** channel back to the
//!   calling thread, which places each one in its seed-indexed slot,
//! * the assembled output is returned in ascending-seed order.
//!
//! # Determinism
//!
//! The output is byte-identical to the sequential path for every job
//! count: per-seed RNG streams make each execution independent of
//! scheduling, and ordered collection makes the assembled vector
//! independent of completion order. The golden-trace guard and the
//! differential tests in `tests/batch_differential.rs` enforce this.
//!
//! # Error semantics
//!
//! [`try_batch_map`] reports the error of the **lowest-indexed** failing
//! item — exactly what the sequential loop reports. Workers may execute
//! a few items beyond the first failure before the cancellation flag is
//! observed, but those results are discarded, never reordered into the
//! output.
//!
//! The bounded channel doubles as backpressure for the streaming metric
//! path ([`run_metric_population_batch_with`]): each [`ExecutionResult`]
//! is reduced to its `f64` sample *inside the worker*, so the scalar
//! path never materializes the population no matter how many jobs run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;

use spa_obs::metrics::global;

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::metrics::{ExecutionResult, Metric};
use crate::pipeline::MetricEvaluator;
use crate::variability::Variability;
use crate::workload::WorkloadSpec;
use crate::{Result, SimError};

/// Counter: population batches executed through the engine.
pub const BATCHES: &str = "sim.batch.batches";
/// Counter: executions requested across all batches (bumped once per
/// batch with the batch size, never per sample).
pub const RUNS: &str = "sim.batch.runs";
/// Gauge: worker count of the most recent batch.
pub const JOBS: &str = "sim.batch.jobs";

/// In-flight results the bounded channel may hold per worker before
/// senders block; keeps peak memory proportional to the job count, not
/// the population size.
const CHANNEL_SLACK: usize = 4;

/// Worker-pool default: one job per available hardware thread, falling
/// back to 1 when the parallelism cannot be queried.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Validates that `seed_start..seed_start + count` fits in `u64`.
fn check_seed_range(seed_start: u64, count: u64) -> Result<()> {
    // The unchecked `seed_start..seed_start + count` this replaces
    // panicked in debug builds and produced a silently empty range in
    // release builds (same bug class as `round_seeds` before PR 3).
    match seed_start.checked_add(count) {
        Some(_) => Ok(()),
        None => Err(SimError::SeedOverflow { seed_start, count }),
    }
}

/// Records one batch in the process-global metrics registry.
fn note_batch(count: u64, jobs: usize) {
    let registry = global();
    registry.counter(BATCHES).incr();
    registry.counter(RUNS).add(count);
    registry.gauge(JOBS).set(jobs as i64);
}

/// Clamps a requested job count to something useful for `count` items:
/// at least 1, at most one job per item.
fn effective_jobs(jobs: usize, count: u64) -> usize {
    let per_item = usize::try_from(count).unwrap_or(usize::MAX).max(1);
    jobs.clamp(1, per_item)
}

/// Maps `work` over `0..count` on a pool of `jobs` threads, returning
/// results in index order — or the error of the lowest failing index.
///
/// With `jobs <= 1` (or a single item) this **is** the sequential loop,
/// so the parallel path can be differentially tested against it. With
/// more jobs, indices are claimed from an atomic cursor, results return
/// through a bounded channel, and the calling thread drops each into
/// its slot; a failure raises a cancellation flag so workers stop
/// claiming new indices.
///
/// # Errors
///
/// The error of the lowest-indexed failing item, exactly as the
/// sequential loop would report. (The sequential loop stops immediately;
/// the pool may complete a few higher indices first, but their results
/// are discarded.)
pub fn try_batch_map<T, E, F>(count: u64, jobs: usize, work: F) -> std::result::Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> std::result::Result<T, E> + Sync,
{
    let total = usize::try_from(count).expect("population count exceeds address space");
    let jobs = effective_jobs(jobs, count);
    if jobs <= 1 {
        let mut out = Vec::with_capacity(total);
        for index in 0..count {
            out.push(work(index)?);
        }
        return Ok(out);
    }

    let next = AtomicU64::new(0);
    let cancelled = AtomicBool::new(false);
    let (tx, rx) = mpsc::sync_channel::<(u64, std::result::Result<T, E>)>(jobs * CHANNEL_SLACK);
    let mut slots: Vec<Option<std::result::Result<T, E>>> = Vec::new();
    slots.resize_with(total, || None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let cancelled = &cancelled;
            let work = &work;
            scope.spawn(move || loop {
                if cancelled.load(Ordering::Relaxed) {
                    return;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    return;
                }
                let result = work(index);
                if result.is_err() {
                    cancelled.store(true, Ordering::Relaxed);
                }
                if tx.send((index, result)).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        // Collect on the calling thread while the workers run; the
        // bounded channel throttles workers that get far ahead.
        for (index, result) in rx {
            slots[index as usize] = Some(result);
        }
    });

    let mut out = Vec::with_capacity(total);
    for slot in slots {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(error)) => return Err(error),
            // Unreachable before the first error: the atomic cursor
            // hands out indices in a total order, so claimed indices
            // always form a prefix of `0..count`; every claimed index
            // runs to completion and sends its slot (the receiver
            // drains until all senders drop). The cancellation flag is
            // raised only *after* some claimed index failed, so any
            // index skipped because of it lies strictly above the
            // lowest failing index — and the scan returns that error
            // before reaching an empty slot.
            None => unreachable!("unfilled slot below the first error"),
        }
    }
    Ok(out)
}

/// Infallible [`try_batch_map`]: maps `work` over `0..count` on `jobs`
/// threads, returning results in index order.
pub fn batch_map<T, F>(count: u64, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let result: std::result::Result<Vec<T>, std::convert::Infallible> =
        try_batch_map(count, jobs, |index| Ok(work(index)));
    match result {
        Ok(out) => out,
        Err(never) => match never {},
    }
}

/// Runs `count` executions with seeds `seed_start..seed_start + count`
/// on a pool of `jobs` worker threads, in ascending-seed order.
///
/// Output is byte-identical to the sequential runner for every `jobs`
/// value (see the module docs).
///
/// # Errors
///
/// [`SimError::SeedOverflow`] if the seed range leaves `u64`; otherwise
/// the lowest-seeded simulation error, exactly as sequential execution
/// reports.
///
/// # Examples
///
/// ```
/// use spa_sim::batch::run_population_batch;
/// use spa_sim::config::SystemConfig;
/// use spa_sim::runner::run_population;
/// use spa_sim::workload::parsec::Benchmark;
///
/// let spec = Benchmark::Blackscholes.workload_scaled(0.25);
/// let batched = run_population_batch(SystemConfig::table2(), &spec, 0, 4, 2)?;
/// let reference = run_population(SystemConfig::table2(), &spec, 0, 4)?;
/// assert_eq!(batched, reference);
/// # Ok::<(), spa_sim::SimError>(())
/// ```
pub fn run_population_batch(
    config: SystemConfig,
    workload: &WorkloadSpec,
    seed_start: u64,
    count: u64,
    jobs: usize,
) -> Result<Vec<ExecutionResult>> {
    run_population_batch_with(
        config,
        workload,
        Variability::paper_default(),
        seed_start,
        count,
        jobs,
    )
}

/// As [`run_population_batch`] with an explicit variability model.
///
/// # Errors
///
/// As [`run_population_batch`].
pub fn run_population_batch_with(
    config: SystemConfig,
    workload: &WorkloadSpec,
    variability: Variability,
    seed_start: u64,
    count: u64,
    jobs: usize,
) -> Result<Vec<ExecutionResult>> {
    check_seed_range(seed_start, count)?;
    let machine = Machine::new(config, workload)?.with_variability(variability);
    let jobs = effective_jobs(jobs, count);
    note_batch(count, jobs);
    try_batch_map(count, jobs, |index| machine.run(seed_start + index))
}

/// Runs `count` executions on `jobs` threads and streams each through
/// the metric evaluation stage, returning only the metric samples in
/// ascending-seed order.
///
/// Each [`ExecutionResult`] is reduced to its `f64` sample *inside the
/// worker that produced it*, so only scalars cross the bounded channel
/// and the scalar path never materializes the population — the same
/// guarantee the sequential streaming runner gives, at any job count.
///
/// # Errors
///
/// As [`run_population_batch`].
pub fn run_metric_population_batch(
    config: SystemConfig,
    workload: &WorkloadSpec,
    seed_start: u64,
    count: u64,
    metric: Metric,
    jobs: usize,
) -> Result<Vec<f64>> {
    run_metric_population_batch_with(
        config,
        workload,
        Variability::paper_default(),
        seed_start,
        count,
        metric,
        jobs,
    )
}

/// As [`run_metric_population_batch`] with an explicit variability
/// model.
///
/// # Errors
///
/// As [`run_population_batch`].
pub fn run_metric_population_batch_with(
    config: SystemConfig,
    workload: &WorkloadSpec,
    variability: Variability,
    seed_start: u64,
    count: u64,
    metric: Metric,
    jobs: usize,
) -> Result<Vec<f64>> {
    check_seed_range(seed_start, count)?;
    let machine = Machine::new(config, workload)?.with_variability(variability);
    let evaluator = MetricEvaluator::new(metric);
    let jobs = effective_jobs(jobs, count);
    note_batch(count, jobs);
    try_batch_map(count, jobs, |index| {
        machine
            .run(seed_start + index)
            .map(|run| evaluator.extract(&run))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::parsec::Benchmark;

    #[test]
    fn batch_map_preserves_index_order() {
        for jobs in [1, 2, 8] {
            let out = batch_map(100, jobs, |i| i * i);
            let expected: Vec<u64> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn first_error_in_index_order_wins() {
        // Indices 3 and upward fail; every job count must report 3,
        // exactly as the sequential loop does.
        for jobs in [1, 2, 8] {
            let result: std::result::Result<Vec<u64>, u64> =
                try_batch_map(64, jobs, |i| if i >= 3 { Err(i) } else { Ok(i) });
            assert_eq!(result, Err(3), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let out: Vec<u64> = batch_map(0, 8, |i| i);
        assert!(out.is_empty());
        let ok: std::result::Result<Vec<u64>, ()> = try_batch_map(0, 8, Ok);
        assert_eq!(ok, Ok(Vec::new()));
    }

    #[test]
    fn oversized_job_counts_are_clamped() {
        assert_eq!(effective_jobs(64, 2), 2);
        assert_eq!(effective_jobs(0, 2), 1);
        assert_eq!(effective_jobs(4, 0), 1);
        assert_eq!(effective_jobs(4, 100), 4);
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn populations_are_identical_across_job_counts() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let reference = run_population_batch(SystemConfig::table2(), &spec, 7, 6, 1).unwrap();
        for jobs in [2, 8] {
            let batched = run_population_batch(SystemConfig::table2(), &spec, 7, 6, jobs).unwrap();
            assert_eq!(batched, reference, "jobs={jobs}");
        }
        assert_eq!(reference.len(), 6);
        assert_eq!(reference[0].seed, 7);
    }

    #[test]
    fn metric_samples_are_identical_across_job_counts() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let reference =
            run_metric_population_batch(SystemConfig::table2(), &spec, 0, 6, Metric::Ipc, 1)
                .unwrap();
        for jobs in [2, 8] {
            let batched =
                run_metric_population_batch(SystemConfig::table2(), &spec, 0, 6, Metric::Ipc, jobs)
                    .unwrap();
            assert_eq!(batched, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn seed_overflow_is_a_typed_error() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let err = run_population_batch(SystemConfig::table2(), &spec, u64::MAX - 2, 8, 4)
            .expect_err("overflowing range must be rejected");
        assert_eq!(
            err,
            SimError::SeedOverflow {
                seed_start: u64::MAX - 2,
                count: 8,
            }
        );
        let err =
            run_metric_population_batch(SystemConfig::table2(), &spec, u64::MAX, 1, Metric::Ipc, 2)
                .expect_err("overflowing range must be rejected");
        assert!(matches!(err, SimError::SeedOverflow { .. }));
        // The largest non-overflowing range is still accepted (checked
        // before any simulation starts, so use an empty count).
        assert!(run_population_batch(SystemConfig::table2(), &spec, u64::MAX, 0, 2).is_ok());
    }

    #[test]
    fn batch_counters_are_bumped_once_per_batch() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.25);
        let registry = global();
        let batches_before = registry.counter(BATCHES).get();
        let runs_before = registry.counter(RUNS).get();
        let popped_before = registry.counter(crate::sched::EVENTS_POPPED).get();
        let first = run_population_batch(SystemConfig::table2(), &spec, 0, 3, 2).unwrap();
        // Other tests in this binary share the process-global registry,
        // so assert on minimum deltas rather than exact values.
        assert!(registry.counter(BATCHES).get() >= batches_before + 1);
        assert!(registry.counter(RUNS).get() >= runs_before + 3);
        assert!(registry.gauge(JOBS).get() >= 1);
        // Every run flushes its scheduler stats: at least one popped
        // event per run (the initial per-core events alone guarantee
        // more).
        assert!(registry.counter(crate::sched::EVENTS_POPPED).get() >= popped_before + 3);
        // Verdict neutrality: observability is write-only — rerunning
        // with counters already accumulated changes no result.
        let second = run_population_batch(SystemConfig::table2(), &spec, 0, 3, 2).unwrap();
        assert_eq!(first, second);
    }
}
