//! Simulator-backed pipeline stages: the sim side of the paper's
//! *simulate → record → evaluate → feed SMC* workflow.
//!
//! [`spa_core::pipeline`] defines the staged sampling abstraction
//! (observation source → evaluator); this module provides the concrete
//! stages for simulator workloads:
//!
//! * [`MachineSource`] — stage 1: one seeded [`Machine`] execution per
//!   observation (driven by the event-driven core, [`crate::sched`]),
//!   with simulator errors and panics classified as [`SampleError`]s
//!   so SPA's retry machinery can handle them,
//! * [`MetricEvaluator`] — stage 2 for the scalar path: extract one
//!   [`Metric`] from the execution's end-of-run counters,
//! * [`StlEvaluator`] — stage 2 for the trace path: evaluate a parsed
//!   STL formula over the execution's recorded signal trace, yielding
//!   a boolean-satisfaction (0/1) or quantitative-robustness sample.
//!
//! Composed with [`Pipeline`](spa_core::pipeline::Pipeline), either
//! evaluator turns a machine into a
//! [`FallibleSampler`](spa_core::fault::FallibleSampler) that plugs
//! directly into [`Spa`](spa_core::spa::Spa).
//!
//! # Examples
//!
//! Checking `G[0,end] (occupancy >= 0)` with boolean semantics:
//!
//! ```
//! use spa_core::fault::FallibleSampler;
//! use spa_core::pipeline::Pipeline;
//! use spa_sim::config::SystemConfig;
//! use spa_sim::machine::Machine;
//! use spa_sim::pipeline::{MachineSource, PropertySemantics, StlEvaluator};
//! use spa_sim::workload::parsec::Benchmark;
//! use spa_stl::parser::parse;
//!
//! let spec = Benchmark::Blackscholes.workload_scaled(0.2);
//! let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
//! let formula = parse("G[0,end] (occupancy >= 0)").unwrap();
//! let pipeline = Pipeline::new(
//!     MachineSource::new(&machine),
//!     StlEvaluator::new(formula, PropertySemantics::Boolean),
//! );
//! assert_eq!(pipeline.sample(1), Ok(1.0));
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use spa_core::fault::SampleError;
use spa_core::pipeline::{Evaluator, SampleSource};
use spa_stl::ast::Stl;
use spa_stl::eval::{robustness, satisfies};

use crate::machine::Machine;
use crate::metrics::{ExecutionResult, Metric};

/// Stage 1: a seed-addressed source of simulator executions.
///
/// Each observation is one full [`ExecutionResult`] — scalar metrics
/// plus, when the machine's config enables trace collection, the
/// recorded STL trace. Simulator errors (e.g. workload deadlocks) and
/// panics surface as [`SampleError::Crash`], keeping the machine usable
/// from SPA's fault-tolerant driver.
#[derive(Debug, Clone, Copy)]
pub struct MachineSource<'m, 'w> {
    machine: &'m Machine<'w>,
}

impl<'m, 'w> MachineSource<'m, 'w> {
    /// A source drawing observations from `machine`.
    pub fn new(machine: &'m Machine<'w>) -> Self {
        Self { machine }
    }
}

impl SampleSource for MachineSource<'_, '_> {
    type Obs = ExecutionResult;

    fn observe(&self, seed: u64) -> Result<ExecutionResult, SampleError> {
        match catch_unwind(AssertUnwindSafe(|| self.machine.run(seed))) {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(e)) => Err(SampleError::Crash {
                message: e.to_string(),
            }),
            Err(_) => Err(SampleError::Crash {
                message: "simulator panicked".to_owned(),
            }),
        }
    }
}

/// Stage 2, scalar path: extracts one end-of-run [`Metric`] from an
/// execution.
///
/// This is the streaming replacement for
/// `run_population` + `extract_metric`: each execution is reduced to
/// its `f64` sample as soon as it finishes, so no intermediate
/// `Vec<ExecutionResult>` is materialized.
#[derive(Debug, Clone, Copy)]
pub struct MetricEvaluator {
    metric: Metric,
}

impl MetricEvaluator {
    /// An evaluator extracting `metric`.
    pub fn new(metric: Metric) -> Self {
        Self { metric }
    }

    /// The extracted metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Extracts the metric value without the finiteness check.
    pub fn extract(&self, result: &ExecutionResult) -> f64 {
        self.metric.extract(&result.metrics)
    }
}

impl Evaluator for MetricEvaluator {
    type Obs = ExecutionResult;

    fn evaluate(&self, obs: &ExecutionResult) -> Result<f64, SampleError> {
        let value = self.extract(obs);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(SampleError::InvalidMetric { value })
        }
    }
}

/// Which STL semantics an [`StlEvaluator`] samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertySemantics {
    /// Boolean satisfaction: 1.0 when the trace satisfies the formula,
    /// 0.0 otherwise. These are the `φ(σ)` Bernoulli outcomes the
    /// paper's SMC engine consumes (Algorithm 1/2).
    Boolean,
    /// Quantitative robustness (Donzé & Maler): how strongly the trace
    /// satisfies (positive) or violates (negative) the formula, as a
    /// real-valued sample suitable for CI construction.
    Robustness,
}

/// Stage 2, trace path: evaluates a parsed STL formula over each
/// execution's recorded signal trace.
///
/// The machine feeding this evaluator must have trace collection
/// enabled ([`SystemConfig::with_trace`](crate::config::SystemConfig::with_trace));
/// an execution without a trace is reported as [`SampleError::Crash`],
/// since retrying cannot help. STL evaluation errors (unknown signal,
/// empty window) are likewise crashes, and a non-finite robustness
/// value (the vacuous `±∞` of `true`/`false` subformulas dominating)
/// maps to [`SampleError::InvalidMetric`] to preserve the pipeline's
/// finite-sample invariant.
#[derive(Debug, Clone)]
pub struct StlEvaluator {
    formula: Stl,
    semantics: PropertySemantics,
}

impl StlEvaluator {
    /// An evaluator for `formula` under `semantics`.
    pub fn new(formula: Stl, semantics: PropertySemantics) -> Self {
        Self { formula, semantics }
    }

    /// The evaluated formula.
    pub fn formula(&self) -> &Stl {
        &self.formula
    }

    /// The sampling semantics.
    pub fn semantics(&self) -> PropertySemantics {
        self.semantics
    }
}

impl Evaluator for StlEvaluator {
    type Obs = ExecutionResult;

    fn evaluate(&self, obs: &ExecutionResult) -> Result<f64, SampleError> {
        let data = obs.stl_data.as_ref().ok_or_else(|| SampleError::Crash {
            message: "execution carried no STL trace (enable SystemConfig::with_trace)".to_owned(),
        })?;
        let trace = data.trace();
        let t = trace.start_time();
        match self.semantics {
            PropertySemantics::Boolean => match satisfies(&self.formula, trace, t) {
                Ok(sat) => Ok(if sat { 1.0 } else { 0.0 }),
                Err(e) => Err(SampleError::Crash {
                    message: format!("STL evaluation failed: {e}"),
                }),
            },
            PropertySemantics::Robustness => match robustness(&self.formula, trace, t) {
                Ok(value) if value.is_finite() => Ok(value),
                Ok(value) => Err(SampleError::InvalidMetric { value }),
                Err(e) => Err(SampleError::Crash {
                    message: format!("STL evaluation failed: {e}"),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::workload::parsec::Benchmark;
    use crate::workload::{PInstr, WorkloadSpec};
    use spa_core::pipeline::Pipeline;
    use spa_stl::parser::parse;

    fn traced_machine(spec: &WorkloadSpec) -> Machine<'_> {
        Machine::new(SystemConfig::table2().with_trace(), spec).unwrap()
    }

    #[test]
    fn metric_evaluator_streams_the_scalar_path() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.2);
        let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
        let pipeline = Pipeline::new(
            MachineSource::new(&machine),
            MetricEvaluator::new(Metric::Ipc),
        );
        use spa_core::fault::FallibleSampler;
        let sample = pipeline.sample(3).unwrap();
        let direct = Metric::Ipc.extract(&machine.run(3).unwrap().metrics);
        assert_eq!(sample, direct);
    }

    #[test]
    fn boolean_and_robustness_semantics_agree_in_sign() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.2);
        let machine = traced_machine(&spec);
        let run = machine.run(9).unwrap();
        for src in ["G[0,end] (occupancy >= 0)", "F[0,end] (ipc > 1000)"] {
            let formula = parse(src).unwrap();
            let boolean = StlEvaluator::new(formula.clone(), PropertySemantics::Boolean)
                .evaluate(&run)
                .unwrap();
            let rob = StlEvaluator::new(formula, PropertySemantics::Robustness)
                .evaluate(&run)
                .unwrap();
            assert!(boolean == 0.0 || boolean == 1.0);
            assert_eq!(
                boolean == 1.0,
                rob > 0.0,
                "{src}: boolean {boolean} vs robustness {rob}"
            );
        }
    }

    #[test]
    fn missing_trace_is_a_crash_not_a_panic() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.2);
        let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
        let run = machine.run(0).unwrap();
        let err = StlEvaluator::new(
            parse("G[0,end] (ipc > 0)").unwrap(),
            PropertySemantics::Boolean,
        )
        .evaluate(&run)
        .unwrap_err();
        assert!(matches!(err, SampleError::Crash { .. }));
    }

    #[test]
    fn unknown_signal_is_a_crash() {
        let spec = Benchmark::Blackscholes.workload_scaled(0.2);
        let machine = traced_machine(&spec);
        let run = machine.run(0).unwrap();
        let err = StlEvaluator::new(
            parse("G[0,end] (no_such_signal > 0)").unwrap(),
            PropertySemantics::Boolean,
        )
        .evaluate(&run)
        .unwrap_err();
        assert!(matches!(err, SampleError::Crash { .. }));
    }

    #[test]
    fn simulator_errors_surface_as_sample_errors() {
        // A self-deadlocking program: the second acquire of a
        // non-reentrant lock can never succeed.
        let mut config = SystemConfig::table2();
        config.cores = 1;
        let spec = WorkloadSpec {
            name: "deadlock".into(),
            programs: vec![vec![
                PInstr::LockAcquire(0),
                PInstr::LockAcquire(0),
                PInstr::End,
            ]],
            locks: 1,
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        let machine = Machine::new(config, &spec).unwrap();
        let err = MachineSource::new(&machine).observe(0).unwrap_err();
        assert!(matches!(err, SampleError::Crash { .. }));
    }
}
