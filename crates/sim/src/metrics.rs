//! Per-execution metrics — the quantities the paper's figures analyze.
//!
//! Fig. 6–9 evaluate CI construction over several metrics of the ferret
//! benchmark (runtime, IPC, cache MPKIs, max load latency, branch
//! MPKI); Fig. 10–13 sweep benchmarks at fixed metrics. The [`Metric`]
//! enum names them uniformly so harnesses can iterate.

use serde::{Deserialize, Serialize};

use spa_stl::execution::ExecutionData;

/// Scalar metrics of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ExecutionMetrics {
    /// End-to-end runtime in cycles (maximum over cores).
    pub runtime_cycles: u64,
    /// Runtime converted to seconds at the configured clock.
    pub runtime_seconds: f64,
    /// Total committed instructions across cores.
    pub instructions: u64,
    /// Aggregate instructions per cycle.
    pub ipc: f64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 instruction-cache accesses.
    pub l1i_accesses: u64,
    /// Shared L2 misses.
    pub l2_misses: u64,
    /// Shared L2 accesses.
    pub l2_accesses: u64,
    /// L1 (D+I) misses per 1000 instructions.
    pub l1_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// L2 miss probability (misses / accesses).
    pub l2_miss_rate: f64,
    /// Worst-case load latency in cycles. Integer-valued by nature —
    /// the metric whose duplicates break BCa bootstrapping (§6.4).
    pub max_load_latency: u64,
    /// Mean load latency in cycles.
    pub avg_load_latency: f64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Branch mispredictions per 1000 instructions.
    pub branch_mpki: f64,
    /// Data-TLB misses.
    pub tlb_misses: u64,
    /// Lock acquisitions that had to wait.
    pub lock_contentions: u64,
    /// Coherence invalidation messages.
    pub invalidations: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Total injected variability cycles.
    pub jitter_cycles: u64,
}

/// A named metric extractor — what the bench harness sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Runtime in seconds (Fig. 1/2's metric).
    RuntimeSeconds,
    /// Aggregate IPC.
    Ipc,
    /// L1 misses per kilo-instruction (Fig. 10/11's metric).
    L1Mpki,
    /// L2 misses per kilo-instruction.
    L2Mpki,
    /// L2 miss probability (Fig. 12/13's metric).
    L2MissRate,
    /// Maximum load latency in cycles (integer-valued; the §6.4
    /// bootstrap-breaking metric).
    MaxLoadLatency,
    /// Branch mispredictions per kilo-instruction.
    BranchMpki,
}

impl Metric {
    /// All metrics, in the order the figures present them.
    pub const ALL: [Metric; 7] = [
        Metric::RuntimeSeconds,
        Metric::Ipc,
        Metric::L1Mpki,
        Metric::L2Mpki,
        Metric::L2MissRate,
        Metric::MaxLoadLatency,
        Metric::BranchMpki,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::RuntimeSeconds => "Runtime (s)",
            Metric::Ipc => "IPC",
            Metric::L1Mpki => "L1 Cache Misses / 1k Instructions",
            Metric::L2Mpki => "L2 Cache Misses / 1k Instructions",
            Metric::L2MissRate => "L2 Cache Miss Probability",
            Metric::MaxLoadLatency => "Max Load Latency",
            Metric::BranchMpki => "Branch Mispredictions / 1k Instructions",
        }
    }

    /// Short identifier for tables and cache keys.
    pub fn key(&self) -> &'static str {
        match self {
            Metric::RuntimeSeconds => "runtime",
            Metric::Ipc => "ipc",
            Metric::L1Mpki => "l1_mpki",
            Metric::L2Mpki => "l2_mpki",
            Metric::L2MissRate => "l2_miss_rate",
            Metric::MaxLoadLatency => "max_load_latency",
            Metric::BranchMpki => "branch_mpki",
        }
    }

    /// Extracts the metric value from an execution's metrics.
    pub fn extract(&self, m: &ExecutionMetrics) -> f64 {
        match self {
            Metric::RuntimeSeconds => m.runtime_seconds,
            Metric::Ipc => m.ipc,
            Metric::L1Mpki => m.l1_mpki,
            Metric::L2Mpki => m.l2_mpki,
            Metric::L2MissRate => m.l2_miss_rate,
            Metric::MaxLoadLatency => m.max_load_latency as f64,
            Metric::BranchMpki => m.branch_mpki,
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// The seed the run was executed with.
    pub seed: u64,
    /// Scalar metrics.
    pub metrics: ExecutionMetrics,
    /// STL events discarded because the trace hit its per-run event
    /// cap; nonzero means `stl_data`'s event streams are truncated.
    pub dropped_events: u64,
    /// STL trace/events (only when the config enables collection).
    pub stl_data: Option<ExecutionData>,
}

impl ExecutionMetrics {
    /// Fills the derived rates (IPC, MPKIs, miss rate) from the raw
    /// counters; call once after counters are final.
    pub fn finalize(&mut self, clock_hz: u64) {
        self.runtime_seconds = self.runtime_cycles as f64 / clock_hz as f64;
        let ki = self.instructions as f64 / 1000.0;
        if self.runtime_cycles > 0 {
            self.ipc = self.instructions as f64 / self.runtime_cycles as f64;
        }
        if ki > 0.0 {
            self.l1_mpki = (self.l1d_misses + self.l1i_misses) as f64 / ki;
            self.l2_mpki = self.l2_misses as f64 / ki;
            self.branch_mpki = self.branch_mispredicts as f64 / ki;
        }
        if self.l2_accesses > 0 {
            self.l2_miss_rate = self.l2_misses as f64 / self.l2_accesses as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_computes_rates() {
        let mut m = ExecutionMetrics {
            runtime_cycles: 2_000_000,
            instructions: 1_000_000,
            l1d_misses: 5_000,
            l1i_misses: 1_000,
            l2_misses: 600,
            l2_accesses: 6_000,
            branch_mispredicts: 2_500,
            ..Default::default()
        };
        m.finalize(2_000_000_000);
        assert!((m.runtime_seconds - 0.001).abs() < 1e-12);
        assert!((m.ipc - 0.5).abs() < 1e-12);
        assert!((m.l1_mpki - 6.0).abs() < 1e-12);
        assert!((m.l2_mpki - 0.6).abs() < 1e-12);
        assert!((m.l2_miss_rate - 0.1).abs() < 1e-12);
        assert!((m.branch_mpki - 2.5).abs() < 1e-12);
    }

    #[test]
    fn finalize_handles_zero_denominators() {
        let mut m = ExecutionMetrics::default();
        m.finalize(1_000_000_000);
        assert_eq!(m.ipc, 0.0);
        assert_eq!(m.l1_mpki, 0.0);
        assert_eq!(m.l2_miss_rate, 0.0);
    }

    #[test]
    fn metric_extraction() {
        let mut m = ExecutionMetrics {
            runtime_cycles: 1000,
            instructions: 1500,
            max_load_latency: 144,
            ..Default::default()
        };
        m.finalize(1_000_000_000);
        assert_eq!(Metric::MaxLoadLatency.extract(&m), 144.0);
        assert!((Metric::Ipc.extract(&m) - 1.5).abs() < 1e-12);
        assert_eq!(Metric::RuntimeSeconds.extract(&m), 1e-6);
    }

    #[test]
    fn metric_names_unique() {
        let mut keys: Vec<&str> = Metric::ALL.iter().map(|m| m.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Metric::ALL.len());
        for m in Metric::ALL {
            assert!(!m.name().is_empty());
            assert_eq!(m.to_string(), m.name());
        }
    }

    #[test]
    fn max_load_latency_is_integer_valued() {
        // The §6.4 duplicate-data premise: the metric is a whole number
        // of cycles even after extraction to f64.
        let m = ExecutionMetrics {
            max_load_latency: 197,
            ..Default::default()
        };
        let v = Metric::MaxLoadLatency.extract(&m);
        assert_eq!(v.fract(), 0.0);
    }
}
