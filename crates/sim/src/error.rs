use std::fmt;

/// Error type for simulator configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value is invalid (zero ways, non-power-of-two
    /// sizes, etc.).
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// What was wrong.
        message: String,
    },
    /// The simulated program deadlocked: every thread is blocked on a
    /// synchronization primitive and no event can make progress.
    Deadlock {
        /// Simulated cycle at which the deadlock was detected.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration `{field}`: {message}")
            }
            SimError::Deadlock { cycle } => {
                write!(f, "simulated workload deadlocked at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidConfig {
            field: "l2_ways",
            message: "must be nonzero".into(),
        };
        assert!(e.to_string().contains("l2_ways"));
        assert!(SimError::Deadlock { cycle: 42 }.to_string().contains("42"));
    }
}
