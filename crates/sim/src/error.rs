use std::fmt;

/// Error type for simulator configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value is invalid (zero ways, non-power-of-two
    /// sizes, etc.).
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// What was wrong.
        message: String,
    },
    /// The simulated program deadlocked: every thread is blocked on a
    /// synchronization primitive and no event can make progress.
    Deadlock {
        /// Simulated cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// A seed range `seed_start..seed_start + count` leaves `u64`.
    /// (Before this variant the runner computed the range unchecked:
    /// a panic in debug builds, a silently empty population in release
    /// builds.)
    SeedOverflow {
        /// First seed of the requested range.
        seed_start: u64,
        /// Number of executions requested.
        count: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration `{field}`: {message}")
            }
            SimError::Deadlock { cycle } => {
                write!(f, "simulated workload deadlocked at cycle {cycle}")
            }
            SimError::SeedOverflow { seed_start, count } => {
                write!(
                    f,
                    "seed range {seed_start}..{seed_start}+{count} overflows u64"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidConfig {
            field: "l2_ways",
            message: "must be nonzero".into(),
        };
        assert!(e.to_string().contains("l2_ways"));
        assert!(SimError::Deadlock { cycle: 42 }.to_string().contains("42"));
        let overflow = SimError::SeedOverflow {
            seed_start: u64::MAX,
            count: 2,
        }
        .to_string();
        assert!(overflow.contains("overflows"));
        assert!(overflow.contains(&u64::MAX.to_string()));
    }
}
