//! Set-associative cache arrays with LRU replacement.
//!
//! Used for the private L1 I/D caches and the shared L2. The array
//! tracks block presence and recency only; coherence state lives in the
//! [`directory`](crate::coherence) so a block's MESI status is a single
//! source of truth.

use crate::config::CacheConfig;

/// A block-granular address: the full address divided by the block size.
pub type BlockAddr = u64;

/// Result of a lookup-and-fill operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Block was present.
    Hit,
    /// Block was absent and has been filled; no victim was displaced.
    MissFilled,
    /// Block was absent and filling displaced the returned victim.
    MissEvicted(BlockAddr),
}

/// A set-associative, LRU cache array over block addresses.
///
/// # Examples
///
/// ```
/// use spa_sim::cache::{Access, CacheArray};
/// use spa_sim::config::CacheConfig;
///
/// let cfg = CacheConfig { capacity_bytes: 256, ways: 2, latency: 1 };
/// let mut c = CacheArray::new(&cfg, 64); // 2 sets × 2 ways
/// assert_eq!(c.access(0), Access::MissFilled);
/// assert_eq!(c.access(0), Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<Entry>>,
    ways: usize,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    block: BlockAddr,
    /// Higher = more recently used.
    stamp: u64,
}

impl CacheArray {
    /// Builds the array from a level config and the system block size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways); the
    /// system validates configs before construction.
    pub fn new(config: &CacheConfig, block_bytes: u64) -> Self {
        let sets = config.sets(block_bytes);
        assert!(sets > 0 && config.ways > 0, "degenerate cache geometry");
        Self {
            sets: vec![Vec::with_capacity(config.ways as usize); sets as usize],
            ways: config.ways as usize,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Whether the block is currently present (no recency update).
    pub fn contains(&self, block: BlockAddr) -> bool {
        let idx = self.set_index(block);
        self.sets[idx].iter().any(|e| e.block == block)
    }

    /// Looks up `block`, filling it on a miss; returns what happened.
    /// Updates recency and hit/miss statistics.
    pub fn access(&mut self, block: BlockAddr) -> Access {
        let stamp = self.hits + self.misses + 1;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.block == block) {
            e.stamp = stamp;
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        if set.len() < self.ways {
            set.push(Entry { block, stamp });
            return Access::MissFilled;
        }
        // Evict the least recently used way.
        let (victim_pos, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .expect("set is full, hence non-empty");
        let victim = set[victim_pos].block;
        set[victim_pos] = Entry { block, stamp };
        Access::MissEvicted(victim)
    }

    /// Touches a block (recency update) without counting a hit/miss;
    /// used when coherence traffic revalidates a line.
    pub fn touch(&mut self, block: BlockAddr) {
        let stamp = self.hits + self.misses + 1;
        let idx = self.set_index(block);
        if let Some(e) = self.sets[idx].iter_mut().find(|e| e.block == block) {
            e.stamp = stamp;
        }
    }

    /// Removes a block if present (invalidation / inclusion victim).
    /// Returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.block == block) {
            set.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]` (`NaN` before any access).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            f64::NAN
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Number of blocks currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// All currently resident blocks (order unspecified but
    /// deterministic).
    pub fn resident_blocks(&self) -> Vec<BlockAddr> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|e| e.block))
            .collect()
    }

    /// Empties the cache (models a context-switch/migration cold start).
    /// Statistics are preserved.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny(ways: u32, sets: u64) -> CacheArray {
        let cfg = CacheConfig {
            capacity_bytes: sets * ways as u64 * 64,
            ways,
            latency: 1,
        };
        CacheArray::new(&cfg, 64)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(2, 2);
        assert_eq!(c.access(10), Access::MissFilled);
        assert_eq!(c.access(10), Access::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(2, 1); // one set, two ways
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        match c.access(3) {
            Access::MissEvicted(v) => assert_eq!(v, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn touch_refreshes_recency_without_stats() {
        let mut c = tiny(2, 1);
        c.access(1);
        c.access(2);
        let (h, m) = (c.hits(), c.misses());
        c.touch(1); // make 2 the LRU victim
        assert_eq!((c.hits(), c.misses()), (h, m));
        match c.access(3) {
            Access::MissEvicted(v) => assert_eq!(v, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(4, 2);
        c.access(5);
        assert!(c.invalidate(5));
        assert!(!c.invalidate(5));
        assert!(!c.contains(5));
        assert_eq!(c.access(5), Access::MissFilled);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny(1, 4); // direct-mapped, 4 sets
        for b in 0..4 {
            assert_eq!(c.access(b), Access::MissFilled);
        }
        for b in 0..4 {
            assert_eq!(c.access(b), Access::Hit);
        }
        // Same set as block 0 (0 % 4 == 4 % 4) evicts it.
        assert_eq!(c.access(4), Access::MissEvicted(0));
    }

    #[test]
    fn miss_rate_nan_when_untouched() {
        let c = tiny(2, 2);
        assert!(c.miss_rate().is_nan());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut c = tiny(2, 2);
        c.access(1);
        c.access(2);
        let mut resident = c.resident_blocks();
        resident.sort_unstable();
        assert_eq!(resident, vec![1, 2]);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(c.resident_blocks().is_empty());
        assert_eq!(c.misses(), 2); // stats preserved
        assert_eq!(c.access(1), Access::MissFilled); // cold again
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(
            blocks in proptest::collection::vec(0_u64..256, 1..300),
        ) {
            let mut c = tiny(2, 4); // capacity 8 blocks
            for b in blocks {
                c.access(b);
            }
            prop_assert!(c.occupancy() <= 8);
        }

        #[test]
        fn contains_iff_filled_and_not_evicted(
            blocks in proptest::collection::vec(0_u64..64, 1..200),
        ) {
            let mut c = tiny(4, 4);
            let mut last = None;
            for b in blocks {
                c.access(b);
                last = Some(b);
            }
            // The most recently accessed block is always resident.
            prop_assert!(c.contains(last.unwrap()));
        }

        #[test]
        fn stats_add_up(blocks in proptest::collection::vec(0_u64..32, 1..200)) {
            let mut c = tiny(2, 2);
            let n = blocks.len() as u64;
            for b in blocks {
                c.access(b);
            }
            prop_assert_eq!(c.accesses(), n);
            prop_assert_eq!(c.hits() + c.misses(), n);
        }
    }
}
