//! Deterministic fault injection: a seeded model of executions that
//! crash, hang, or emit garbage metrics.
//!
//! The fault-tolerance layer in `spa-core` needs a substrate whose
//! failures are *reproducible*: the same `(FaultSpec, seed)` pair must
//! fail the same way every time, or the retry/degradation pipeline
//! cannot be tested deterministically. [`FaultSpec`] extends the
//! variability-injection idiom ([`crate::variability`]) with one roll
//! per execution on a dedicated RNG stream
//! ([`Stream::FaultInjection`]), so enabling faults never perturbs the
//! jitter or OS-noise numbers of the executions that survive. The roll
//! also happens before any simulation, so its outcome is independent of
//! the execution engine — the event-driven core and the quantum-stepped
//! oracle fault on exactly the same seeds
//! (`tests/event_differential.rs`).

use serde::{Deserialize, Serialize};

use crate::rng::{SimRng, Stream};
use crate::{Result, SimError};

/// The way one execution fails under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The execution dies outright (a crashed simulator process).
    Crash,
    /// The execution hangs past any reasonable budget; the harness
    /// should classify it as a timeout.
    Timeout,
    /// The execution completes but reports a non-finite metric.
    NanMetric,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::Timeout => write!(f, "timeout"),
            FaultKind::NanMetric => write!(f, "nan-metric"),
        }
    }
}

/// Per-execution fault probabilities, rolled deterministically per seed.
///
/// The three probabilities partition `[0, 1)`: a single uniform draw per
/// execution lands in the crash band, the timeout band, the NaN band, or
/// the healthy remainder. Their sum must therefore be at most 1.
///
/// # Examples
///
/// ```
/// use spa_sim::fault::{FaultKind, FaultSpec};
///
/// let spec = FaultSpec::none().with_crashes(0.2);
/// // Deterministic: the same seed always rolls the same outcome.
/// assert_eq!(spec.roll(7), spec.roll(7));
/// // Roughly 20% of seeds fault, all as crashes.
/// let faults = (0..1000).filter_map(|s| spec.roll(s)).count();
/// assert!((120..280).contains(&faults));
/// assert!((0..1000).filter_map(|s| spec.roll(s)).all(|k| k == FaultKind::Crash));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability that an execution crashes.
    pub crash_prob: f64,
    /// Probability that an execution hangs (reported as a timeout).
    pub timeout_prob: f64,
    /// Probability that an execution reports a NaN metric.
    pub nan_prob: f64,
}

impl FaultSpec {
    /// No faults: every execution is healthy. Identical to
    /// `FaultSpec::default()`.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the crash probability.
    pub fn with_crashes(mut self, p: f64) -> Self {
        self.crash_prob = p;
        self
    }

    /// Sets the hang-as-timeout probability.
    pub fn with_timeouts(mut self, p: f64) -> Self {
        self.timeout_prob = p;
        self
    }

    /// Sets the NaN-metric probability.
    pub fn with_nan_metrics(mut self, p: f64) -> Self {
        self.nan_prob = p;
        self
    }

    /// Whether this spec injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.crash_prob == 0.0 && self.timeout_prob == 0.0 && self.nan_prob == 0.0
    }

    /// Checks that every probability is a finite value in `[0, 1]` and
    /// that the three sum to at most 1.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        for (field, p) in [
            ("crash_prob", self.crash_prob),
            ("timeout_prob", self.timeout_prob),
            ("nan_prob", self.nan_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(SimError::InvalidConfig {
                    field,
                    message: format!("probability {p} is not in [0, 1]"),
                });
            }
        }
        let total = self.crash_prob + self.timeout_prob + self.nan_prob;
        if total > 1.0 {
            return Err(SimError::InvalidConfig {
                field: "fault probabilities",
                message: format!("probabilities sum to {total}, which exceeds 1"),
            });
        }
        Ok(())
    }

    /// Rolls the fault outcome for execution `seed`: `None` means the
    /// execution is healthy. Deterministic in `(self, seed)`.
    pub fn roll(&self, seed: u64) -> Option<FaultKind> {
        if self.is_none() {
            return None;
        }
        let u = SimRng::new(seed, Stream::FaultInjection, 0).uniform_f64();
        if u < self.crash_prob {
            Some(FaultKind::Crash)
        } else if u < self.crash_prob + self.timeout_prob {
            Some(FaultKind::Timeout)
        } else if u < self.crash_prob + self.timeout_prob + self.nan_prob {
            Some(FaultKind::NanMetric)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        assert!((0..500).all(|s| spec.roll(s).is_none()));
    }

    #[test]
    fn roll_is_deterministic() {
        let spec = FaultSpec::none()
            .with_crashes(0.1)
            .with_timeouts(0.1)
            .with_nan_metrics(0.1);
        let a: Vec<_> = (0..200).map(|s| spec.roll(s)).collect();
        let b: Vec<_> = (0..200).map(|s| spec.roll(s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bands_partition_the_unit_interval() {
        let spec = FaultSpec::none()
            .with_crashes(0.2)
            .with_timeouts(0.2)
            .with_nan_metrics(0.2);
        let mut counts = [0usize; 4];
        for s in 0..2000 {
            match spec.roll(s) {
                Some(FaultKind::Crash) => counts[0] += 1,
                Some(FaultKind::Timeout) => counts[1] += 1,
                Some(FaultKind::NanMetric) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        // Each band should see roughly its 20% / 40% share.
        for (i, &c) in counts.iter().take(3).enumerate() {
            assert!((280..=520).contains(&c), "band {i} saw {c} of 2000");
        }
        assert!(
            (640..=960).contains(&counts[3]),
            "healthy saw {}",
            counts[3]
        );
    }

    #[test]
    fn faults_do_not_perturb_other_streams() {
        // The fault roll uses its own stream, so the jitter numbers an
        // execution draws are identical with faults on or off.
        let mut with = SimRng::new(9, Stream::DramJitter, 0);
        let spec = FaultSpec::none().with_crashes(0.5);
        let _ = spec.roll(9);
        let mut without = SimRng::new(9, Stream::DramJitter, 0);
        let a: Vec<u64> = (0..16).map(|_| with.uniform_u64(0, 4)).collect();
        let b: Vec<u64> = (0..16).map(|_| without.uniform_u64(0, 4)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(FaultSpec::none().validate().is_ok());
        assert!(FaultSpec::none().with_crashes(-0.1).validate().is_err());
        assert!(FaultSpec::none().with_timeouts(1.5).validate().is_err());
        assert!(FaultSpec::none()
            .with_nan_metrics(f64::NAN)
            .validate()
            .is_err());
        let overfull = FaultSpec {
            crash_prob: 0.5,
            timeout_prob: 0.4,
            nan_prob: 0.2,
        };
        assert!(overfull.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let spec = FaultSpec::none().with_crashes(0.25).with_nan_metrics(0.05);
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
