#![warn(missing_docs)]

//! # spa-sim — the simulation substrate for SPA's experiments
//!
//! The SPA paper runs its evaluation on gem5 v22.1 (Ruby memory system)
//! simulating the multicore x86 machine of its Table 2, executing PARSEC
//! benchmarks with *variability injection*: a uniform random 0–4 cycle
//! latency added to L2-miss DRAM accesses (§5.2, after Alameldeen &
//! Wood). This crate is a from-scratch stand-in with the same essential
//! behaviour:
//!
//! * the Table 2 system — 4 cores, private L1 I/D (32 KB, 2/8-way,
//!   2-cycle), a shared inclusive L2 (3 MB, 16-way, 16-cycle), 64 B
//!   blocks, MESI directory coherence, a crossbar with 16 B links, and
//!   90-cycle DRAM ([`config::SystemConfig`]);
//! * deterministic, seeded executions: a `(config, benchmark, seed)`
//!   triple always reproduces the identical run ([`machine::Machine`]),
//!   driven by an event-driven component scheduler that skips idle
//!   cores and runs uncontended cores ahead without heap round-trips
//!   ([`sched`]);
//! * emergent variability: the injected DRAM jitter perturbs lock
//!   acquisition and pipeline-queue order across threads, so workload
//!   *assignment* — and therefore every metric — varies run to run
//!   ([`variability`]);
//! * synthetic multithreaded workloads modelled on the PARSEC
//!   benchmarks the paper uses ([`workload::parsec`]),
//! * per-execution metrics (runtime, IPC, MPKI, max load latency, …)
//!   plus optional STL traces/events ([`metrics::ExecutionResult`]),
//! * deterministic fault injection — seeded crash / hang / NaN-metric
//!   faults for exercising the fault-tolerant sampling pipeline
//!   ([`fault::FaultSpec`]),
//! * recorded performance signals (IPC, miss rates, occupancy over
//!   cycles) sampled at quantum boundaries ([`trace_recorder`]),
//! * pipeline stages adapting the machine to `spa-core`'s staged
//!   sampling abstraction — scalar metrics or per-trace STL verdicts
//!   ([`pipeline`]),
//! * a batch-of-machines population engine that fans independent seeds
//!   across a worker pool with byte-identical, seed-ordered output
//!   ([`batch`]), and
//! * the end-to-end trace-to-verdict property check shared by the CLI
//!   and server ([`check`]).
//!
//! # Example
//!
//! ```
//! use spa_sim::config::SystemConfig;
//! use spa_sim::machine::Machine;
//! use spa_sim::workload::parsec::Benchmark;
//!
//! # fn main() -> Result<(), spa_sim::SimError> {
//! let spec = Benchmark::Ferret.workload_scaled(0.25);
//! let machine = Machine::new(SystemConfig::table2(), &spec)?;
//! let run = machine.run(42)?;
//! assert!(run.metrics.runtime_cycles > 0);
//! // Same seed ⇒ identical execution.
//! let rerun = machine.run(42)?;
//! assert_eq!(run.metrics, rerun.metrics);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod branch;
pub mod cache;
pub mod check;
pub mod coherence;
pub mod config;
pub mod dram;
pub mod fault;
pub mod interconnect;
pub mod machine;
pub mod memhier;
pub mod metrics;
pub mod pipeline;
pub mod rng;
pub mod runner;
pub mod sched;
pub mod sync;
pub mod tlb;
pub mod trace_recorder;
pub mod variability;
pub mod workload;

mod error;
mod interp;
mod quantum;

pub use error::SimError;

/// Convenience alias used by fallible functions in this crate.
pub type Result<T> = std::result::Result<T, SimError>;
