//! Deterministic random-number streams.
//!
//! §5.2 of the paper: "Each execution itself is deterministic, with the
//! sequence of random numbers determined by a seed that we input." This
//! module wraps ChaCha8 (fast, portable, stability-guaranteed across
//! platforms and releases — unlike `StdRng`) and derives independent
//! streams for independent purposes so adding a consumer never perturbs
//! the numbers another consumer sees.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Purpose tag for an RNG stream; each purpose gets numbers independent
/// of every other purpose under the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// DRAM latency jitter (the paper's variability injection).
    DramJitter,
    /// OS-noise model (the "real machine" population of Fig. 1).
    OsNoise,
    /// Workload structure generation. NOTE: workload streams are seeded
    /// by a *fixed* workload key, not the execution seed, so the program
    /// is identical across runs and only injected variability differs —
    /// exactly the paper's §5.2 experimental discipline.
    Workload,
    /// Fault injection ([`crate::fault::FaultSpec`]): whether an
    /// execution crashes, hangs, or emits a garbage metric. A separate
    /// stream so enabling faults never perturbs the jitter/noise numbers
    /// of executions that survive.
    FaultInjection,
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::DramJitter => 0x9e37_79b9_7f4a_7c15,
            Stream::OsNoise => 0xbf58_476d_1ce4_e5b9,
            Stream::Workload => 0x94d0_49bb_1331_11eb,
            Stream::FaultInjection => 0xd6e8_feb8_6659_fd93,
        }
    }
}

/// A deterministic RNG bound to a `(seed, stream, lane)` triple.
///
/// `lane` separates per-thread or per-component streams within one
/// purpose (e.g. one workload lane per simulated thread).
///
/// # Examples
///
/// ```
/// use spa_sim::rng::{SimRng, Stream};
/// let mut a = SimRng::new(7, Stream::DramJitter, 0);
/// let mut b = SimRng::new(7, Stream::DramJitter, 0);
/// assert_eq!(a.uniform_u64(0, 4), b.uniform_u64(0, 4));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates the RNG for `(seed, stream, lane)`.
    pub fn new(seed: u64, stream: Stream, lane: u64) -> Self {
        // SplitMix-style mixing of the three keys into a 32-byte seed.
        let mut state = seed
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .wrapping_add(stream.tag())
            .wrapping_add(lane.wrapping_mul(0xc4ce_b9fe_1a85_ec53));
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            state ^= state >> 30;
            state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            state ^= state >> 27;
            state = state.wrapping_mul(0x94d0_49bb_1331_11eb);
            state ^= state >> 31;
            chunk.copy_from_slice(&state.to_le_bytes());
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        }
        Self {
            inner: ChaCha8Rng::from_seed(bytes),
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Geometric-ish "burst length": 1 + number of successes before the
    /// first failure at probability `p` (capped to avoid pathologies).
    pub fn burst(&mut self, p: f64, cap: u64) -> u64 {
        let mut len = 1;
        while len < cap && self.chance(p) {
            len += 1;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_stream() {
        let mut a = SimRng::new(1, Stream::Workload, 2);
        let mut b = SimRng::new(1, Stream::Workload, 2);
        let xs: Vec<u64> = (0..32).map(|_| a.uniform_u64(0, 1000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.uniform_u64(0, 1000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_lane_different_stream() {
        let mut a = SimRng::new(1, Stream::Workload, 0);
        let mut b = SimRng::new(1, Stream::Workload, 1);
        let xs: Vec<u64> = (0..32).map(|_| a.uniform_u64(0, u64::MAX)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.uniform_u64(0, u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_purpose_different_stream() {
        let mut a = SimRng::new(1, Stream::DramJitter, 0);
        let mut b = SimRng::new(1, Stream::OsNoise, 0);
        let xs: Vec<u64> = (0..32).map(|_| a.uniform_u64(0, u64::MAX)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.uniform_u64(0, u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_range_inclusive() {
        let mut r = SimRng::new(3, Stream::DramJitter, 0);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.uniform_u64(0, 4);
            assert!(v <= 4);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=4 should appear");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5, Stream::OsNoise, 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn burst_respects_cap() {
        let mut r = SimRng::new(5, Stream::OsNoise, 0);
        for _ in 0..100 {
            let b = r.burst(0.99, 10);
            assert!((1..=10).contains(&b));
        }
        assert_eq!(r.burst(0.0, 10), 1);
    }
}
