//! The per-core interpreter and the shared machine context, decomposed
//! out of the old `machine.rs` monolith.
//!
//! [`CoreInterpreter`] owns everything private to one core — thread
//! state and branch predictor — and implements
//! [`Component`](crate::sched::Component): one `tick` runs one
//! scheduling quantum (OS-event delivery, then up to
//! [`QUANTUM`] cycles of ops) and returns the core's next event time,
//! or `None` when the thread parked on a sync primitive or finished.
//!
//! [`MachineCtx`] owns everything shared: the memory hierarchy, the
//! variability state, sync primitives, pool cursors, and the trace
//! buffers. Sync primitives act as wake sources — a tick that releases
//! a lock, fills a barrier, or moves a queue buffers the resulting
//! [`Wake`]s in the context, and the scheduler drains them into the
//! heap in production order ([`WakeSink`]).
//!
//! Everything here is a line-for-line behavioural port of the old
//! quantum loop (kept verbatim in `crate::quantum` as the differential
//! oracle); the only intentional differences are mechanical speed-ups
//! that cannot change observable state: the per-item op slice is
//! resolved once per quantum instead of per op, the code footprint is
//! hoisted out of the fetch path, and the run-wide instruction total is
//! maintained incrementally instead of summed over cores at every
//! trace point.

use crate::branch::BranchPredictor;
use crate::config::SystemConfig;
use crate::memhier::MemoryHierarchy;
use crate::sched::{Component, ComponentId, WakeSink};
use crate::sync::{Barrier, BoundedQueue, Lock, PopResult, PushResult, Wake};
use crate::trace_recorder::TraceRecorder;
use crate::variability::VariabilityState;
use crate::workload::{Op, PInstr, WorkloadSpec};

/// Cycles a core may run ahead before yielding to the event heap.
pub(crate) const QUANTUM: u64 = 400;
/// Fixed cost of an atomic read-modify-write beyond its store.
pub(crate) const RMW_COST: u64 = 3;
/// Fixed cost of queue bookkeeping per push/pop.
pub(crate) const QUEUE_COST: u64 = 4;
/// Address of lock line `i`: `LOCK_BASE + 64·i`.
pub(crate) const LOCK_BASE: u64 = 0x7000_0000;
/// Base of the instruction address space.
pub(crate) const CODE_BASE: u64 = 0x0040_0000;
/// Counter: STL events discarded because a traced run hit the
/// configured event cap (bumped once per affected run with the drop
/// total, never per event).
pub(crate) const EVENTS_DROPPED_COUNTER: &str = "sim.trace.events_dropped";

/// Park state of a thread blocked on a sync primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Parked {
    /// Running or runnable.
    No,
    /// On wake, the blocking instruction has completed: advance.
    AdvanceOnWake,
    /// On wake, re-execute the blocking instruction (queue pops).
    RetryOnWake,
}

/// Architectural state of one thread.
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub(crate) pc: usize,
    pub(crate) time: u64,
    pub(crate) item: u64,
    pub(crate) in_item: Option<usize>,
    pub(crate) parked: Parked,
    pub(crate) done: bool,
    pub(crate) instructions: u64,
    pub(crate) op_counter: u64,
    pub(crate) mispredicts: u64,
}

/// What a single interpreter step decided.
enum Step {
    Continue,
    Blocked,
    Finished,
}

/// Shared machine state a core ticks against: memory hierarchy,
/// variability, sync primitives, and trace buffers.
pub(crate) struct MachineCtx<'w> {
    pub(crate) config: SystemConfig,
    pub(crate) workload: &'w WorkloadSpec,
    pub(crate) hier: MemoryHierarchy,
    pub(crate) vstate: VariabilityState,
    pub(crate) locks: Vec<Lock>,
    pub(crate) barriers: Vec<Barrier>,
    pub(crate) queues: Vec<BoundedQueue>,
    pub(crate) queue_producers_left: Vec<u32>,
    pub(crate) pool_cursors: Vec<u64>,
    pub(crate) done_count: usize,
    /// Running total of committed instructions across all cores, kept
    /// incrementally so trace points are O(1) instead of O(cores).
    pub(crate) instructions_total: u64,
    /// Wakes produced during the current tick, drained by the
    /// scheduler in production order before the tick's own yield.
    pub(crate) wakes: Vec<Wake>,
    /// `workload.code_bytes.max(64)`, hoisted out of the fetch path.
    pub(crate) code_bytes: u64,
    // Trace collection (only when config.collect_trace).
    pub(crate) events: Vec<(u64, &'static str)>,
    pub(crate) dropped_events: u64,
    /// `(time, thread, active-count)` — per-thread times are monotone;
    /// the global order is not (thread-local clocks run ahead).
    pub(crate) active_samples: Vec<(u64, u32, u32)>,
    pub(crate) active: u32,
    pub(crate) recorder: Option<TraceRecorder>,
}

impl<'w> MachineCtx<'w> {
    pub(crate) fn new(
        config: SystemConfig,
        workload: &'w WorkloadSpec,
        vstate: VariabilityState,
    ) -> Self {
        Self {
            config,
            workload,
            hier: MemoryHierarchy::new(config),
            vstate,
            locks: (0..workload.locks).map(|_| Lock::new(8)).collect(),
            barriers: workload
                .barriers
                .iter()
                .map(|&p| Barrier::new(p, 10))
                .collect(),
            queues: workload
                .queues
                .iter()
                .map(|q| BoundedQueue::new(q.capacity as usize, 6))
                .collect(),
            queue_producers_left: workload.queues.iter().map(|q| q.producers).collect(),
            pool_cursors: workload.pools.iter().map(|p| p.start).collect(),
            done_count: 0,
            instructions_total: 0,
            wakes: Vec::new(),
            code_bytes: workload.code_bytes.max(64),
            events: Vec::new(),
            dropped_events: 0,
            active_samples: Vec::new(),
            active: config.cores,
            recorder: config
                .collect_trace
                .then(|| TraceRecorder::new(config.cores)),
        }
    }

    pub(crate) fn record_event(&mut self, name: &'static str, at: u64) {
        if !self.config.collect_trace {
            return;
        }
        if self.events.len() < self.config.event_cap {
            self.events.push((at, name));
        } else {
            // Past the cap, events used to vanish silently; count them
            // so truncated traces are visible in the result and obs.
            self.dropped_events += 1;
        }
    }

    pub(crate) fn record_active(&mut self, tid: usize, at: u64, delta: i32) {
        let next = self.active as i32 + delta;
        debug_assert!(
            next >= 0,
            "active-thread count underflow (thread {tid}, delta {delta})"
        );
        self.active = next.max(0) as u32;
        if self.config.collect_trace {
            self.active_samples.push((at, tid as u32, self.active));
        }
    }

    /// Samples the recorder's performance signals after a core's
    /// quantum ends (so every quantum produces at most one sample per
    /// core, at that core's current time).
    pub(crate) fn record_trace_point(&mut self, at: u64) {
        let instructions = self.instructions_total;
        let l1d_misses = self.hier.l1d_misses();
        let l1d_accesses = self.hier.l1d_accesses();
        let l2_misses = self.hier.l2_misses();
        let l2_accesses = self.hier.l2_accesses();
        let active = self.active;
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                at,
                instructions,
                l1d_misses,
                l1d_accesses,
                l2_misses,
                l2_accesses,
                active,
            );
        }
    }
}

impl WakeSink for MachineCtx<'_> {
    fn drain_wakes(&mut self, schedule: &mut dyn FnMut(ComponentId, u64)) {
        for wake in self.wakes.drain(..) {
            schedule(wake.thread, wake.at);
        }
    }
}

/// One core: the interpreter over its thread's program, plus the
/// core-private branch predictor.
#[derive(Debug)]
pub(crate) struct CoreInterpreter {
    tid: u32,
    pub(crate) thread: ThreadState,
    predictor: BranchPredictor,
}

impl CoreInterpreter {
    /// A core for thread `tid`, runnable from `start`.
    pub(crate) fn new(tid: u32, start: u64) -> Self {
        Self {
            tid,
            thread: ThreadState {
                pc: 0,
                time: start,
                item: 0,
                in_item: None,
                parked: Parked::No,
                done: false,
                instructions: 0,
                op_counter: 0,
                mispredicts: 0,
            },
            predictor: BranchPredictor::new(12),
        }
    }

    /// Delivers any pending OS events (timer interrupts, migrations) to
    /// this core at its current time.
    fn deliver_os_events(&mut self, ctx: &mut MachineCtx<'_>) {
        use crate::variability::OsEvent;
        let now = self.thread.time;
        while let Some(event) = ctx.vstate.os_event(self.tid, now) {
            match event {
                OsEvent::TimerInterrupt { cycles } => {
                    self.thread.time += cycles;
                    self.kernel_activity(ctx, 16);
                }
                OsEvent::Migration { cycles } => {
                    // The thread lands on a cold core: direct switch cost
                    // plus flushed private caches and predictor state.
                    self.thread.time += cycles;
                    ctx.hier.flush_core(self.tid);
                    self.predictor = BranchPredictor::new(12);
                    self.kernel_activity(ctx, 64);
                    ctx.record_event("migration", now);
                }
            }
        }
    }

    /// Kernel work on this core touches kernel cache lines, displacing
    /// application state in the shared L2 exactly as a full-system
    /// simulation would.
    fn kernel_activity(&mut self, ctx: &mut MachineCtx<'_>, lines: usize) {
        for _ in 0..lines {
            let block = ctx.vstate.kernel_block();
            let now = self.thread.time;
            let out = ctx
                .hier
                .data_access(self.tid, block * 64, false, now, &mut ctx.vstate);
            self.thread.time += out.latency;
        }
    }

    /// Runs one scheduling quantum. Returns the core's next event time
    /// (a yield back to the scheduler), or `None` when the thread
    /// blocked or finished.
    fn run_quantum(&mut self, ctx: &mut MachineCtx<'_>) -> Option<u64> {
        self.deliver_os_events(ctx);
        let quantum_end = self.thread.time + QUANTUM;
        let w = ctx.workload;
        let tid = self.tid as usize;
        loop {
            if self.thread.time >= quantum_end {
                return Some(self.thread.time);
            }
            // Inside an item: run its ops back to back. The op slice is
            // resolved once here rather than once per op; `in_item` is
            // written back only when control leaves the loop.
            if let Some(start) = self.thread.in_item {
                let table = match w.programs[tid][self.thread.pc] {
                    PInstr::RunItem { table } => table as usize,
                    _ => unreachable!("in_item only set while at a RunItem instruction"),
                };
                let ops = &w.tables[table][self.thread.item as usize].ops;
                let mut pos = start;
                loop {
                    if pos >= ops.len() {
                        self.thread.in_item = None;
                        self.thread.pc += 1;
                        break;
                    }
                    let op = ops[pos];
                    pos += 1;
                    self.exec_op(op, ctx);
                    if self.thread.time >= quantum_end {
                        self.thread.in_item = Some(pos);
                        return Some(self.thread.time);
                    }
                }
                continue;
            }
            match self.instr_step(ctx) {
                Step::Continue => {}
                Step::Blocked => {
                    ctx.record_active(tid, self.thread.time, -1);
                    return None;
                }
                Step::Finished => {
                    self.thread.done = true;
                    ctx.done_count += 1;
                    ctx.record_active(tid, self.thread.time, -1);
                    return None;
                }
            }
        }
    }

    /// Executes one program instruction (ops inside items take the fast
    /// path in [`Self::run_quantum`] instead).
    fn instr_step(&mut self, ctx: &mut MachineCtx<'_>) -> Step {
        let tid = self.tid as usize;
        let instr = ctx.workload.programs[tid][self.thread.pc];
        match instr {
            PInstr::Basic(op) => {
                self.exec_op(op, ctx);
                self.thread.pc += 1;
                Step::Continue
            }
            PInstr::LockAcquire(l) => {
                // The lock line bounces to this core (store semantics).
                let now = self.thread.time;
                let addr = LOCK_BASE + 64 * l as u64;
                let lat = ctx
                    .hier
                    .data_access(self.tid, addr, true, now, &mut ctx.vstate)
                    .latency;
                self.thread.time += lat + RMW_COST;
                let now = self.thread.time;
                if ctx.locks[l as usize].acquire(self.tid, now).is_none() {
                    self.thread.pc += 1;
                    Step::Continue
                } else {
                    ctx.record_event("lock_contention", now);
                    self.thread.parked = Parked::AdvanceOnWake;
                    Step::Blocked
                }
            }
            PInstr::LockRelease(l) => {
                let now = self.thread.time;
                let addr = LOCK_BASE + 64 * l as u64;
                let lat = ctx
                    .hier
                    .data_access(self.tid, addr, true, now, &mut ctx.vstate)
                    .latency;
                self.thread.time += lat;
                let now = self.thread.time;
                if let Some(wake) = ctx.locks[l as usize].release(self.tid, now) {
                    ctx.wakes.push(wake);
                }
                self.thread.pc += 1;
                Step::Continue
            }
            PInstr::Barrier(b) => {
                let now = self.thread.time;
                match ctx.barriers[b as usize].arrive(self.tid, now) {
                    None => {
                        self.thread.parked = Parked::AdvanceOnWake;
                        Step::Blocked
                    }
                    Some(wakes) => {
                        for wake in wakes {
                            if wake.thread == self.tid {
                                self.thread.time = wake.at;
                            } else {
                                ctx.wakes.push(wake);
                            }
                        }
                        self.thread.pc += 1;
                        Step::Continue
                    }
                }
            }
            PInstr::PoolPop {
                pool,
                jump_if_empty,
            } => {
                // Atomic fetch-and-increment on the pool counter line.
                let spec = ctx.workload.pools[pool as usize];
                let now = self.thread.time;
                let lat = ctx
                    .hier
                    .data_access(self.tid, spec.counter_addr, true, now, &mut ctx.vstate)
                    .latency;
                self.thread.time += lat + RMW_COST;
                let cursor = &mut ctx.pool_cursors[pool as usize];
                if *cursor < spec.end {
                    self.thread.item = *cursor;
                    *cursor += 1;
                    self.thread.pc += 1;
                } else {
                    self.thread.pc = jump_if_empty as usize;
                }
                Step::Continue
            }
            PInstr::RunItem { .. } => {
                self.thread.in_item = Some(0);
                Step::Continue
            }
            PInstr::QueuePush(q) => {
                let now = self.thread.time;
                let item = self.thread.item;
                match ctx.queues[q as usize].push(self.tid, item, now) {
                    PushResult::Stored(wake) => {
                        if let Some(w) = wake {
                            ctx.wakes.push(w);
                        }
                        self.thread.time += QUEUE_COST;
                        self.thread.pc += 1;
                        Step::Continue
                    }
                    PushResult::Blocked => {
                        self.thread.parked = Parked::AdvanceOnWake;
                        Step::Blocked
                    }
                }
            }
            PInstr::QueuePop {
                queue,
                jump_if_closed,
            } => {
                let now = self.thread.time;
                match ctx.queues[queue as usize].pop(self.tid, now) {
                    PopResult::Item(item) => {
                        self.thread.item = item;
                        self.thread.time += QUEUE_COST;
                        // Space freed: a parked producer may proceed.
                        if let Some(w) = ctx.queues[queue as usize].admit_parked_producer(now) {
                            ctx.wakes.push(w);
                        }
                        self.thread.pc += 1;
                        Step::Continue
                    }
                    PopResult::Blocked => {
                        self.thread.parked = Parked::RetryOnWake;
                        Step::Blocked
                    }
                    PopResult::Closed => {
                        self.thread.pc = jump_if_closed as usize;
                        Step::Continue
                    }
                }
            }
            PInstr::CloseQueue(q) => {
                let left = &mut ctx.queue_producers_left[q as usize];
                *left = left.saturating_sub(1);
                if *left == 0 {
                    let now = self.thread.time;
                    let wakes = ctx.queues[q as usize].close(now);
                    ctx.wakes.extend(wakes);
                }
                self.thread.pc += 1;
                Step::Continue
            }
            PInstr::SetItem(v) => {
                self.thread.item = v;
                self.thread.pc += 1;
                Step::Continue
            }
            PInstr::Jump(t) => {
                // Jumps cost one cycle so zero-progress loops cannot hang
                // the scheduler.
                self.thread.time += 1;
                self.thread.pc = t as usize;
                Step::Continue
            }
            PInstr::End => Step::Finished,
        }
    }

    fn exec_op(&mut self, op: Op, ctx: &mut MachineCtx<'_>) {
        // Instruction fetch: stride through the benchmark's code
        // footprint; only misses cost cycles.
        self.thread.op_counter += 1;
        let fetch_addr = CODE_BASE + (self.thread.op_counter * 16) % ctx.code_bytes;
        let now = self.thread.time;
        let fetch = ctx
            .hier
            .inst_fetch(self.tid, fetch_addr, now, &mut ctx.vstate);
        self.thread.time += fetch.latency;
        let instructions = op.instructions();
        self.thread.instructions += instructions;
        ctx.instructions_total += instructions;

        match op {
            Op::Compute { cycles, .. } => {
                self.thread.time += cycles as u64;
            }
            Op::Load { addr } => self.data_op(addr, false, ctx),
            Op::Store { addr } => self.data_op(addr, true, ctx),
            Op::Branch { pc, taken } => {
                let correct = self.predictor.predict_and_train(pc as u64, taken);
                if !correct {
                    self.thread.time += ctx.config.mispredict_penalty;
                    self.thread.mispredicts += 1;
                    let at = self.thread.time;
                    ctx.record_event("branch_mispredict", at);
                }
            }
        }
    }

    fn data_op(&mut self, addr: u64, is_store: bool, ctx: &mut MachineCtx<'_>) {
        let now = self.thread.time;
        let out = ctx
            .hier
            .data_access(self.tid, addr, is_store, now, &mut ctx.vstate);
        self.thread.time += out.latency;
        if out.l2_miss {
            ctx.record_event("l2_miss", now);
        }
        if out.tlb_miss {
            ctx.record_event("tlb_miss", now);
        }
    }
}

impl<'w> Component<MachineCtx<'w>> for CoreInterpreter {
    fn next_tick(&self) -> Option<u64> {
        (!self.thread.done && self.thread.parked == Parked::No).then_some(self.thread.time)
    }

    fn tick(&mut self, now: u64, ctx: &mut MachineCtx<'w>) -> Option<u64> {
        if self.thread.done {
            // Defensive: finished cores never reschedule themselves and
            // wakes only target parked threads, so a stale entry would
            // indicate a sync-primitive bug; ignore it either way.
            return None;
        }
        if self.thread.parked != Parked::No {
            // Resume from a wake. Stamp the resume at the thread's
            // post-stall local time: the pop time `now` comes from the
            // *waker's* clock and may trail this thread's own park
            // sample. (The scheduler's monotone-pop debug_assert rules
            // out the heap itself going backwards.)
            let stall = ctx.vstate.preemption_stall();
            let t = &mut self.thread;
            t.time = t.time.max(now) + stall;
            if t.parked == Parked::AdvanceOnWake {
                t.pc += 1;
            }
            t.parked = Parked::No;
            let resumed = self.thread.time;
            ctx.record_active(self.tid as usize, resumed, 1);
        } else {
            self.thread.time = self.thread.time.max(now);
        }
        let next = self.run_quantum(ctx);
        if ctx.recorder.is_some() {
            ctx.record_trace_point(self.thread.time);
        }
        next
    }
}
