//! Simulated system configuration — the paper's Table 2.
//!
//! | Parameter | Table 2 value |
//! |-----------|---------------|
//! | cores | 4 out-of-order x86 cores |
//! | L1 I | 32 KB, 2-way, 2-cycle |
//! | L1 D | 32 KB, 8-way, 2-cycle |
//! | shared L2 | inclusive, 3 MB, 16-way, 16-cycle |
//! | block size | 64 B |
//! | memory | 3 GB, 90-cycle |
//! | coherence | MESI directory |
//! | on-chip network | crossbar with 16 B links (= flit size) |
//!
//! [`SystemConfig::table2`] reproduces those values; builders allow the
//! experiments' variations (e.g. §4.2's 512 kB → 1 MB L2 speedup study).

use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// Default cap on recorded STL events per traced run (see
/// [`SystemConfig::event_cap`]). This is the value that used to be a
/// hardcoded constant in `machine.rs`.
pub const DEFAULT_EVENT_CAP: usize = 20_000;

fn default_event_cap() -> usize {
    DEFAULT_EVENT_CAP
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access (hit) latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets for the given block size.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the geometry does not divide evenly;
    /// [`SystemConfig::validate`] rejects such configurations first.
    pub fn sets(&self, block_bytes: u64) -> u64 {
        self.capacity_bytes / (self.ways as u64 * block_bytes)
    }
}

/// Full system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (each runs one workload thread).
    pub cores: u32,
    /// Private L1 instruction cache.
    pub l1i: CacheConfig,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Shared, inclusive L2.
    pub l2: CacheConfig,
    /// Cache block (line) size in bytes.
    pub block_bytes: u64,
    /// DRAM access latency in cycles (before variability injection).
    pub dram_latency: u64,
    /// Crossbar link width in bytes (also the flit size).
    pub link_bytes: u64,
    /// Crossbar per-hop latency in cycles (header routing cost).
    pub link_latency: u64,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// TLB entries per core (fully associative, LRU).
    pub tlb_entries: u32,
    /// Page size in bytes (for TLB lookups).
    pub page_bytes: u64,
    /// TLB miss (walk) penalty in cycles.
    pub tlb_miss_penalty: u64,
    /// Nominal clock frequency in Hz, used only to convert cycle counts
    /// to the seconds the paper's runtime figures report.
    pub clock_hz: u64,
    /// Whether to collect an STL trace and event streams during the run
    /// (costs time and memory; population generation leaves it off).
    pub collect_trace: bool,
    /// Cap on recorded STL events per traced run; past it, further
    /// events are counted as dropped (`sim.trace.events_dropped`)
    /// instead of recorded. Long property-check traces can raise it
    /// instead of silently truncating at a magic constant. Must be
    /// nonzero; defaults to [`DEFAULT_EVENT_CAP`].
    #[serde(default = "default_event_cap")]
    pub event_cap: usize,
    /// Enables a next-line L2 prefetcher: every demand L2 miss also
    /// fetches the following block into the L2 in the background.
    /// Table 2 lists no prefetcher, so the default is off; the
    /// `ablation_prefetch` bench quantifies its effect.
    pub l2_next_line_prefetch: bool,
    /// Replaces the Table 2 crossbar with a 2-D mesh network
    /// (ablation alternative; default off).
    pub mesh_network: bool,
}

impl SystemConfig {
    /// The paper's Table 2 configuration.
    pub fn table2() -> Self {
        Self {
            cores: 4,
            l1i: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 2,
                latency: 2,
            },
            l1d: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 8,
                latency: 2,
            },
            l2: CacheConfig {
                capacity_bytes: 3 * 1024 * 1024,
                ways: 16,
                latency: 16,
            },
            block_bytes: 64,
            dram_latency: 90,
            link_bytes: 16,
            link_latency: 1,
            mispredict_penalty: 14,
            tlb_entries: 64,
            page_bytes: 4096,
            tlb_miss_penalty: 30,
            clock_hz: 2_000_000_000,
            collect_trace: false,
            event_cap: DEFAULT_EVENT_CAP,
            l2_next_line_prefetch: false,
            mesh_network: false,
        }
    }

    /// Table 2 with a different L2 capacity — the §4.2 cache-size
    /// speedup study uses 512 kB (base) and 1 MB (improved).
    pub fn with_l2_capacity(mut self, bytes: u64) -> Self {
        self.l2.capacity_bytes = bytes;
        self
    }

    /// Enables STL trace/event collection.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Replaces the cap on recorded STL events per traced run.
    pub fn with_event_cap(mut self, cap: usize) -> Self {
        self.event_cap = cap;
        self
    }

    /// Enables the next-line L2 prefetcher.
    pub fn with_prefetch(mut self) -> Self {
        self.l2_next_line_prefetch = true;
        self
    }

    /// Replaces the crossbar with the 2-D mesh network.
    pub fn with_mesh(mut self) -> Self {
        self.mesh_network = true;
        self
    }

    /// Checks structural invariants (nonzero geometry, divisibility).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 {
            return Err(SimError::InvalidConfig {
                field: "cores",
                message: "need at least one core".into(),
            });
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(SimError::InvalidConfig {
                field: "block_bytes",
                message: format!("{} is not a power of two", self.block_bytes),
            });
        }
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            if c.ways == 0 {
                return Err(SimError::InvalidConfig {
                    field: name,
                    message: "zero ways".into(),
                });
            }
            let way_bytes = c.ways as u64 * self.block_bytes;
            if c.capacity_bytes == 0 || c.capacity_bytes % way_bytes != 0 {
                return Err(SimError::InvalidConfig {
                    field: name,
                    message: format!(
                        "capacity {} not divisible into {}-way sets of {}-byte blocks",
                        c.capacity_bytes, c.ways, self.block_bytes
                    ),
                });
            }
            // Note: set counts need not be powers of two (Table 2's 3 MB
            // 16-way L2 has 3072 sets); indexing uses modulo arithmetic.
        }
        if self.link_bytes == 0 || self.page_bytes == 0 || !self.page_bytes.is_power_of_two() {
            return Err(SimError::InvalidConfig {
                field: "link_bytes/page_bytes",
                message: "must be nonzero (page size a power of two)".into(),
            });
        }
        if self.clock_hz == 0 {
            return Err(SimError::InvalidConfig {
                field: "clock_hz",
                message: "must be nonzero".into(),
            });
        }
        if self.event_cap == 0 {
            return Err(SimError::InvalidConfig {
                field: "event_cap",
                message: "must be nonzero (raise it for long traces instead)".into(),
            });
        }
        Ok(())
    }

    /// Cycles a block transfer occupies a crossbar link:
    /// `ceil(block / link) + header`.
    pub fn block_transfer_cycles(&self) -> u64 {
        self.block_bytes.div_ceil(self.link_bytes) + self.link_latency
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = SystemConfig::table2();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1i.capacity_bytes, 32 * 1024);
        assert_eq!(c.l1i.ways, 2);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l1d.latency, 2);
        assert_eq!(c.l2.capacity_bytes, 3 * 1024 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.latency, 16);
        assert_eq!(c.block_bytes, 64);
        assert_eq!(c.dram_latency, 90);
        assert_eq!(c.link_bytes, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn set_counts() {
        let c = SystemConfig::table2();
        // 32KB / (8 × 64B) = 64 sets.
        assert_eq!(c.l1d.sets(c.block_bytes), 64);
        // 32KB / (2 × 64B) = 256 sets.
        assert_eq!(c.l1i.sets(c.block_bytes), 256);
        // 3MB / (16 × 64B) = 3072 sets.
        assert_eq!(c.l2.sets(c.block_bytes), 3072);
    }

    #[test]
    fn l2_variants_for_speedup_study() {
        let base = SystemConfig::table2().with_l2_capacity(512 * 1024);
        let improved = SystemConfig::table2().with_l2_capacity(1024 * 1024);
        assert!(base.validate().is_ok());
        assert!(improved.validate().is_ok());
        assert_eq!(base.l2.sets(64), 512);
        assert_eq!(improved.l2.sets(64), 1024);
    }

    #[test]
    fn validation_rejects_broken_configs() {
        let mut c = SystemConfig::table2();
        c.cores = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::table2();
        c.block_bytes = 48;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::table2();
        c.l2.ways = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::table2();
        c.l1d.capacity_bytes = 1000; // not divisible
        assert!(c.validate().is_err());

        let mut c = SystemConfig::table2();
        c.clock_hz = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::table2();
        c.event_cap = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn event_cap_defaults_and_deserializes() {
        let c = SystemConfig::table2();
        assert_eq!(c.event_cap, DEFAULT_EVENT_CAP);
        assert_eq!(c.with_event_cap(50).event_cap, 50);
        // Configs serialized before the field existed still load, with
        // the historical cap.
        let mut v = serde_json::to_value(SystemConfig::table2()).unwrap();
        v.as_object_mut().unwrap().remove("event_cap");
        let old: SystemConfig = serde_json::from_value(v).unwrap();
        assert_eq!(old.event_cap, DEFAULT_EVENT_CAP);
        assert!(old.validate().is_ok());
    }

    #[test]
    fn non_power_of_two_set_count_accepted() {
        // 3 MB L2 with 16 ways gives 3072 sets, which is not a power of
        // two; modulo indexing handles it, so validate must accept.
        let c = SystemConfig::table2();
        assert_eq!(c.l2.sets(c.block_bytes), 3072);
        assert!(!3072_u64.is_power_of_two());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn transfer_and_time_helpers() {
        let c = SystemConfig::table2();
        // 64B / 16B = 4 flits + 1 header cycle.
        assert_eq!(c.block_transfer_cycles(), 5);
        assert!((c.cycles_to_seconds(2_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_trace_toggles_collection() {
        assert!(!SystemConfig::table2().collect_trace);
        assert!(SystemConfig::table2().with_trace().collect_trace);
    }

    #[test]
    fn prefetch_defaults_off() {
        assert!(!SystemConfig::table2().l2_next_line_prefetch);
        assert!(SystemConfig::table2().with_prefetch().l2_next_line_prefetch);
    }
}
