//! Variability injection (§2.1–2.2 / §5.2 of the paper).
//!
//! The simulator is deterministic, so variability must be injected. The
//! paper's gem5 experiments combine two sources:
//!
//! 1. the explicit Alameldeen & Wood injection — a uniform random 0–4
//!    cycles per L2-miss DRAM access (§5.2), and
//! 2. the *implicit* variability of full-system simulation: gem5 boots
//!    Ubuntu 18.04 (Table 2), so timer interrupts, kernel work, and
//!    scheduler decisions (preemption, thread migration onto a cold
//!    core — §2.1's "scheduling decisions") perturb every run.
//!
//! [`Variability::paper_default`] models both: DRAM jitter plus
//! OS timer interrupts with occasional migrations that flush the
//! migrating core's private caches. This reproduces the skewed,
//! heavy-tailed metric distributions the paper's figures depend on.
//! A pure-jitter model remains available for the injection-magnitude
//! ablation, and [`Variability::real_machine`] layers colocated-process
//! interference on top to produce Fig. 1's bi-modal population.
//!
//! All randomness derives from the execution seed, so every run is
//! exactly replicable.

use serde::{Deserialize, Serialize};

use crate::rng::{SimRng, Stream};

/// Which variability model to inject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Variability {
    /// No injection: every run is identical (tests, ablation baseline).
    None,
    /// Only the uniform 0–`max_cycles` DRAM jitter (the bare Alameldeen
    /// & Wood injection; ablations).
    DramJitter {
        /// Inclusive upper bound of the injected latency.
        max_cycles: u64,
    },
    /// DRAM jitter plus full-system OS effects: periodic timer
    /// interrupts with variable kernel work, occasionally migrating the
    /// thread (cold private caches and branch predictor).
    FullSystem {
        /// Inclusive DRAM jitter bound.
        max_cycles: u64,
        /// Mean cycles between timer interrupts per core.
        interrupt_period: u64,
        /// Maximum kernel time per interrupt (uniform from a quarter of
        /// this value).
        interrupt_cost: u64,
        /// Probability that an interrupt migrates the thread.
        migration_prob: f64,
        /// Direct context-switch cost of a migration (cache refills are
        /// charged naturally by the now-cold caches).
        migration_cost: u64,
        /// Probability that a run executes during sustained background
        /// kernel activity (page-cache writeback, kswapd), adding DRAM
        /// pressure for the whole run. This minority slow mode gives
        /// metric distributions the long right tail / secondary mode
        /// visible in the paper's Fig. 2.
        background_prob: f64,
        /// Extra DRAM latency bound per access while in that mode.
        background_latency: u64,
    },
    /// [`Variability::FullSystem`] plus run-level colocated-process
    /// interference (present in a random subset of runs), reproducing
    /// the multi-modal "real machine" populations of Fig. 1.
    OsNoise {
        /// Baseline jitter bound.
        max_cycles: u64,
        /// Probability that a given run suffers interference.
        interference_prob: f64,
        /// Extra DRAM latency per access while interfered (cycles).
        interference_latency: u64,
        /// Probability per synchronization wait of a long preemption.
        preemption_prob: f64,
        /// Length of such a stall in cycles.
        preemption_cycles: u64,
    },
}

/// An OS-level event delivered to one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsEvent {
    /// Kernel work on this core for the given cycles.
    TimerInterrupt {
        /// Stall duration.
        cycles: u64,
    },
    /// The thread is moved to a cold core: stall plus private-state
    /// flush (the machine clears L1s and the branch predictor).
    Migration {
        /// Direct stall duration.
        cycles: u64,
    },
}

impl Variability {
    /// The model matching the paper's §5.2 gem5 methodology: 0–4 cycle
    /// DRAM jitter within a full-system simulation.
    pub fn paper_default() -> Self {
        Variability::FullSystem {
            max_cycles: 4,
            interrupt_period: 90_000,
            interrupt_cost: 1_500,
            migration_prob: 0.17,
            migration_cost: 4_000,
            background_prob: 0.025,
            background_latency: 80,
        }
    }

    /// A "real machine" model tuned to give Fig. 1's shape: ~80 % of
    /// runs fast and tightly grouped, ~20 % pushed into a slow mode.
    pub fn real_machine() -> Self {
        Variability::OsNoise {
            max_cycles: 4,
            interference_prob: 0.2,
            interference_latency: 60,
            preemption_prob: 0.05,
            preemption_cycles: 60_000,
        }
    }

    /// Instantiates per-run state from the execution seed.
    pub fn state_for_run(self, seed: u64) -> VariabilityState {
        let mut rng = SimRng::new(seed, Stream::DramJitter, 0);
        let mut noise_rng = SimRng::new(seed, Stream::OsNoise, 0);
        let interfered = match self {
            Variability::OsNoise {
                interference_prob, ..
            } => noise_rng.chance(interference_prob),
            Variability::FullSystem {
                background_prob, ..
            } => noise_rng.chance(background_prob),
            _ => false,
        };
        // Pre-draw so the first jitter call is independent of whether
        // interference was sampled.
        let _ = rng.uniform_f64();
        let mut state = VariabilityState {
            model: self,
            jitter_rng: rng,
            noise_rng,
            interfered,
            next_interrupt: Vec::new(),
        };
        state.next_interrupt = (0..64)
            .map(|core| state.draw_interrupt_gap(core as u64))
            .collect();
        state
    }
}

/// Per-run variability state (one per execution, derived from the seed).
#[derive(Debug, Clone)]
pub struct VariabilityState {
    model: Variability,
    jitter_rng: SimRng,
    noise_rng: SimRng,
    interfered: bool,
    /// Per-core time of the next OS interrupt (`u64::MAX` when the model
    /// has none).
    next_interrupt: Vec<u64>,
}

impl VariabilityState {
    fn os_params(&self) -> Option<(u64, u64, f64, u64)> {
        match self.model {
            Variability::FullSystem {
                interrupt_period,
                interrupt_cost,
                migration_prob,
                migration_cost,
                ..
            } => Some((
                interrupt_period,
                interrupt_cost,
                migration_prob,
                migration_cost,
            )),
            // The real-machine model inherits the paper-default OS
            // behaviour.
            Variability::OsNoise { .. } => {
                let Variability::FullSystem {
                    interrupt_period,
                    interrupt_cost,
                    migration_prob,
                    migration_cost,
                    ..
                } = Variability::paper_default()
                else {
                    unreachable!("paper_default is FullSystem");
                };
                Some((
                    interrupt_period,
                    interrupt_cost,
                    migration_prob,
                    migration_cost,
                ))
            }
            _ => None,
        }
    }

    fn draw_interrupt_gap(&mut self, _core: u64) -> u64 {
        match self.os_params() {
            None => u64::MAX,
            Some((period, _, _, _)) => {
                // Uniform around the period: deterministic per seed.
                self.noise_rng.uniform_u64(period / 2, period * 3 / 2)
            }
        }
    }

    /// Extra cycles to add to the DRAM access starting now.
    pub fn dram_jitter(&mut self) -> u64 {
        match self.model {
            Variability::None => 0,
            Variability::DramJitter { max_cycles } => self.jitter_rng.uniform_u64(0, max_cycles),
            Variability::FullSystem {
                max_cycles,
                background_latency,
                ..
            } => {
                let base = self.jitter_rng.uniform_u64(0, max_cycles);
                if self.interfered {
                    base + self
                        .noise_rng
                        .uniform_u64(background_latency / 2, background_latency)
                } else {
                    base
                }
            }
            Variability::OsNoise {
                max_cycles,
                interference_latency,
                ..
            } => {
                let base = self.jitter_rng.uniform_u64(0, max_cycles);
                if self.interfered {
                    base + self
                        .noise_rng
                        .uniform_u64(interference_latency / 2, interference_latency)
                } else {
                    base
                }
            }
        }
    }

    /// Checks whether an OS event fires on `core` at or before `now`;
    /// if so, returns it and schedules the next one.
    pub fn os_event(&mut self, core: u32, now: u64) -> Option<OsEvent> {
        let (period, cost, mig_prob, mig_cost) = self.os_params()?;
        let next = self.next_interrupt.get(core as usize).copied()?;
        if now < next {
            return None;
        }
        let gap = self.noise_rng.uniform_u64(period / 2, period * 3 / 2);
        self.next_interrupt[core as usize] = now + gap.max(1);
        if self.noise_rng.chance(mig_prob) {
            Some(OsEvent::Migration {
                cycles: self.noise_rng.uniform_u64(mig_cost / 2, mig_cost),
            })
        } else {
            Some(OsEvent::TimerInterrupt {
                cycles: self.noise_rng.uniform_u64(cost / 4, cost),
            })
        }
    }

    /// Extra stall cycles when a thread blocks on synchronization
    /// (models being context-switched out; nonzero only for interfered
    /// OS-noise runs).
    pub fn preemption_stall(&mut self) -> u64 {
        match self.model {
            Variability::OsNoise {
                preemption_prob,
                preemption_cycles,
                ..
            } if self.interfered && self.noise_rng.chance(preemption_prob) => self
                .noise_rng
                .uniform_u64(preemption_cycles / 2, preemption_cycles),
            _ => 0,
        }
    }

    /// Whether this run drew colocated-process interference.
    pub fn interfered(&self) -> bool {
        self.interfered
    }

    /// A pseudo-random kernel cache line (block address) touched during
    /// OS activity; the kernel working set spans 2 MB.
    pub fn kernel_block(&mut self) -> u64 {
        const KERNEL_BASE_BLOCK: u64 = 0xC000_0000 / 64;
        KERNEL_BASE_BLOCK + self.noise_rng.uniform_u64(0, 2 * 1024 * 1024 / 64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let mut s = Variability::None.state_for_run(1);
        for _ in 0..50 {
            assert_eq!(s.dram_jitter(), 0);
            assert_eq!(s.preemption_stall(), 0);
        }
        assert!(s.os_event(0, 1_000_000_000).is_none());
        assert!(!s.interfered());
    }

    #[test]
    fn dram_jitter_bounded_and_varied() {
        let mut s = Variability::DramJitter { max_cycles: 4 }.state_for_run(7);
        let draws: Vec<u64> = (0..200).map(|_| s.dram_jitter()).collect();
        assert!(draws.iter().all(|&j| j <= 4));
        for v in 0..=4 {
            assert!(draws.contains(&v), "jitter value {v} never drawn");
        }
        // Pure jitter has no OS events.
        assert!(s.os_event(0, u64::MAX / 2).is_none());
    }

    #[test]
    fn same_seed_same_sequence() {
        let a: Vec<u64> = {
            let mut s = Variability::paper_default().state_for_run(42);
            (0..64).map(|_| s.dram_jitter()).collect()
        };
        let b: Vec<u64> = {
            let mut s = Variability::paper_default().state_for_run(42);
            (0..64).map(|_| s.dram_jitter()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut s = Variability::paper_default().state_for_run(43);
            (0..64).map(|_| s.dram_jitter()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn os_events_fire_and_reschedule() {
        let mut s = Variability::paper_default().state_for_run(5);
        // Nothing before the first scheduled interrupt.
        assert!(s.os_event(0, 0).is_none());
        // March time forward; we must see both event kinds eventually.
        let mut timers = 0;
        let mut migrations = 0;
        let mut now = 0u64;
        for _ in 0..300 {
            now += 200_000;
            while let Some(e) = s.os_event(0, now) {
                match e {
                    OsEvent::TimerInterrupt { cycles } => {
                        assert!((375..=1_500).contains(&cycles));
                        timers += 1;
                    }
                    OsEvent::Migration { cycles } => {
                        assert!((2_000..=4_000).contains(&cycles));
                        migrations += 1;
                    }
                }
            }
        }
        assert!(timers > 100, "timers: {timers}");
        assert!(migrations > 5, "migrations: {migrations}");
        // Roughly the configured 10 % migration mix.
        let frac = migrations as f64 / (timers + migrations) as f64;
        assert!((0.02..0.3).contains(&frac), "migration fraction {frac}");
    }

    #[test]
    fn cores_have_independent_schedules() {
        let s = Variability::paper_default().state_for_run(11);
        let a = s.next_interrupt[0];
        let b = s.next_interrupt[1];
        assert_ne!(a, b);
    }

    #[test]
    fn os_noise_interferes_in_expected_fraction_of_runs() {
        let model = Variability::real_machine();
        let interfered = (0..1000)
            .filter(|&seed| model.state_for_run(seed).interfered())
            .count();
        assert!(
            (120..=280).contains(&interfered),
            "interfered in {interfered}/1000 runs"
        );
    }

    #[test]
    fn interfered_runs_draw_heavier_jitter() {
        let model = Variability::real_machine();
        let clean_seed = (0..100)
            .find(|&s| !model.state_for_run(s).interfered())
            .unwrap();
        let noisy_seed = (0..100)
            .find(|&s| model.state_for_run(s).interfered())
            .unwrap();
        let clean_total: u64 = {
            let mut s = model.state_for_run(clean_seed);
            (0..100).map(|_| s.dram_jitter()).sum()
        };
        let noisy_total: u64 = {
            let mut s = model.state_for_run(noisy_seed);
            (0..100).map(|_| s.dram_jitter()).sum()
        };
        assert!(
            noisy_total > clean_total + 1000,
            "noisy {noisy_total} vs clean {clean_total}"
        );
    }

    #[test]
    fn real_machine_also_has_os_events() {
        let mut s = Variability::real_machine().state_for_run(3);
        let mut any = false;
        for step in 1..100u64 {
            if s.os_event(0, step * 150_000).is_some() {
                any = true;
                break;
            }
        }
        assert!(any, "OsNoise should inherit full-system interrupts");
    }
}
