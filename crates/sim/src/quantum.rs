//! The pre-refactor quantum-stepped execution loop, preserved verbatim.
//!
//! This is the old `machine.rs` run loop exactly as it existed before
//! the event-driven core landed (PR 4-style oracle retention): every
//! runnable core round-trips through the heap after each fixed
//! 400-cycle quantum, the interpreter re-resolves the current item per
//! op, and trace points re-sum instructions over all cores. It exists
//! for two callers only:
//!
//! * the seeded differential suite (`tests/event_differential.rs`),
//!   which asserts the event-driven core produces identical
//!   [`ExecutionResult`]s and serialized traces, and
//! * the `pr10_event_core` bench, which times the event-driven core
//!   against this loop after cross-checking equality.
//!
//! The only change from the historical text is that the hardcoded
//! `EVENT_CAP` now reads `config.event_cap` (both paths must share the
//! cap for the differential to be meaningful). Do not optimize this
//! module; it is the baseline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::branch::BranchPredictor;
use crate::interp::{CODE_BASE, EVENTS_DROPPED_COUNTER, LOCK_BASE, QUANTUM, QUEUE_COST, RMW_COST};
use crate::machine::Machine;
use crate::memhier::MemoryHierarchy;
use crate::metrics::{ExecutionMetrics, ExecutionResult};
use crate::sync::{Barrier, BoundedQueue, Lock, PopResult, PushResult, Wake};
use crate::trace_recorder::TraceRecorder;
use crate::variability::VariabilityState;
use crate::workload::{Op, PInstr};
use crate::{Result, SimError};

/// Runs one execution of `machine` with the legacy quantum-stepped
/// loop.
pub(crate) fn run(machine: &Machine<'_>, seed: u64) -> Result<ExecutionResult> {
    QuantumRun::new(machine, seed).execute()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Parked {
    /// Running or runnable.
    No,
    /// On wake, the blocking instruction has completed: advance.
    AdvanceOnWake,
    /// On wake, re-execute the blocking instruction (queue pops).
    RetryOnWake,
}

#[derive(Debug)]
struct ThreadState {
    pc: usize,
    time: u64,
    item: u64,
    in_item: Option<usize>,
    parked: Parked,
    done: bool,
    instructions: u64,
    op_counter: u64,
    mispredicts: u64,
}

/// What a single interpreter step decided.
enum Step {
    Continue,
    Blocked,
    Finished,
}

/// Mutable state of one legacy-loop execution.
struct QuantumRun<'m, 'w> {
    machine: &'m Machine<'w>,
    hier: MemoryHierarchy,
    vstate: VariabilityState,
    predictors: Vec<BranchPredictor>,
    locks: Vec<Lock>,
    barriers: Vec<Barrier>,
    queues: Vec<BoundedQueue>,
    queue_producers_left: Vec<u32>,
    pool_cursors: Vec<u64>,
    threads: Vec<ThreadState>,
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
    done_count: usize,
    seed: u64,
    // Trace collection (only when config.collect_trace).
    events: Vec<(u64, &'static str)>,
    dropped_events: u64,
    active_samples: Vec<(u64, u32, u32)>,
    active: u32,
    recorder: Option<TraceRecorder>,
}

impl<'m, 'w> QuantumRun<'m, 'w> {
    fn new(machine: &'m Machine<'w>, seed: u64) -> Self {
        let w = machine.workload;
        let cores = machine.config.cores as usize;
        let mut heap = BinaryHeap::new();
        let mut threads = Vec::with_capacity(cores);
        for tid in 0..cores {
            // Slight staggering models thread-spawn order.
            let start = tid as u64 * 20;
            heap.push(Reverse((start, tid as u64, tid as u32)));
            threads.push(ThreadState {
                pc: 0,
                time: start,
                item: 0,
                in_item: None,
                parked: Parked::No,
                done: false,
                instructions: 0,
                op_counter: 0,
                mispredicts: 0,
            });
        }
        Self {
            machine,
            hier: MemoryHierarchy::new(machine.config),
            vstate: machine.variability.state_for_run(seed),
            predictors: (0..cores).map(|_| BranchPredictor::new(12)).collect(),
            locks: (0..w.locks).map(|_| Lock::new(8)).collect(),
            barriers: w.barriers.iter().map(|&p| Barrier::new(p, 10)).collect(),
            queues: w
                .queues
                .iter()
                .map(|q| BoundedQueue::new(q.capacity as usize, 6))
                .collect(),
            queue_producers_left: w.queues.iter().map(|q| q.producers).collect(),
            pool_cursors: w.pools.iter().map(|p| p.start).collect(),
            threads,
            heap,
            seq: cores as u64,
            done_count: 0,
            seed,
            events: Vec::new(),
            dropped_events: 0,
            active_samples: Vec::new(),
            active: cores as u32,
            recorder: machine
                .config
                .collect_trace
                .then(|| TraceRecorder::new(machine.config.cores)),
        }
    }

    fn schedule(&mut self, tid: u32, at: u64) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, tid)));
    }

    fn schedule_wake(&mut self, wake: Wake) {
        self.schedule(wake.thread, wake.at);
    }

    fn record_event(&mut self, name: &'static str, at: u64) {
        if !self.machine.config.collect_trace {
            return;
        }
        if self.events.len() < self.machine.config.event_cap {
            self.events.push((at, name));
        } else {
            self.dropped_events += 1;
        }
    }

    fn record_active(&mut self, tid: usize, at: u64, delta: i32) {
        let next = self.active as i32 + delta;
        debug_assert!(
            next >= 0,
            "active-thread count underflow (thread {tid}, delta {delta})"
        );
        self.active = next.max(0) as u32;
        if self.machine.config.collect_trace {
            self.active_samples.push((at, tid as u32, self.active));
        }
    }

    fn record_trace_point(&mut self, tid: usize) {
        let at = self.threads[tid].time;
        let instructions = self.threads.iter().map(|t| t.instructions).sum();
        let l1d_misses = self.hier.l1d_misses();
        let l1d_accesses = self.hier.l1d_accesses();
        let l2_misses = self.hier.l2_misses();
        let l2_accesses = self.hier.l2_accesses();
        let active = self.active;
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                at,
                instructions,
                l1d_misses,
                l1d_accesses,
                l2_misses,
                l2_accesses,
                active,
            );
        }
    }

    fn execute(mut self) -> Result<ExecutionResult> {
        self.drive()?;
        Ok(self.finish())
    }

    fn drive(&mut self) -> Result<()> {
        while let Some(Reverse((at, _, tid))) = self.heap.pop() {
            let tid = tid as usize;
            if self.threads[tid].done {
                continue;
            }
            // Resume a parked thread.
            if self.threads[tid].parked != Parked::No {
                let stall = self.vstate.preemption_stall();
                let t = &mut self.threads[tid];
                t.time = t.time.max(at) + stall;
                if t.parked == Parked::AdvanceOnWake {
                    t.pc += 1;
                }
                t.parked = Parked::No;
                let resumed = self.threads[tid].time;
                self.record_active(tid, resumed, 1);
            } else {
                let t = &mut self.threads[tid];
                t.time = t.time.max(at);
            }
            self.run_quantum(tid)?;
            if self.recorder.is_some() {
                self.record_trace_point(tid);
            }
        }
        if self.done_count < self.threads.len() {
            let cycle = self.threads.iter().map(|t| t.time).max().unwrap_or(0);
            return Err(SimError::Deadlock { cycle });
        }
        Ok(())
    }

    fn deliver_os_events(&mut self, tid: usize) {
        use crate::variability::OsEvent;
        let now = self.threads[tid].time;
        while let Some(event) = self.vstate.os_event(tid as u32, now) {
            match event {
                OsEvent::TimerInterrupt { cycles } => {
                    self.threads[tid].time += cycles;
                    self.kernel_activity(tid, 16);
                }
                OsEvent::Migration { cycles } => {
                    self.threads[tid].time += cycles;
                    self.hier.flush_core(tid as u32);
                    self.predictors[tid] = BranchPredictor::new(12);
                    self.kernel_activity(tid, 64);
                    self.record_event("migration", now);
                }
            }
        }
    }

    fn kernel_activity(&mut self, tid: usize, lines: usize) {
        for _ in 0..lines {
            let block = self.vstate.kernel_block();
            let now = self.threads[tid].time;
            let out = self
                .hier
                .data_access(tid as u32, block * 64, false, now, &mut self.vstate);
            self.threads[tid].time += out.latency;
        }
    }

    fn run_quantum(&mut self, tid: usize) -> Result<()> {
        self.deliver_os_events(tid);
        let quantum_end = self.threads[tid].time + QUANTUM;
        loop {
            if self.threads[tid].time >= quantum_end {
                let at = self.threads[tid].time;
                self.schedule(tid as u32, at);
                return Ok(());
            }
            match self.step(tid)? {
                Step::Continue => {}
                Step::Blocked => {
                    self.record_active(tid, self.threads[tid].time, -1);
                    return Ok(());
                }
                Step::Finished => {
                    self.threads[tid].done = true;
                    self.done_count += 1;
                    self.record_active(tid, self.threads[tid].time, -1);
                    return Ok(());
                }
            }
        }
    }

    /// Executes one program instruction (or one op of the current item).
    fn step(&mut self, tid: usize) -> Result<Step> {
        // Inside an item: run its next op.
        if let Some(pos) = self.threads[tid].in_item {
            let table = match self.machine.workload.programs[tid][self.threads[tid].pc] {
                PInstr::RunItem { table } => table as usize,
                _ => unreachable!("in_item only set while at a RunItem instruction"),
            };
            let item = self.threads[tid].item as usize;
            let ops = &self.machine.workload.tables[table][item].ops;
            if pos < ops.len() {
                let op = ops[pos];
                self.threads[tid].in_item = Some(pos + 1);
                self.exec_op(tid, op);
                return Ok(Step::Continue);
            }
            self.threads[tid].in_item = None;
            self.threads[tid].pc += 1;
            return Ok(Step::Continue);
        }

        let pc = self.threads[tid].pc;
        let instr = self.machine.workload.programs[tid][pc];
        match instr {
            PInstr::Basic(op) => {
                self.exec_op(tid, op);
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::LockAcquire(l) => {
                // The lock line bounces to this core (store semantics).
                let now = self.threads[tid].time;
                let addr = LOCK_BASE + 64 * l as u64;
                let lat = self
                    .hier
                    .data_access(tid as u32, addr, true, now, &mut self.vstate)
                    .latency;
                let t = &mut self.threads[tid];
                t.time += lat + RMW_COST;
                let now = t.time;
                if self.locks[l as usize].acquire(tid as u32, now).is_none() {
                    self.threads[tid].pc += 1;
                    Ok(Step::Continue)
                } else {
                    self.record_event("lock_contention", now);
                    self.threads[tid].parked = Parked::AdvanceOnWake;
                    Ok(Step::Blocked)
                }
            }
            PInstr::LockRelease(l) => {
                let now = self.threads[tid].time;
                let addr = LOCK_BASE + 64 * l as u64;
                let lat = self
                    .hier
                    .data_access(tid as u32, addr, true, now, &mut self.vstate)
                    .latency;
                self.threads[tid].time += lat;
                let now = self.threads[tid].time;
                if let Some(wake) = self.locks[l as usize].release(tid as u32, now) {
                    self.schedule_wake(wake);
                }
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::Barrier(b) => {
                let now = self.threads[tid].time;
                match self.barriers[b as usize].arrive(tid as u32, now) {
                    None => {
                        self.threads[tid].parked = Parked::AdvanceOnWake;
                        Ok(Step::Blocked)
                    }
                    Some(wakes) => {
                        for wake in wakes {
                            if wake.thread as usize == tid {
                                self.threads[tid].time = wake.at;
                            } else {
                                self.schedule_wake(wake);
                            }
                        }
                        self.threads[tid].pc += 1;
                        Ok(Step::Continue)
                    }
                }
            }
            PInstr::PoolPop {
                pool,
                jump_if_empty,
            } => {
                // Atomic fetch-and-increment on the pool counter line.
                let spec = self.machine.workload.pools[pool as usize];
                let now = self.threads[tid].time;
                let lat = self
                    .hier
                    .data_access(tid as u32, spec.counter_addr, true, now, &mut self.vstate)
                    .latency;
                let t = &mut self.threads[tid];
                t.time += lat + RMW_COST;
                let cursor = &mut self.pool_cursors[pool as usize];
                if *cursor < spec.end {
                    self.threads[tid].item = *cursor;
                    *cursor += 1;
                    self.threads[tid].pc += 1;
                } else {
                    self.threads[tid].pc = jump_if_empty as usize;
                }
                Ok(Step::Continue)
            }
            PInstr::RunItem { .. } => {
                self.threads[tid].in_item = Some(0);
                Ok(Step::Continue)
            }
            PInstr::QueuePush(q) => {
                let now = self.threads[tid].time;
                let item = self.threads[tid].item;
                match self.queues[q as usize].push(tid as u32, item, now) {
                    PushResult::Stored(wake) => {
                        if let Some(w) = wake {
                            self.schedule_wake(w);
                        }
                        self.threads[tid].time += QUEUE_COST;
                        self.threads[tid].pc += 1;
                        Ok(Step::Continue)
                    }
                    PushResult::Blocked => {
                        self.threads[tid].parked = Parked::AdvanceOnWake;
                        Ok(Step::Blocked)
                    }
                }
            }
            PInstr::QueuePop {
                queue,
                jump_if_closed,
            } => {
                let now = self.threads[tid].time;
                match self.queues[queue as usize].pop(tid as u32, now) {
                    PopResult::Item(item) => {
                        self.threads[tid].item = item;
                        self.threads[tid].time += QUEUE_COST;
                        // Space freed: a parked producer may proceed.
                        if let Some(w) = self.queues[queue as usize].admit_parked_producer(now) {
                            self.schedule_wake(w);
                        }
                        self.threads[tid].pc += 1;
                        Ok(Step::Continue)
                    }
                    PopResult::Blocked => {
                        self.threads[tid].parked = Parked::RetryOnWake;
                        Ok(Step::Blocked)
                    }
                    PopResult::Closed => {
                        self.threads[tid].pc = jump_if_closed as usize;
                        Ok(Step::Continue)
                    }
                }
            }
            PInstr::CloseQueue(q) => {
                let left = &mut self.queue_producers_left[q as usize];
                *left = left.saturating_sub(1);
                if *left == 0 {
                    let now = self.threads[tid].time;
                    for wake in self.queues[q as usize].close(now) {
                        self.schedule_wake(wake);
                    }
                }
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::SetItem(v) => {
                self.threads[tid].item = v;
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::Jump(t) => {
                // Jumps cost one cycle so zero-progress loops cannot hang
                // the scheduler.
                self.threads[tid].time += 1;
                self.threads[tid].pc = t as usize;
                Ok(Step::Continue)
            }
            PInstr::End => Ok(Step::Finished),
        }
    }

    fn exec_op(&mut self, tid: usize, op: Op) {
        let core = tid as u32;
        // Instruction fetch: stride through the benchmark's code
        // footprint; only misses cost cycles.
        let t = &mut self.threads[tid];
        t.op_counter += 1;
        let code_bytes = self.machine.workload.code_bytes.max(64);
        let fetch_addr = CODE_BASE + (t.op_counter * 16) % code_bytes;
        let now = t.time;
        let fetch = self
            .hier
            .inst_fetch(core, fetch_addr, now, &mut self.vstate);
        let t = &mut self.threads[tid];
        t.time += fetch.latency;
        t.instructions += op.instructions();

        match op {
            Op::Compute { cycles, .. } => {
                self.threads[tid].time += cycles as u64;
            }
            Op::Load { addr } => {
                let now = self.threads[tid].time;
                let out = self
                    .hier
                    .data_access(core, addr, false, now, &mut self.vstate);
                self.threads[tid].time += out.latency;
                if out.l2_miss {
                    self.record_event("l2_miss", now);
                }
                if out.tlb_miss {
                    self.record_event("tlb_miss", now);
                }
            }
            Op::Store { addr } => {
                let now = self.threads[tid].time;
                let out = self
                    .hier
                    .data_access(core, addr, true, now, &mut self.vstate);
                self.threads[tid].time += out.latency;
                if out.l2_miss {
                    self.record_event("l2_miss", now);
                }
                if out.tlb_miss {
                    self.record_event("tlb_miss", now);
                }
            }
            Op::Branch { pc, taken } => {
                let correct = self.predictors[tid].predict_and_train(pc as u64, taken);
                if !correct {
                    let t = &mut self.threads[tid];
                    t.time += self.machine.config.mispredict_penalty;
                    t.mispredicts += 1;
                    let at = self.threads[tid].time;
                    self.record_event("branch_mispredict", at);
                }
            }
        }
    }

    fn finish(self) -> ExecutionResult {
        let config = &self.machine.config;
        let mut m = ExecutionMetrics {
            runtime_cycles: self.threads.iter().map(|t| t.time).max().unwrap_or(0),
            instructions: self.threads.iter().map(|t| t.instructions).sum(),
            l1d_misses: self.hier.l1d_misses(),
            l1d_accesses: self.hier.l1d_accesses(),
            l1i_misses: self.hier.l1i_misses(),
            l1i_accesses: self.hier.l1i_accesses(),
            l2_misses: self.hier.l2_misses(),
            l2_accesses: self.hier.l2_accesses(),
            max_load_latency: self.hier.max_load_latency(),
            avg_load_latency: self.hier.avg_load_latency(),
            branch_mispredicts: self.threads.iter().map(|t| t.mispredicts).sum(),
            tlb_misses: self.hier.tlb_misses(),
            lock_contentions: self.locks.iter().map(Lock::contended).sum(),
            invalidations: self.hier.invalidations(),
            dram_accesses: self.hier.dram_accesses(),
            jitter_cycles: self.hier.jitter_cycles(),
            ..ExecutionMetrics::default()
        };
        m.finalize(config.clock_hz);

        let stl_data = if config.collect_trace {
            Some(self.build_stl_data(&m))
        } else {
            None
        };
        if self.dropped_events > 0 {
            spa_obs::metrics::global()
                .counter(EVENTS_DROPPED_COUNTER)
                .add(self.dropped_events);
        }
        ExecutionResult {
            seed: self.seed,
            metrics: m,
            dropped_events: self.dropped_events,
            stl_data,
        }
    }

    fn build_stl_data(&self, m: &ExecutionMetrics) -> spa_stl::execution::ExecutionData {
        let mut data = spa_stl::execution::ExecutionData::new(m.runtime_cycles);
        for metric in crate::metrics::Metric::ALL {
            data.set_metric(metric.key(), metric.extract(m));
        }
        data.set_metric("avg_load_latency", m.avg_load_latency);
        data.set_metric("lock_contentions", m.lock_contentions as f64);
        // Standard streams exist even when empty so properties can ask
        // about events that happened zero times.
        for stream in [
            "tlb_miss",
            "l2_miss",
            "lock_contention",
            "branch_mispredict",
            "migration",
        ] {
            data.declare_stream(stream);
        }
        // Events, sorted by time (threads emit out of order).
        let mut events = self.events.clone();
        events.sort_unstable();
        for (at, name) in events {
            data.record_event(name, at).expect("events sorted by time");
        }
        // Active-thread signal plus a simple power proxy.
        let mut samples = self.active_samples.clone();
        samples.sort_unstable_by_key(|&(at, _, _)| at);
        let mut last_time = None;
        for (at, _tid, active) in samples {
            if last_time == Some(at) {
                continue; // keep strictly increasing times
            }
            last_time = Some(at);
            let trace = data.trace_mut();
            trace
                .push("active_threads", at, active as f64)
                .expect("times strictly increasing");
            trace
                .push("power", at, 8.0 + 23.0 * active as f64)
                .expect("times strictly increasing");
        }
        if last_time.is_none() {
            let trace = data.trace_mut();
            let n = self.machine.config.cores as f64;
            trace.push("active_threads", 0, n).expect("fresh signal");
            trace
                .push("power", 0, 8.0 + 23.0 * n)
                .expect("fresh signal");
        }
        // Performance signals (IPC, miss rates, occupancy) sampled at
        // quantum boundaries by the recorder.
        if let Some(recorder) = &self.recorder {
            recorder.write_into(data.trace_mut());
        }
        data
    }
}
