//! End-to-end property checking: the trace-to-verdict pipeline.
//!
//! This is the paper's full workflow as one call: run seeded traced
//! executions through [`MachineSource`] → [`StlEvaluator`], count how
//! many traces satisfy the STL property, and run the fixed-sample SMC
//! test (Algorithm 2) on the counts. Both the CLI's `spa check` and the
//! server's `property` job mode are thin wrappers over [`run_check`],
//! so the three entry points (library, CLI, server) cannot drift apart.
//! Each traced execution runs on the event-driven core
//! ([`crate::sched`]); long property-check traces that would overflow
//! the event budget can raise
//! [`SystemConfig::event_cap`](crate::config::SystemConfig::event_cap)
//! instead of silently truncating.
//!
//! # Examples
//!
//! ```
//! use spa_core::fault::RetryPolicy;
//! use spa_core::spa::Spa;
//! use spa_sim::check::run_check;
//! use spa_sim::config::SystemConfig;
//! use spa_sim::machine::Machine;
//! use spa_sim::pipeline::PropertySemantics;
//! use spa_sim::workload::parsec::Benchmark;
//! use spa_stl::parser::parse;
//!
//! # fn main() -> Result<(), spa_core::CoreError> {
//! let spec = Benchmark::Blackscholes.workload_scaled(0.2);
//! let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
//! let formula = parse("G[0,end] (occupancy >= 0)").unwrap();
//! let spa = Spa::builder().proportion(0.5).build()?;
//! let report = run_check(
//!     &machine,
//!     &formula,
//!     PropertySemantics::Boolean,
//!     &spa,
//!     0,
//!     None,
//!     &RetryPolicy::no_retry(),
//! )?;
//! assert_eq!(report.satisfied, report.evaluated); // trivially true property
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use spa_core::ci::ConfidenceInterval;
use spa_core::fault::{FailureCounts, RetryPolicy};
use spa_core::pipeline::Pipeline;
use spa_core::smc::FixedOutcome;
use spa_core::spa::{Direction, Spa};
use spa_core::CoreError;
use spa_stl::ast::Stl;

use crate::machine::Machine;
use crate::pipeline::{MachineSource, PropertySemantics, StlEvaluator};

/// The verdict of one end-to-end property check.
///
/// Serialization is deterministic given the inputs: field order is
/// fixed and every value is a pure function of `(machine, formula,
/// semantics, spa, seed_start, count)` — the CLI's byte-identity test
/// across `--threads` counts relies on this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyReport {
    /// Canonical rendering of the checked formula (the parsed AST's
    /// `Display`, not the user's original spelling).
    pub formula: String,
    /// Whether samples are robustness values rather than 0/1 outcomes.
    pub robustness: bool,
    /// Executions requested.
    pub requested: u64,
    /// Traces successfully evaluated (after retries).
    pub evaluated: u64,
    /// Traces satisfying the property (robustness `> 0` under
    /// robustness semantics).
    pub satisfied: u64,
    /// `satisfied / evaluated`.
    pub satisfaction_rate: f64,
    /// The fixed-sample SMC verdict on the satisfaction counts
    /// (Algorithm 2): the asserted direction, if any, and the exact
    /// Clopper–Pearson confidence achieved.
    pub outcome: FixedOutcome,
    /// Requested confidence level `C`.
    pub confidence: f64,
    /// Requested proportion `F`.
    pub proportion: f64,
    /// Confidence interval over the robustness samples (robustness
    /// semantics only).
    pub robustness_interval: Option<ConfidenceInterval>,
    /// Failure accounting from the fault-tolerant collection loop.
    pub failures: FailureCounts,
}

/// Runs the full trace-to-verdict pipeline: seeded traced executions,
/// per-trace STL evaluation, and the fixed-sample SMC test over the
/// outcomes.
///
/// `machine` must have trace collection enabled
/// ([`SystemConfig::with_trace`](crate::config::SystemConfig::with_trace)),
/// otherwise every execution fails evaluation and the check reports
/// [`CoreError::SamplingFailed`]. `count` defaults to the SPA driver's
/// minimum sample count (Eq. 8) when `None`.
///
/// # Errors
///
/// [`CoreError::SamplingFailed`] when no trace could be evaluated, or
/// an engine error from the SMC/CI computation.
pub fn run_check(
    machine: &Machine<'_>,
    formula: &Stl,
    semantics: PropertySemantics,
    spa: &Spa,
    seed_start: u64,
    count: Option<u64>,
    policy: &RetryPolicy,
) -> Result<PropertyReport, CoreError> {
    let pipeline = Pipeline::new(
        MachineSource::new(machine),
        StlEvaluator::new(formula.clone(), semantics),
    );
    let batch = spa.collect_samples_fallible(&pipeline, seed_start, count, policy);
    let evaluated = batch.samples.len() as u64;
    if evaluated == 0 {
        return Err(CoreError::SamplingFailed {
            requested: batch.requested,
            collected: 0,
        });
    }
    let satisfied = match semantics {
        PropertySemantics::Boolean => batch.samples.iter().filter(|&&v| v > 0.5).count(),
        PropertySemantics::Robustness => batch.samples.iter().filter(|&&v| v > 0.0).count(),
    } as u64;
    let outcome = spa.engine().run_counts(satisfied, evaluated)?;
    let robustness_interval = match semantics {
        PropertySemantics::Boolean => None,
        PropertySemantics::Robustness => {
            Some(spa.confidence_interval(&batch.samples, Direction::AtLeast)?)
        }
    };
    Ok(PropertyReport {
        formula: formula.to_string(),
        robustness: semantics == PropertySemantics::Robustness,
        requested: batch.requested,
        evaluated,
        satisfied,
        satisfaction_rate: satisfied as f64 / evaluated as f64,
        outcome,
        confidence: spa.engine().confidence_level(),
        proportion: spa.engine().proportion(),
        robustness_interval,
        failures: batch.failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::workload::parsec::Benchmark;
    use spa_core::clopper_pearson::Assertion;
    use spa_stl::parser::parse;

    fn setup() -> (crate::workload::WorkloadSpec, Spa) {
        let spec = Benchmark::Blackscholes.workload_scaled(0.2);
        let spa = Spa::builder()
            .confidence(0.9)
            .proportion(0.5)
            .build()
            .unwrap();
        (spec, spa)
    }

    #[test]
    fn trivially_true_property_asserts_positive() {
        let (spec, spa) = setup();
        let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
        let formula = parse("G[0,end] (occupancy >= 0)").unwrap();
        let report = run_check(
            &machine,
            &formula,
            PropertySemantics::Boolean,
            &spa,
            100,
            None,
            &RetryPolicy::no_retry(),
        )
        .unwrap();
        assert_eq!(report.satisfied, report.evaluated);
        assert_eq!(report.satisfaction_rate, 1.0);
        assert_eq!(report.outcome.assertion, Some(Assertion::Positive));
        assert!(report.robustness_interval.is_none());
        assert!(!report.robustness);
        assert!(report.failures.is_clean());
        // The formula is stored in canonical (parsed Display) form.
        assert_eq!(report.formula, formula.to_string());
    }

    #[test]
    fn robustness_semantics_produce_an_interval() {
        let (spec, spa) = setup();
        let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
        let formula = parse("G[0,end] (occupancy >= 0)").unwrap();
        let report = run_check(
            &machine,
            &formula,
            PropertySemantics::Robustness,
            &spa,
            100,
            None,
            &RetryPolicy::no_retry(),
        )
        .unwrap();
        assert!(report.robustness);
        let interval = report.robustness_interval.expect("robustness mode");
        assert!(interval.lower() <= interval.upper());
        assert_eq!(report.satisfied, report.evaluated, "all margins positive");
    }

    #[test]
    fn untraced_machine_fails_with_sampling_error() {
        let (spec, spa) = setup();
        let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
        let formula = parse("G[0,end] (occupancy >= 0)").unwrap();
        let err = run_check(
            &machine,
            &formula,
            PropertySemantics::Boolean,
            &spa,
            0,
            Some(4),
            &RetryPolicy::no_retry(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SamplingFailed { .. }));
    }

    #[test]
    fn reports_are_identical_across_batch_sizes() {
        // The check inherits collect_indexed's index-determinism, so
        // parallelism never changes the verdict.
        let (spec, _) = setup();
        let machine = Machine::new(SystemConfig::table2().with_trace(), &spec).unwrap();
        let formula = parse("F[0,end] (ipc > 0.1)").unwrap();
        let mut reports = Vec::new();
        for batch in [1usize, 4] {
            let spa = Spa::builder()
                .confidence(0.9)
                .proportion(0.5)
                .batch_size(batch)
                .build()
                .unwrap();
            reports.push(
                run_check(
                    &machine,
                    &formula,
                    PropertySemantics::Boolean,
                    &spa,
                    7,
                    Some(8),
                    &RetryPolicy::no_retry(),
                )
                .unwrap(),
            );
        }
        assert_eq!(reports[0], reports[1]);
    }
}
