//! The simulated machine: cores executing thread programs over the
//! memory hierarchy, coordinated by a discrete-event scheduler.
//!
//! Each core runs one workload thread. Cores advance in small time
//! quanta ordered by a global event heap, so cross-core interactions
//! (coherence, DRAM banks, locks, queues) happen in near-causal order
//! and the whole execution is a deterministic function of
//! `(config, workload, seed)` — the seed feeds only the variability
//! model, exactly as in the paper's gem5 methodology (§5.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::branch::BranchPredictor;
use crate::config::SystemConfig;
use crate::memhier::MemoryHierarchy;
use crate::metrics::{ExecutionMetrics, ExecutionResult};
use crate::sync::{Barrier, BoundedQueue, Lock, PopResult, PushResult, Wake};
use crate::trace_recorder::TraceRecorder;
use crate::variability::{Variability, VariabilityState};
use crate::workload::{Op, PInstr, WorkloadSpec};
use crate::{Result, SimError};

/// Cycles a core may run ahead before yielding to the event heap.
const QUANTUM: u64 = 400;
/// Fixed cost of an atomic read-modify-write beyond its store.
const RMW_COST: u64 = 3;
/// Fixed cost of queue bookkeeping per push/pop.
const QUEUE_COST: u64 = 4;
/// Address of lock line `i`: `LOCK_BASE + 64·i`.
const LOCK_BASE: u64 = 0x7000_0000;
/// Base of the instruction address space.
const CODE_BASE: u64 = 0x0040_0000;
/// Cap on recorded STL events per stream (keeps traces bounded).
const EVENT_CAP: usize = 20_000;
/// Counter: STL events discarded because a traced run hit [`EVENT_CAP`]
/// (bumped once per affected run with the drop total, never per event).
const EVENTS_DROPPED_COUNTER: &str = "sim.trace.events_dropped";

/// A configured machine ready to run a workload.
///
/// # Examples
///
/// ```
/// use spa_sim::config::SystemConfig;
/// use spa_sim::machine::Machine;
/// use spa_sim::workload::parsec::Benchmark;
///
/// let spec = Benchmark::Blackscholes.workload();
/// let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
/// let a = machine.run(1).unwrap();
/// let b = machine.run(1).unwrap();
/// assert_eq!(a.metrics, b.metrics); // deterministic given the seed
/// ```
#[derive(Debug, Clone)]
pub struct Machine<'w> {
    config: SystemConfig,
    workload: &'w WorkloadSpec,
    variability: Variability,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Parked {
    /// Running or runnable.
    No,
    /// On wake, the blocking instruction has completed: advance.
    AdvanceOnWake,
    /// On wake, re-execute the blocking instruction (queue pops).
    RetryOnWake,
}

#[derive(Debug)]
struct ThreadState {
    pc: usize,
    time: u64,
    item: u64,
    in_item: Option<usize>,
    parked: Parked,
    done: bool,
    instructions: u64,
    op_counter: u64,
    mispredicts: u64,
}

/// What a single interpreter step decided.
enum Step {
    Continue,
    Blocked,
    Finished,
}

impl<'w> Machine<'w> {
    /// Creates a machine after validating the config and workload and
    /// checking that the workload's thread count matches the core
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for any mismatch.
    pub fn new(config: SystemConfig, workload: &'w WorkloadSpec) -> Result<Self> {
        config.validate()?;
        workload.validate()?;
        if workload.programs.len() != config.cores as usize {
            return Err(SimError::InvalidConfig {
                field: "cores",
                message: format!(
                    "workload has {} threads but the machine has {} cores",
                    workload.programs.len(),
                    config.cores
                ),
            });
        }
        Ok(Self {
            config,
            workload,
            variability: Variability::paper_default(),
        })
    }

    /// Replaces the variability model (default: the paper's 0–4 cycle
    /// DRAM jitter).
    pub fn with_variability(mut self, v: Variability) -> Self {
        self.variability = v;
        self
    }

    /// Runs one execution with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if every unfinished thread is
    /// blocked (a workload bug, not a data-dependent outcome).
    pub fn run(&self, seed: u64) -> Result<ExecutionResult> {
        Run::new(self, seed).execute()
    }
}

/// Mutable state of one execution.
struct Run<'m, 'w> {
    machine: &'m Machine<'w>,
    hier: MemoryHierarchy,
    vstate: VariabilityState,
    predictors: Vec<BranchPredictor>,
    locks: Vec<Lock>,
    barriers: Vec<Barrier>,
    queues: Vec<BoundedQueue>,
    queue_producers_left: Vec<u32>,
    pool_cursors: Vec<u64>,
    threads: Vec<ThreadState>,
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
    done_count: usize,
    seed: u64,
    // Trace collection (only when config.collect_trace).
    events: Vec<(u64, &'static str)>,
    dropped_events: u64,
    /// `(time, thread, active-count)` — per-thread times are monotone;
    /// the global order is not (thread-local clocks run ahead).
    active_samples: Vec<(u64, u32, u32)>,
    active: u32,
    recorder: Option<TraceRecorder>,
}

impl<'m, 'w> Run<'m, 'w> {
    fn new(machine: &'m Machine<'w>, seed: u64) -> Self {
        let w = machine.workload;
        let cores = machine.config.cores as usize;
        let mut heap = BinaryHeap::new();
        let mut threads = Vec::with_capacity(cores);
        for tid in 0..cores {
            // Slight staggering models thread-spawn order.
            let start = tid as u64 * 20;
            heap.push(Reverse((start, tid as u64, tid as u32)));
            threads.push(ThreadState {
                pc: 0,
                time: start,
                item: 0,
                in_item: None,
                parked: Parked::No,
                done: false,
                instructions: 0,
                op_counter: 0,
                mispredicts: 0,
            });
        }
        Self {
            machine,
            hier: MemoryHierarchy::new(machine.config),
            vstate: machine.variability.state_for_run(seed),
            predictors: (0..cores).map(|_| BranchPredictor::new(12)).collect(),
            locks: (0..w.locks).map(|_| Lock::new(8)).collect(),
            barriers: w.barriers.iter().map(|&p| Barrier::new(p, 10)).collect(),
            queues: w
                .queues
                .iter()
                .map(|q| BoundedQueue::new(q.capacity as usize, 6))
                .collect(),
            queue_producers_left: w.queues.iter().map(|q| q.producers).collect(),
            pool_cursors: w.pools.iter().map(|p| p.start).collect(),
            threads,
            heap,
            seq: cores as u64,
            done_count: 0,
            seed,
            events: Vec::new(),
            dropped_events: 0,
            active_samples: Vec::new(),
            active: cores as u32,
            recorder: machine
                .config
                .collect_trace
                .then(|| TraceRecorder::new(machine.config.cores)),
        }
    }

    fn schedule(&mut self, tid: u32, at: u64) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, tid)));
    }

    fn schedule_wake(&mut self, wake: Wake) {
        self.schedule(wake.thread, wake.at);
    }

    fn record_event(&mut self, name: &'static str, at: u64) {
        if !self.machine.config.collect_trace {
            return;
        }
        if self.events.len() < EVENT_CAP {
            self.events.push((at, name));
        } else {
            // Past the cap, events used to vanish silently; count them
            // so truncated traces are visible in the result and obs.
            self.dropped_events += 1;
        }
    }

    fn record_active(&mut self, tid: usize, at: u64, delta: i32) {
        let next = self.active as i32 + delta;
        debug_assert!(
            next >= 0,
            "active-thread count underflow (thread {tid}, delta {delta})"
        );
        self.active = next.max(0) as u32;
        if self.machine.config.collect_trace {
            self.active_samples.push((at, tid as u32, self.active));
        }
    }

    /// Samples the recorder's performance signals after a core yields
    /// to the event heap (so every quantum boundary produces at most
    /// one sample per core, at that core's current time).
    fn record_trace_point(&mut self, tid: usize) {
        let at = self.threads[tid].time;
        let instructions = self.threads.iter().map(|t| t.instructions).sum();
        let l1d_misses = self.hier.l1d_misses();
        let l1d_accesses = self.hier.l1d_accesses();
        let l2_misses = self.hier.l2_misses();
        let l2_accesses = self.hier.l2_accesses();
        let active = self.active;
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(
                at,
                instructions,
                l1d_misses,
                l1d_accesses,
                l2_misses,
                l2_accesses,
                active,
            );
        }
    }

    fn execute(mut self) -> Result<ExecutionResult> {
        self.drive()?;
        Ok(self.finish())
    }

    /// Advances the event loop to completion. Split from [`Self::finish`]
    /// so tests can inspect the raw per-thread samples before they are
    /// folded into trace signals.
    fn drive(&mut self) -> Result<()> {
        while let Some(Reverse((at, _, tid))) = self.heap.pop() {
            let tid = tid as usize;
            if self.threads[tid].done {
                continue;
            }
            // Resume a parked thread.
            if self.threads[tid].parked != Parked::No {
                let stall = self.vstate.preemption_stall();
                let t = &mut self.threads[tid];
                t.time = t.time.max(at) + stall;
                if t.parked == Parked::AdvanceOnWake {
                    t.pc += 1;
                }
                t.parked = Parked::No;
                // Stamp the resume at the thread's post-stall local
                // time. The heap-pop time `at` comes from the waker's
                // clock and can precede this thread's own park sample
                // (which used its local time), misordering the trace.
                let resumed = self.threads[tid].time;
                self.record_active(tid, resumed, 1);
            } else {
                let t = &mut self.threads[tid];
                t.time = t.time.max(at);
            }
            self.run_quantum(tid)?;
            if self.recorder.is_some() {
                self.record_trace_point(tid);
            }
        }
        if self.done_count < self.threads.len() {
            let cycle = self.threads.iter().map(|t| t.time).max().unwrap_or(0);
            return Err(SimError::Deadlock { cycle });
        }
        Ok(())
    }

    /// Delivers any pending OS events (timer interrupts, migrations) to
    /// this core at its current time.
    fn deliver_os_events(&mut self, tid: usize) {
        use crate::variability::OsEvent;
        let now = self.threads[tid].time;
        while let Some(event) = self.vstate.os_event(tid as u32, now) {
            match event {
                OsEvent::TimerInterrupt { cycles } => {
                    self.threads[tid].time += cycles;
                    self.kernel_activity(tid, 16);
                }
                OsEvent::Migration { cycles } => {
                    // The thread lands on a cold core: direct switch cost
                    // plus flushed private caches and predictor state.
                    self.threads[tid].time += cycles;
                    self.hier.flush_core(tid as u32);
                    self.predictors[tid] = BranchPredictor::new(12);
                    self.kernel_activity(tid, 64);
                    self.record_event("migration", now);
                }
            }
        }
    }

    /// Kernel work on this core touches kernel cache lines, displacing
    /// application state in the shared L2 exactly as a full-system
    /// simulation would.
    fn kernel_activity(&mut self, tid: usize, lines: usize) {
        for _ in 0..lines {
            let block = self.vstate.kernel_block();
            let now = self.threads[tid].time;
            let out = self
                .hier
                .data_access(tid as u32, block * 64, false, now, &mut self.vstate);
            self.threads[tid].time += out.latency;
        }
    }

    fn run_quantum(&mut self, tid: usize) -> Result<()> {
        self.deliver_os_events(tid);
        let quantum_end = self.threads[tid].time + QUANTUM;
        loop {
            if self.threads[tid].time >= quantum_end {
                let at = self.threads[tid].time;
                self.schedule(tid as u32, at);
                return Ok(());
            }
            match self.step(tid)? {
                Step::Continue => {}
                Step::Blocked => {
                    self.record_active(tid, self.threads[tid].time, -1);
                    return Ok(());
                }
                Step::Finished => {
                    self.threads[tid].done = true;
                    self.done_count += 1;
                    self.record_active(tid, self.threads[tid].time, -1);
                    return Ok(());
                }
            }
        }
    }

    /// Executes one program instruction (or one op of the current item).
    fn step(&mut self, tid: usize) -> Result<Step> {
        // Inside an item: run its next op.
        if let Some(pos) = self.threads[tid].in_item {
            let table = match self.machine.workload.programs[tid][self.threads[tid].pc] {
                PInstr::RunItem { table } => table as usize,
                _ => unreachable!("in_item only set while at a RunItem instruction"),
            };
            let item = self.threads[tid].item as usize;
            let ops = &self.machine.workload.tables[table][item].ops;
            if pos < ops.len() {
                let op = ops[pos];
                self.threads[tid].in_item = Some(pos + 1);
                self.exec_op(tid, op);
                return Ok(Step::Continue);
            }
            self.threads[tid].in_item = None;
            self.threads[tid].pc += 1;
            return Ok(Step::Continue);
        }

        let pc = self.threads[tid].pc;
        let instr = self.machine.workload.programs[tid][pc];
        match instr {
            PInstr::Basic(op) => {
                self.exec_op(tid, op);
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::LockAcquire(l) => {
                // The lock line bounces to this core (store semantics).
                let now = self.threads[tid].time;
                let addr = LOCK_BASE + 64 * l as u64;
                let lat = self
                    .hier
                    .data_access(tid as u32, addr, true, now, &mut self.vstate)
                    .latency;
                let t = &mut self.threads[tid];
                t.time += lat + RMW_COST;
                let now = t.time;
                if self.locks[l as usize].acquire(tid as u32, now).is_none() {
                    self.threads[tid].pc += 1;
                    Ok(Step::Continue)
                } else {
                    self.record_event("lock_contention", now);
                    self.threads[tid].parked = Parked::AdvanceOnWake;
                    Ok(Step::Blocked)
                }
            }
            PInstr::LockRelease(l) => {
                let now = self.threads[tid].time;
                let addr = LOCK_BASE + 64 * l as u64;
                let lat = self
                    .hier
                    .data_access(tid as u32, addr, true, now, &mut self.vstate)
                    .latency;
                self.threads[tid].time += lat;
                let now = self.threads[tid].time;
                if let Some(wake) = self.locks[l as usize].release(tid as u32, now) {
                    self.schedule_wake(wake);
                }
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::Barrier(b) => {
                let now = self.threads[tid].time;
                match self.barriers[b as usize].arrive(tid as u32, now) {
                    None => {
                        self.threads[tid].parked = Parked::AdvanceOnWake;
                        Ok(Step::Blocked)
                    }
                    Some(wakes) => {
                        for wake in wakes {
                            if wake.thread as usize == tid {
                                self.threads[tid].time = wake.at;
                            } else {
                                self.schedule_wake(wake);
                            }
                        }
                        self.threads[tid].pc += 1;
                        Ok(Step::Continue)
                    }
                }
            }
            PInstr::PoolPop {
                pool,
                jump_if_empty,
            } => {
                // Atomic fetch-and-increment on the pool counter line.
                let spec = self.machine.workload.pools[pool as usize];
                let now = self.threads[tid].time;
                let lat = self
                    .hier
                    .data_access(tid as u32, spec.counter_addr, true, now, &mut self.vstate)
                    .latency;
                let t = &mut self.threads[tid];
                t.time += lat + RMW_COST;
                let cursor = &mut self.pool_cursors[pool as usize];
                if *cursor < spec.end {
                    self.threads[tid].item = *cursor;
                    *cursor += 1;
                    self.threads[tid].pc += 1;
                } else {
                    self.threads[tid].pc = jump_if_empty as usize;
                }
                Ok(Step::Continue)
            }
            PInstr::RunItem { .. } => {
                self.threads[tid].in_item = Some(0);
                Ok(Step::Continue)
            }
            PInstr::QueuePush(q) => {
                let now = self.threads[tid].time;
                let item = self.threads[tid].item;
                match self.queues[q as usize].push(tid as u32, item, now) {
                    PushResult::Stored(wake) => {
                        if let Some(w) = wake {
                            self.schedule_wake(w);
                        }
                        self.threads[tid].time += QUEUE_COST;
                        self.threads[tid].pc += 1;
                        Ok(Step::Continue)
                    }
                    PushResult::Blocked => {
                        self.threads[tid].parked = Parked::AdvanceOnWake;
                        Ok(Step::Blocked)
                    }
                }
            }
            PInstr::QueuePop {
                queue,
                jump_if_closed,
            } => {
                let now = self.threads[tid].time;
                match self.queues[queue as usize].pop(tid as u32, now) {
                    PopResult::Item(item) => {
                        self.threads[tid].item = item;
                        self.threads[tid].time += QUEUE_COST;
                        // Space freed: a parked producer may proceed.
                        if let Some(w) = self.queues[queue as usize].admit_parked_producer(now) {
                            self.schedule_wake(w);
                        }
                        self.threads[tid].pc += 1;
                        Ok(Step::Continue)
                    }
                    PopResult::Blocked => {
                        self.threads[tid].parked = Parked::RetryOnWake;
                        Ok(Step::Blocked)
                    }
                    PopResult::Closed => {
                        self.threads[tid].pc = jump_if_closed as usize;
                        Ok(Step::Continue)
                    }
                }
            }
            PInstr::CloseQueue(q) => {
                let left = &mut self.queue_producers_left[q as usize];
                *left = left.saturating_sub(1);
                if *left == 0 {
                    let now = self.threads[tid].time;
                    for wake in self.queues[q as usize].close(now) {
                        self.schedule_wake(wake);
                    }
                }
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::SetItem(v) => {
                self.threads[tid].item = v;
                self.threads[tid].pc += 1;
                Ok(Step::Continue)
            }
            PInstr::Jump(t) => {
                // Jumps cost one cycle so zero-progress loops cannot hang
                // the scheduler.
                self.threads[tid].time += 1;
                self.threads[tid].pc = t as usize;
                Ok(Step::Continue)
            }
            PInstr::End => Ok(Step::Finished),
        }
    }

    fn exec_op(&mut self, tid: usize, op: Op) {
        let core = tid as u32;
        // Instruction fetch: stride through the benchmark's code
        // footprint; only misses cost cycles.
        let t = &mut self.threads[tid];
        t.op_counter += 1;
        let code_bytes = self.machine.workload.code_bytes.max(64);
        let fetch_addr = CODE_BASE + (t.op_counter * 16) % code_bytes;
        let now = t.time;
        let fetch = self
            .hier
            .inst_fetch(core, fetch_addr, now, &mut self.vstate);
        let t = &mut self.threads[tid];
        t.time += fetch.latency;
        t.instructions += op.instructions();

        match op {
            Op::Compute { cycles, .. } => {
                self.threads[tid].time += cycles as u64;
            }
            Op::Load { addr } => {
                let now = self.threads[tid].time;
                let out = self
                    .hier
                    .data_access(core, addr, false, now, &mut self.vstate);
                self.threads[tid].time += out.latency;
                if out.l2_miss {
                    self.record_event("l2_miss", now);
                }
                if out.tlb_miss {
                    self.record_event("tlb_miss", now);
                }
            }
            Op::Store { addr } => {
                let now = self.threads[tid].time;
                let out = self
                    .hier
                    .data_access(core, addr, true, now, &mut self.vstate);
                self.threads[tid].time += out.latency;
                if out.l2_miss {
                    self.record_event("l2_miss", now);
                }
                if out.tlb_miss {
                    self.record_event("tlb_miss", now);
                }
            }
            Op::Branch { pc, taken } => {
                let correct = self.predictors[tid].predict_and_train(pc as u64, taken);
                if !correct {
                    let t = &mut self.threads[tid];
                    t.time += self.machine.config.mispredict_penalty;
                    t.mispredicts += 1;
                    let at = self.threads[tid].time;
                    self.record_event("branch_mispredict", at);
                }
            }
        }
    }

    fn finish(self) -> ExecutionResult {
        let config = &self.machine.config;
        let mut m = ExecutionMetrics {
            runtime_cycles: self.threads.iter().map(|t| t.time).max().unwrap_or(0),
            instructions: self.threads.iter().map(|t| t.instructions).sum(),
            l1d_misses: self.hier.l1d_misses(),
            l1d_accesses: self.hier.l1d_accesses(),
            l1i_misses: self.hier.l1i_misses(),
            l1i_accesses: self.hier.l1i_accesses(),
            l2_misses: self.hier.l2_misses(),
            l2_accesses: self.hier.l2_accesses(),
            max_load_latency: self.hier.max_load_latency(),
            avg_load_latency: self.hier.avg_load_latency(),
            branch_mispredicts: self.threads.iter().map(|t| t.mispredicts).sum(),
            tlb_misses: self.hier.tlb_misses(),
            lock_contentions: self.locks.iter().map(Lock::contended).sum(),
            invalidations: self.hier.invalidations(),
            dram_accesses: self.hier.dram_accesses(),
            jitter_cycles: self.hier.jitter_cycles(),
            ..ExecutionMetrics::default()
        };
        m.finalize(config.clock_hz);

        let stl_data = if config.collect_trace {
            Some(self.build_stl_data(&m))
        } else {
            None
        };
        if self.dropped_events > 0 {
            spa_obs::metrics::global()
                .counter(EVENTS_DROPPED_COUNTER)
                .add(self.dropped_events);
        }
        ExecutionResult {
            seed: self.seed,
            metrics: m,
            dropped_events: self.dropped_events,
            stl_data,
        }
    }

    fn build_stl_data(&self, m: &ExecutionMetrics) -> spa_stl::execution::ExecutionData {
        let mut data = spa_stl::execution::ExecutionData::new(m.runtime_cycles);
        for metric in crate::metrics::Metric::ALL {
            data.set_metric(metric.key(), metric.extract(m));
        }
        data.set_metric("avg_load_latency", m.avg_load_latency);
        data.set_metric("lock_contentions", m.lock_contentions as f64);
        // Standard streams exist even when empty so properties can ask
        // about events that happened zero times.
        for stream in [
            "tlb_miss",
            "l2_miss",
            "lock_contention",
            "branch_mispredict",
            "migration",
        ] {
            data.declare_stream(stream);
        }
        // Events, sorted by time (threads emit out of order).
        let mut events = self.events.clone();
        events.sort_unstable();
        for (at, name) in events {
            data.record_event(name, at).expect("events sorted by time");
        }
        // Active-thread signal plus a simple power proxy.
        let mut samples = self.active_samples.clone();
        samples.sort_unstable_by_key(|&(at, _, _)| at);
        let mut last_time = None;
        for (at, _tid, active) in samples {
            if last_time == Some(at) {
                continue; // keep strictly increasing times
            }
            last_time = Some(at);
            let trace = data.trace_mut();
            trace
                .push("active_threads", at, active as f64)
                .expect("times strictly increasing");
            trace
                .push("power", at, 8.0 + 23.0 * active as f64)
                .expect("times strictly increasing");
        }
        if last_time.is_none() {
            let trace = data.trace_mut();
            let n = self.machine.config.cores as f64;
            trace.push("active_threads", 0, n).expect("fresh signal");
            trace
                .push("power", 0, 8.0 + 23.0 * n)
                .expect("fresh signal");
        }
        // Performance signals (IPC, miss rates, occupancy) sampled at
        // quantum boundaries by the recorder.
        if let Some(recorder) = &self.recorder {
            recorder.write_into(data.trace_mut());
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{PoolSpec, QueueSpec, WorkItem};

    fn compute(cycles: u16) -> PInstr {
        PInstr::Basic(Op::Compute {
            cycles,
            instructions: cycles,
        })
    }

    fn single_thread_config() -> SystemConfig {
        let mut c = SystemConfig::table2();
        c.cores = 1;
        c
    }

    #[test]
    fn straight_line_program_runs() {
        let w = WorkloadSpec {
            name: "line".into(),
            programs: vec![vec![
                compute(10),
                PInstr::Basic(Op::Load { addr: 0x1000 }),
                PInstr::Basic(Op::Store { addr: 0x1000 }),
                PInstr::Basic(Op::Branch { pc: 4, taken: true }),
                PInstr::End,
            ]],
            code_bytes: 4096,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        let r = m.run(0).unwrap();
        assert!(r.metrics.runtime_cycles > 10);
        assert_eq!(r.metrics.instructions, 13);
        assert_eq!(r.metrics.l1d_accesses, 2);
    }

    #[test]
    fn core_count_mismatch_rejected() {
        let w = WorkloadSpec {
            name: "one".into(),
            programs: vec![vec![PInstr::End]],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        assert!(Machine::new(SystemConfig::table2(), &w).is_err());
    }

    #[test]
    fn lock_serializes_critical_sections() {
        // Two threads increment under a lock; both must finish.
        let prog = vec![
            PInstr::LockAcquire(0),
            PInstr::Basic(Op::Load { addr: 0x9000 }),
            compute(50),
            PInstr::Basic(Op::Store { addr: 0x9000 }),
            PInstr::LockRelease(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "locked".into(),
            programs: vec![prog.clone(), prog],
            locks: 1,
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c, &w).unwrap();
        let r = m.run(0).unwrap();
        assert!(r.metrics.runtime_cycles > 100);
        // The second thread contends (threads start 20 cycles apart but
        // the critical section is 50+ cycles).
        assert_eq!(r.metrics.lock_contentions, 1);
    }

    #[test]
    fn barrier_synchronizes() {
        let prog_fast = vec![compute(10), PInstr::Barrier(0), PInstr::End];
        let prog_slow = vec![compute(500), PInstr::Barrier(0), PInstr::End];
        let w = WorkloadSpec {
            name: "barrier".into(),
            programs: vec![prog_fast, prog_slow],
            barriers: vec![2],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c, &w).unwrap();
        let r = m.run(0).unwrap();
        // Both threads end after the slow one arrives (≥ 500 cycles).
        assert!(r.metrics.runtime_cycles >= 500);
    }

    #[test]
    fn producer_consumer_queue_flows() {
        // Producer pushes 8 items from a pool; consumer pops and runs them.
        let items: Vec<WorkItem> = (0..8)
            .map(|i| WorkItem {
                ops: vec![Op::Load {
                    addr: 0x2000 + i * 64,
                }],
            })
            .collect();
        let producer = vec![
            PInstr::PoolPop {
                pool: 0,
                jump_if_empty: 3,
            },
            PInstr::QueuePush(0),
            PInstr::Jump(0),
            PInstr::CloseQueue(0),
            PInstr::End,
        ];
        let consumer = vec![
            PInstr::QueuePop {
                queue: 0,
                jump_if_closed: 3,
            },
            PInstr::RunItem { table: 0 },
            PInstr::Jump(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "pipe".into(),
            programs: vec![producer, consumer],
            tables: vec![items],
            pools: vec![PoolSpec {
                start: 0,
                end: 8,
                counter_addr: 0xA000,
            }],
            queues: vec![QueueSpec {
                capacity: 2,
                producers: 1,
            }],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c, &w).unwrap();
        let r = m.run(0).unwrap();
        // All 8 item loads happened (plus pool-counter stores).
        assert!(r.metrics.l1d_accesses >= 8);
        assert!(r.metrics.runtime_cycles > 0);
    }

    #[test]
    fn deadlock_is_detected() {
        // A consumer on a queue nobody ever closes or fills.
        let w = WorkloadSpec {
            name: "dead".into(),
            programs: vec![vec![
                PInstr::QueuePop {
                    queue: 0,
                    jump_if_closed: 1,
                },
                PInstr::End,
            ]],
            queues: vec![QueueSpec {
                capacity: 1,
                producers: 1,
            }],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        assert!(matches!(m.run(0), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        // A memory-heavy loop whose runtime depends on DRAM jitter.
        let items: Vec<WorkItem> = (0..32)
            .map(|i| WorkItem {
                ops: (0..16)
                    .map(|j| Op::Load {
                        // Spread far apart to miss in L2.
                        addr: (i * 16 + j) * 64 * 4099,
                    })
                    .collect(),
            })
            .collect();
        let prog = vec![
            PInstr::PoolPop {
                pool: 0,
                jump_if_empty: 3,
            },
            PInstr::RunItem { table: 0 },
            PInstr::Jump(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "jittery".into(),
            programs: vec![prog],
            tables: vec![items],
            pools: vec![PoolSpec {
                start: 0,
                end: 32,
                counter_addr: 0xB000,
            }],
            code_bytes: 2048,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        let a = m.run(5).unwrap();
        let b = m.run(5).unwrap();
        assert_eq!(a.metrics, b.metrics);
        let c = m.run(6).unwrap();
        assert_ne!(
            a.metrics.runtime_cycles, c.metrics.runtime_cycles,
            "different seeds should give different jitter totals"
        );
    }

    #[test]
    fn trace_collection_produces_stl_data() {
        let w = WorkloadSpec {
            name: "traced".into(),
            programs: vec![vec![
                PInstr::Basic(Op::Load { addr: 0x100000 }),
                compute(20),
                PInstr::End,
            ]],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config().with_trace(), &w).unwrap();
        let r = m.run(0).unwrap();
        let data = r.stl_data.expect("trace requested");
        assert!(data.metric("runtime").is_ok());
        assert!(data.trace().has_signal("power"));
        assert!(data.trace().has_signal("active_threads"));
        // Recorder-derived performance signals are present and defined
        // over the whole run.
        for signal in crate::trace_recorder::RECORDED_SIGNALS {
            assert!(data.trace().has_signal(signal), "missing {signal}");
            assert!(data.trace().value_at(signal, 0).is_ok());
            assert!(data.trace().value_at(signal, data.duration()).is_ok());
        }
        // The final cumulative IPC sample agrees with the scalar metric.
        let end_ipc = data
            .trace()
            .value_at("ipc", data.trace().end_time())
            .unwrap();
        assert!(
            (end_ipc - r.metrics.ipc).abs() < 0.25,
            "ipc close to metric"
        );
        // Untraced runs return None.
        let m2 = Machine::new(single_thread_config(), &w).unwrap();
        assert!(m2.run(0).unwrap().stl_data.is_none());
    }

    #[test]
    fn active_sample_times_are_per_thread_monotone() {
        // Regression for the wake-up timestamp bug: resume samples were
        // stamped at the heap-pop time, which comes from the *waker's*
        // clock and can precede the parked thread's own park sample
        // under the real-machine model's timer-interrupt clock skew.
        // Two threads fight over one lock across a shared work pool, so
        // every seed produces plenty of park/resume pairs.
        let prog = vec![
            PInstr::PoolPop {
                pool: 0,
                jump_if_empty: 5,
            },
            PInstr::LockAcquire(0),
            compute(60),
            PInstr::LockRelease(0),
            PInstr::Jump(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "contended".into(),
            programs: vec![prog.clone(), prog],
            locks: 1,
            pools: vec![PoolSpec {
                start: 0,
                end: 40,
                counter_addr: 0xC000,
            }],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c.with_trace(), &w)
            .unwrap()
            .with_variability(Variability::real_machine());
        let mut contentions = 0;
        for seed in 0..8 {
            let mut run = Run::new(&m, seed);
            run.drive().unwrap();
            assert!(
                run.active_samples.len() > 2,
                "expected park/resume samples (seed {seed})"
            );
            let mut last = [0u64; 2];
            for &(at, tid, _) in &run.active_samples {
                let tid = tid as usize;
                assert!(
                    at >= last[tid],
                    "sample times went backwards on thread {tid} (seed {seed})"
                );
                last[tid] = at;
            }
            contentions += run.finish().metrics.lock_contentions;
        }
        assert!(contentions > 0, "workload must actually contend");
    }

    #[test]
    fn overflowing_event_stream_is_counted_not_silent() {
        let w = WorkloadSpec {
            name: "tiny".into(),
            programs: vec![vec![compute(5), PInstr::End]],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config().with_trace(), &w).unwrap();
        let mut run = Run::new(&m, 0);
        for _ in 0..EVENT_CAP + 7 {
            run.record_event("tlb_miss", 1);
        }
        assert_eq!(run.events.len(), EVENT_CAP);
        assert_eq!(run.dropped_events, 7);
        run.drive().unwrap();
        assert_eq!(run.events.len(), EVENT_CAP, "cap still enforced");
        // The run itself may drop more events on top of the 7 stuffed
        // ones; all of them must surface in the result.
        let dropped = run.dropped_events;
        assert!(dropped >= 7);
        let result = run.finish();
        assert_eq!(result.dropped_events, dropped);
        // A run that stays under the cap reports zero drops.
        assert_eq!(m.run(0).unwrap().dropped_events, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "active-thread count underflow")]
    fn active_count_underflow_is_caught_in_debug() {
        let w = WorkloadSpec {
            name: "tiny".into(),
            programs: vec![vec![PInstr::End]],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        let mut run = Run::new(&m, 0);
        // One core ⇒ active starts at 1; the second decrement underflows.
        run.record_active(0, 10, -1);
        run.record_active(0, 20, -1);
    }
}
