//! The simulated machine: cores executing thread programs over the
//! memory hierarchy, coordinated by the event-driven component
//! scheduler in [`crate::sched`].
//!
//! Each core runs one workload thread as a [`CoreInterpreter`]
//! component; the [`EventScheduler`] pops `(time, seq, core)` events,
//! skips idle (parked/finished) cores entirely, and lets a core whose
//! next event is strictly earliest *run ahead* without a heap round
//! trip. Cross-core interactions (coherence, DRAM banks, locks,
//! queues) still happen in exactly the pop order the old quantum loop
//! produced, so the whole execution remains a deterministic function
//! of `(config, workload, seed)` — the seed feeds only the variability
//! model, exactly as in the paper's gem5 methodology (§5.2). The old
//! loop itself survives verbatim in `crate::quantum` as the
//! differential oracle and bench baseline.

use crate::config::SystemConfig;
use crate::interp::{CoreInterpreter, MachineCtx, EVENTS_DROPPED_COUNTER};
use crate::metrics::{ExecutionMetrics, ExecutionResult};
use crate::sched::EventScheduler;
use crate::sync::Lock;
use crate::variability::Variability;
use crate::workload::WorkloadSpec;
use crate::{Result, SimError};

/// A configured machine ready to run a workload.
///
/// # Examples
///
/// ```
/// use spa_sim::config::SystemConfig;
/// use spa_sim::machine::Machine;
/// use spa_sim::workload::parsec::Benchmark;
///
/// let spec = Benchmark::Blackscholes.workload();
/// let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
/// let a = machine.run(1).unwrap();
/// let b = machine.run(1).unwrap();
/// assert_eq!(a.metrics, b.metrics); // deterministic given the seed
/// ```
#[derive(Debug, Clone)]
pub struct Machine<'w> {
    pub(crate) config: SystemConfig,
    pub(crate) workload: &'w WorkloadSpec,
    pub(crate) variability: Variability,
}

impl<'w> Machine<'w> {
    /// Creates a machine after validating the config and workload and
    /// checking that the workload's thread count matches the core
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for any mismatch.
    pub fn new(config: SystemConfig, workload: &'w WorkloadSpec) -> Result<Self> {
        config.validate()?;
        workload.validate()?;
        if workload.programs.len() != config.cores as usize {
            return Err(SimError::InvalidConfig {
                field: "cores",
                message: format!(
                    "workload has {} threads but the machine has {} cores",
                    workload.programs.len(),
                    config.cores
                ),
            });
        }
        Ok(Self {
            config,
            workload,
            variability: Variability::paper_default(),
        })
    }

    /// Replaces the variability model (default: the paper's 0–4 cycle
    /// DRAM jitter).
    pub fn with_variability(mut self, v: Variability) -> Self {
        self.variability = v;
        self
    }

    /// Runs one execution with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if every unfinished thread is
    /// blocked (a workload bug, not a data-dependent outcome).
    pub fn run(&self, seed: u64) -> Result<ExecutionResult> {
        Run::new(self, seed).execute()
    }

    /// Runs one execution with the pre-refactor quantum-stepped loop.
    ///
    /// This is the legacy engine kept verbatim in `crate::quantum` as
    /// the differential oracle (see `tests/event_differential.rs`) and
    /// the `pr10_event_core` bench baseline. It must produce results
    /// identical to [`Machine::run`]; it is hidden because nothing
    /// outside those two callers should ever prefer it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Machine::run`].
    #[doc(hidden)]
    pub fn run_quantum_stepped(&self, seed: u64) -> Result<ExecutionResult> {
        crate::quantum::run(self, seed)
    }
}

/// Mutable state of one event-driven execution: the per-core
/// components, the shared context they tick against, and the scheduler
/// that orders them.
struct Run<'w> {
    cores: Vec<CoreInterpreter>,
    ctx: MachineCtx<'w>,
    sched: EventScheduler,
    seed: u64,
}

impl<'w> Run<'w> {
    fn new(machine: &Machine<'w>, seed: u64) -> Self {
        let n = machine.config.cores as usize;
        let mut sched = EventScheduler::new(n);
        let mut cores = Vec::with_capacity(n);
        for tid in 0..n {
            // Slight staggering models thread-spawn order. Scheduling
            // in tid order preserves the old loop's seq tie-break.
            let start = tid as u64 * 20;
            sched.schedule(tid as u32, start);
            cores.push(CoreInterpreter::new(tid as u32, start));
        }
        Self {
            cores,
            ctx: MachineCtx::new(
                machine.config,
                machine.workload,
                machine.variability.state_for_run(seed),
            ),
            sched,
            seed,
        }
    }

    fn execute(mut self) -> Result<ExecutionResult> {
        self.drive()?;
        Ok(self.finish())
    }

    /// Advances the event loop to completion. Split from [`Self::finish`]
    /// so tests can inspect the raw per-thread samples before they are
    /// folded into trace signals.
    fn drive(&mut self) -> Result<()> {
        self.sched.drive(&mut self.cores, &mut self.ctx);
        if self.ctx.done_count < self.cores.len() {
            let cycle = self.cores.iter().map(|c| c.thread.time).max().unwrap_or(0);
            return Err(SimError::Deadlock { cycle });
        }
        Ok(())
    }

    fn finish(self) -> ExecutionResult {
        self.sched.flush_stats();
        let config = &self.ctx.config;
        debug_assert_eq!(
            self.ctx.instructions_total,
            self.cores
                .iter()
                .map(|c| c.thread.instructions)
                .sum::<u64>(),
            "incremental instruction total must match the per-core sum"
        );
        let mut m = ExecutionMetrics {
            runtime_cycles: self.cores.iter().map(|c| c.thread.time).max().unwrap_or(0),
            instructions: self.ctx.instructions_total,
            l1d_misses: self.ctx.hier.l1d_misses(),
            l1d_accesses: self.ctx.hier.l1d_accesses(),
            l1i_misses: self.ctx.hier.l1i_misses(),
            l1i_accesses: self.ctx.hier.l1i_accesses(),
            l2_misses: self.ctx.hier.l2_misses(),
            l2_accesses: self.ctx.hier.l2_accesses(),
            max_load_latency: self.ctx.hier.max_load_latency(),
            avg_load_latency: self.ctx.hier.avg_load_latency(),
            branch_mispredicts: self.cores.iter().map(|c| c.thread.mispredicts).sum(),
            tlb_misses: self.ctx.hier.tlb_misses(),
            lock_contentions: self.ctx.locks.iter().map(Lock::contended).sum(),
            invalidations: self.ctx.hier.invalidations(),
            dram_accesses: self.ctx.hier.dram_accesses(),
            jitter_cycles: self.ctx.hier.jitter_cycles(),
            ..ExecutionMetrics::default()
        };
        m.finalize(config.clock_hz);

        let stl_data = if config.collect_trace {
            Some(self.build_stl_data(&m))
        } else {
            None
        };
        if self.ctx.dropped_events > 0 {
            spa_obs::metrics::global()
                .counter(EVENTS_DROPPED_COUNTER)
                .add(self.ctx.dropped_events);
        }
        ExecutionResult {
            seed: self.seed,
            metrics: m,
            dropped_events: self.ctx.dropped_events,
            stl_data,
        }
    }

    fn build_stl_data(&self, m: &ExecutionMetrics) -> spa_stl::execution::ExecutionData {
        let mut data = spa_stl::execution::ExecutionData::new(m.runtime_cycles);
        for metric in crate::metrics::Metric::ALL {
            data.set_metric(metric.key(), metric.extract(m));
        }
        data.set_metric("avg_load_latency", m.avg_load_latency);
        data.set_metric("lock_contentions", m.lock_contentions as f64);
        // Standard streams exist even when empty so properties can ask
        // about events that happened zero times.
        for stream in [
            "tlb_miss",
            "l2_miss",
            "lock_contention",
            "branch_mispredict",
            "migration",
        ] {
            data.declare_stream(stream);
        }
        // Events, sorted by time (threads emit out of order).
        let mut events = self.ctx.events.clone();
        events.sort_unstable();
        for (at, name) in events {
            data.record_event(name, at).expect("events sorted by time");
        }
        // Active-thread signal plus a simple power proxy.
        let mut samples = self.ctx.active_samples.clone();
        samples.sort_unstable_by_key(|&(at, _, _)| at);
        let mut last_time = None;
        for (at, _tid, active) in samples {
            if last_time == Some(at) {
                continue; // keep strictly increasing times
            }
            last_time = Some(at);
            let trace = data.trace_mut();
            trace
                .push("active_threads", at, active as f64)
                .expect("times strictly increasing");
            trace
                .push("power", at, 8.0 + 23.0 * active as f64)
                .expect("times strictly increasing");
        }
        if last_time.is_none() {
            let trace = data.trace_mut();
            let n = self.ctx.config.cores as f64;
            trace.push("active_threads", 0, n).expect("fresh signal");
            trace
                .push("power", 0, 8.0 + 23.0 * n)
                .expect("fresh signal");
        }
        // Performance signals (IPC, miss rates, occupancy) sampled at
        // quantum boundaries by the recorder.
        if let Some(recorder) = &self.ctx.recorder {
            recorder.write_into(data.trace_mut());
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DEFAULT_EVENT_CAP;
    use crate::workload::{Op, PInstr, PoolSpec, QueueSpec, WorkItem};

    fn compute(cycles: u16) -> PInstr {
        PInstr::Basic(Op::Compute {
            cycles,
            instructions: cycles,
        })
    }

    fn single_thread_config() -> SystemConfig {
        let mut c = SystemConfig::table2();
        c.cores = 1;
        c
    }

    #[test]
    fn straight_line_program_runs() {
        let w = WorkloadSpec {
            name: "line".into(),
            programs: vec![vec![
                compute(10),
                PInstr::Basic(Op::Load { addr: 0x1000 }),
                PInstr::Basic(Op::Store { addr: 0x1000 }),
                PInstr::Basic(Op::Branch { pc: 4, taken: true }),
                PInstr::End,
            ]],
            code_bytes: 4096,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        let r = m.run(0).unwrap();
        assert!(r.metrics.runtime_cycles > 10);
        assert_eq!(r.metrics.instructions, 13);
        assert_eq!(r.metrics.l1d_accesses, 2);
    }

    #[test]
    fn core_count_mismatch_rejected() {
        let w = WorkloadSpec {
            name: "one".into(),
            programs: vec![vec![PInstr::End]],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        assert!(Machine::new(SystemConfig::table2(), &w).is_err());
    }

    #[test]
    fn lock_serializes_critical_sections() {
        // Two threads increment under a lock; both must finish.
        let prog = vec![
            PInstr::LockAcquire(0),
            PInstr::Basic(Op::Load { addr: 0x9000 }),
            compute(50),
            PInstr::Basic(Op::Store { addr: 0x9000 }),
            PInstr::LockRelease(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "locked".into(),
            programs: vec![prog.clone(), prog],
            locks: 1,
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c, &w).unwrap();
        let r = m.run(0).unwrap();
        assert!(r.metrics.runtime_cycles > 100);
        // The second thread contends (threads start 20 cycles apart but
        // the critical section is 50+ cycles).
        assert_eq!(r.metrics.lock_contentions, 1);
    }

    #[test]
    fn barrier_synchronizes() {
        let prog_fast = vec![compute(10), PInstr::Barrier(0), PInstr::End];
        let prog_slow = vec![compute(500), PInstr::Barrier(0), PInstr::End];
        let w = WorkloadSpec {
            name: "barrier".into(),
            programs: vec![prog_fast, prog_slow],
            barriers: vec![2],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c, &w).unwrap();
        let r = m.run(0).unwrap();
        // Both threads end after the slow one arrives (≥ 500 cycles).
        assert!(r.metrics.runtime_cycles >= 500);
    }

    #[test]
    fn producer_consumer_queue_flows() {
        // Producer pushes 8 items from a pool; consumer pops and runs them.
        let items: Vec<WorkItem> = (0..8)
            .map(|i| WorkItem {
                ops: vec![Op::Load {
                    addr: 0x2000 + i * 64,
                }],
            })
            .collect();
        let producer = vec![
            PInstr::PoolPop {
                pool: 0,
                jump_if_empty: 3,
            },
            PInstr::QueuePush(0),
            PInstr::Jump(0),
            PInstr::CloseQueue(0),
            PInstr::End,
        ];
        let consumer = vec![
            PInstr::QueuePop {
                queue: 0,
                jump_if_closed: 3,
            },
            PInstr::RunItem { table: 0 },
            PInstr::Jump(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "pipe".into(),
            programs: vec![producer, consumer],
            tables: vec![items],
            pools: vec![PoolSpec {
                start: 0,
                end: 8,
                counter_addr: 0xA000,
            }],
            queues: vec![QueueSpec {
                capacity: 2,
                producers: 1,
            }],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c, &w).unwrap();
        let r = m.run(0).unwrap();
        // All 8 item loads happened (plus pool-counter stores).
        assert!(r.metrics.l1d_accesses >= 8);
        assert!(r.metrics.runtime_cycles > 0);
    }

    #[test]
    fn deadlock_is_detected() {
        // A consumer on a queue nobody ever closes or fills.
        let w = WorkloadSpec {
            name: "dead".into(),
            programs: vec![vec![
                PInstr::QueuePop {
                    queue: 0,
                    jump_if_closed: 1,
                },
                PInstr::End,
            ]],
            queues: vec![QueueSpec {
                capacity: 1,
                producers: 1,
            }],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        assert!(matches!(m.run(0), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        // A memory-heavy loop whose runtime depends on DRAM jitter.
        let items: Vec<WorkItem> = (0..32)
            .map(|i| WorkItem {
                ops: (0..16)
                    .map(|j| Op::Load {
                        // Spread far apart to miss in L2.
                        addr: (i * 16 + j) * 64 * 4099,
                    })
                    .collect(),
            })
            .collect();
        let prog = vec![
            PInstr::PoolPop {
                pool: 0,
                jump_if_empty: 3,
            },
            PInstr::RunItem { table: 0 },
            PInstr::Jump(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "jittery".into(),
            programs: vec![prog],
            tables: vec![items],
            pools: vec![PoolSpec {
                start: 0,
                end: 32,
                counter_addr: 0xB000,
            }],
            code_bytes: 2048,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        let a = m.run(5).unwrap();
        let b = m.run(5).unwrap();
        assert_eq!(a.metrics, b.metrics);
        let c = m.run(6).unwrap();
        assert_ne!(
            a.metrics.runtime_cycles, c.metrics.runtime_cycles,
            "different seeds should give different jitter totals"
        );
    }

    #[test]
    fn trace_collection_produces_stl_data() {
        let w = WorkloadSpec {
            name: "traced".into(),
            programs: vec![vec![
                PInstr::Basic(Op::Load { addr: 0x100000 }),
                compute(20),
                PInstr::End,
            ]],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config().with_trace(), &w).unwrap();
        let r = m.run(0).unwrap();
        let data = r.stl_data.expect("trace requested");
        assert!(data.metric("runtime").is_ok());
        assert!(data.trace().has_signal("power"));
        assert!(data.trace().has_signal("active_threads"));
        // Recorder-derived performance signals are present and defined
        // over the whole run.
        for signal in crate::trace_recorder::RECORDED_SIGNALS {
            assert!(data.trace().has_signal(signal), "missing {signal}");
            assert!(data.trace().value_at(signal, 0).is_ok());
            assert!(data.trace().value_at(signal, data.duration()).is_ok());
        }
        // The final cumulative IPC sample agrees with the scalar metric.
        let end_ipc = data
            .trace()
            .value_at("ipc", data.trace().end_time())
            .unwrap();
        assert!(
            (end_ipc - r.metrics.ipc).abs() < 0.25,
            "ipc close to metric"
        );
        // Untraced runs return None.
        let m2 = Machine::new(single_thread_config(), &w).unwrap();
        assert!(m2.run(0).unwrap().stl_data.is_none());
    }

    #[test]
    fn active_sample_times_are_per_thread_monotone() {
        // Regression for the wake-up timestamp bug: resume samples were
        // stamped at the heap-pop time, which comes from the *waker's*
        // clock and can precede the parked thread's own park sample
        // under the real-machine model's timer-interrupt clock skew.
        // Two threads fight over one lock across a shared work pool, so
        // every seed produces plenty of park/resume pairs.
        let prog = vec![
            PInstr::PoolPop {
                pool: 0,
                jump_if_empty: 5,
            },
            PInstr::LockAcquire(0),
            compute(60),
            PInstr::LockRelease(0),
            PInstr::Jump(0),
            PInstr::End,
        ];
        let w = WorkloadSpec {
            name: "contended".into(),
            programs: vec![prog.clone(), prog],
            locks: 1,
            pools: vec![PoolSpec {
                start: 0,
                end: 40,
                counter_addr: 0xC000,
            }],
            code_bytes: 1024,
            ..WorkloadSpec::default()
        };
        let mut c = SystemConfig::table2();
        c.cores = 2;
        let m = Machine::new(c.with_trace(), &w)
            .unwrap()
            .with_variability(Variability::real_machine());
        let mut contentions = 0;
        for seed in 0..8 {
            let mut run = Run::new(&m, seed);
            run.drive().unwrap();
            assert!(
                run.ctx.active_samples.len() > 2,
                "expected park/resume samples (seed {seed})"
            );
            let mut last = [0u64; 2];
            for &(at, tid, _) in &run.ctx.active_samples {
                let tid = tid as usize;
                assert!(
                    at >= last[tid],
                    "sample times went backwards on thread {tid} (seed {seed})"
                );
                last[tid] = at;
            }
            contentions += run.finish().metrics.lock_contentions;
        }
        assert!(contentions > 0, "workload must actually contend");
    }

    #[test]
    fn overflowing_event_stream_is_counted_not_silent() {
        let w = WorkloadSpec {
            name: "tiny".into(),
            programs: vec![vec![compute(5), PInstr::End]],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config().with_trace(), &w).unwrap();
        let mut run = Run::new(&m, 0);
        for _ in 0..DEFAULT_EVENT_CAP + 7 {
            run.ctx.record_event("tlb_miss", 1);
        }
        assert_eq!(run.ctx.events.len(), DEFAULT_EVENT_CAP);
        assert_eq!(run.ctx.dropped_events, 7);
        run.drive().unwrap();
        assert_eq!(
            run.ctx.events.len(),
            DEFAULT_EVENT_CAP,
            "cap still enforced"
        );
        // The run itself may drop more events on top of the 7 stuffed
        // ones; all of them must surface in the result.
        let dropped = run.ctx.dropped_events;
        assert!(dropped >= 7);
        let result = run.finish();
        assert_eq!(result.dropped_events, dropped);
        // A run that stays under the cap reports zero drops.
        assert_eq!(m.run(0).unwrap().dropped_events, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "active-thread count underflow")]
    fn active_count_underflow_is_caught_in_debug() {
        let w = WorkloadSpec {
            name: "tiny".into(),
            programs: vec![vec![PInstr::End]],
            code_bytes: 64,
            ..WorkloadSpec::default()
        };
        let m = Machine::new(single_thread_config(), &w).unwrap();
        let mut run = Run::new(&m, 0);
        // One core ⇒ active starts at 1; the second decrement underflows.
        run.ctx.record_active(0, 10, -1);
        run.ctx.record_active(0, 20, -1);
    }
}
