//! On-chip networks: the Table 2 crossbar (default) and an optional 2-D
//! mesh.
//!
//! Each core has an ingress/egress path to the shared L2; a block
//! transfer serializes `block/link` flits plus per-hop header cycles.
//! Links are modelled as busy-until scoreboards, so concurrent misses
//! from the same core queue behind each other while different cores
//! proceed in parallel — the first-order contention effect of a real
//! network. The mesh routes each core over `hops(core)` store-and-
//! forward links toward a centrally attached L2, so far corners pay
//! more latency and share intermediate links; `ablation_network`
//! quantifies the difference against the crossbar.

use crate::coherence::CoreId;
use crate::config::SystemConfig;

/// The crossbar contention model.
#[derive(Debug, Clone)]
pub struct Crossbar {
    /// Per-core port busy-until times (cycle at which the port frees).
    port_free: Vec<u64>,
    /// Transfer occupancy per block in cycles.
    transfer_cycles: u64,
    /// Per-hop header latency.
    hop_latency: u64,
    /// Total transfers serviced.
    transfers: u64,
    /// Total cycles requests spent waiting for a busy port.
    contention_cycles: u64,
}

impl Crossbar {
    /// Builds the crossbar for the given system.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            port_free: vec![0; config.cores as usize],
            transfer_cycles: config.block_transfer_cycles(),
            hop_latency: config.link_latency,
            transfers: 0,
            contention_cycles: 0,
        }
    }

    /// Schedules a block transfer on `core`'s port starting no earlier
    /// than `now`; returns the cycle at which the transfer completes.
    pub fn transfer(&mut self, core: CoreId, now: u64) -> u64 {
        let port = &mut self.port_free[core as usize];
        let start = now.max(*port);
        self.contention_cycles += start - now;
        let done = start + self.transfer_cycles;
        *port = done;
        self.transfers += 1;
        done
    }

    /// Cost of a short control message (invalidation, ack): one hop, no
    /// payload serialization, no port occupancy.
    pub fn control_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Cycles one block transfer occupies a link.
    pub fn transfer_cycles(&self) -> u64 {
        self.transfer_cycles
    }

    /// Total block transfers serviced.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles spent queued on busy ports.
    pub fn contention_cycles(&self) -> u64 {
        self.contention_cycles
    }
}

/// A 2-D mesh with the shared L2 attached at node 0; core `c` is
/// `1 + (c mod mesh_width)`-ish hops away using X-Y routing over a
/// square arrangement.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// Busy-until per directed link (one per core path segment).
    link_free: Vec<u64>,
    /// Precomputed hop count per core.
    hops: Vec<u64>,
    transfer_cycles: u64,
    hop_latency: u64,
    transfers: u64,
    contention_cycles: u64,
}

impl Mesh {
    /// Builds the mesh for the given system: cores are laid out row-
    /// major on the smallest square grid that fits them, with the L2 at
    /// grid position (0, 0).
    pub fn new(config: &SystemConfig) -> Self {
        let n = config.cores as usize;
        let width = (n as f64).sqrt().ceil() as u64;
        let hops = (0..n as u64)
            .map(|c| {
                let (x, y) = (c % width, c / width);
                // X-Y distance to the L2 at (0,0), plus the ejection hop.
                x + y + 1
            })
            .collect();
        Self {
            link_free: vec![0; n],
            hops,
            transfer_cycles: config.block_transfer_cycles(),
            hop_latency: config.link_latency,
            transfers: 0,
            contention_cycles: 0,
        }
    }

    /// Hop count between `core` and the L2.
    pub fn hops(&self, core: CoreId) -> u64 {
        self.hops[core as usize]
    }

    /// Schedules a block transfer for `core` starting no earlier than
    /// `now`; store-and-forward over its hop path.
    pub fn transfer(&mut self, core: CoreId, now: u64) -> u64 {
        let link = &mut self.link_free[core as usize];
        let start = now.max(*link);
        self.contention_cycles += start - now;
        let done = start + self.hops[core as usize] * (self.transfer_cycles + self.hop_latency);
        *link = done;
        self.transfers += 1;
        done
    }

    /// Control-message latency for `core` (one flit per hop).
    pub fn control_latency(&self, core: CoreId) -> u64 {
        self.hops[core as usize] * self.hop_latency
    }

    /// Total block transfers serviced.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles spent queued on busy links.
    pub fn contention_cycles(&self) -> u64 {
        self.contention_cycles
    }
}

/// The configured network, dispatching to crossbar or mesh.
#[derive(Debug, Clone)]
pub enum Network {
    /// Single-hop crossbar (Table 2 default).
    Crossbar(Crossbar),
    /// 2-D mesh (ablation alternative).
    Mesh(Mesh),
}

impl Network {
    /// Builds the network selected by the config.
    pub fn new(config: &SystemConfig) -> Self {
        if config.mesh_network {
            Network::Mesh(Mesh::new(config))
        } else {
            Network::Crossbar(Crossbar::new(config))
        }
    }

    /// Schedules a block transfer (see the per-model methods).
    pub fn transfer(&mut self, core: CoreId, now: u64) -> u64 {
        match self {
            Network::Crossbar(x) => x.transfer(core, now),
            Network::Mesh(m) => m.transfer(core, now),
        }
    }

    /// Control-message latency for `core`.
    pub fn control_latency(&self, core: CoreId) -> u64 {
        match self {
            Network::Crossbar(x) => x.control_latency(),
            Network::Mesh(m) => m.control_latency(core),
        }
    }

    /// Total block transfers serviced.
    pub fn transfers(&self) -> u64 {
        match self {
            Network::Crossbar(x) => x.transfers(),
            Network::Mesh(m) => m.transfers(),
        }
    }

    /// Total cycles spent queued.
    pub fn contention_cycles(&self) -> u64 {
        match self {
            Network::Crossbar(x) => x.contention_cycles(),
            Network::Mesh(m) => m.contention_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> Crossbar {
        Crossbar::new(&SystemConfig::table2())
    }

    #[test]
    fn transfer_occupies_port() {
        let mut x = xbar();
        // 64B / 16B + 1 = 5 cycles.
        assert_eq!(x.transfer_cycles(), 5);
        let t1 = x.transfer(0, 100);
        assert_eq!(t1, 105);
        // A second transfer from the same core queues behind the first.
        let t2 = x.transfer(0, 100);
        assert_eq!(t2, 110);
        assert_eq!(x.contention_cycles(), 5);
    }

    #[test]
    fn different_cores_in_parallel() {
        let mut x = xbar();
        let a = x.transfer(0, 50);
        let b = x.transfer(1, 50);
        assert_eq!(a, 55);
        assert_eq!(b, 55);
        assert_eq!(x.contention_cycles(), 0);
        assert_eq!(x.transfers(), 2);
    }

    #[test]
    fn idle_port_starts_immediately() {
        let mut x = xbar();
        x.transfer(2, 10);
        // Port frees at 15; a request at 20 starts at 20.
        let done = x.transfer(2, 20);
        assert_eq!(done, 25);
        assert_eq!(x.contention_cycles(), 0);
    }

    #[test]
    fn control_messages_are_cheap() {
        let x = xbar();
        assert_eq!(x.control_latency(), 1);
    }

    #[test]
    fn mesh_hop_counts_on_2x2() {
        let m = Mesh::new(&SystemConfig::table2());
        // 4 cores on a 2x2 grid, L2 at (0,0): hops = x + y + 1.
        assert_eq!(m.hops(0), 1);
        assert_eq!(m.hops(1), 2);
        assert_eq!(m.hops(2), 2);
        assert_eq!(m.hops(3), 3);
    }

    #[test]
    fn mesh_transfers_scale_with_distance() {
        let mut m = Mesh::new(&SystemConfig::table2());
        let near = m.transfer(0, 0);
        let far = m.transfer(3, 0);
        assert_eq!(near, 6); // 1 hop x (5 + 1)
        assert_eq!(far, 18); // 3 hops x (5 + 1)
        assert!(m.control_latency(3) > m.control_latency(0));
        assert_eq!(m.transfers(), 2);
    }

    #[test]
    fn mesh_link_contention() {
        let mut m = Mesh::new(&SystemConfig::table2());
        let a = m.transfer(0, 0);
        let b = m.transfer(0, 0); // same path queues
        assert_eq!(a, 6);
        assert_eq!(b, 12);
        assert_eq!(m.contention_cycles(), 6);
    }

    #[test]
    fn network_dispatch_follows_config() {
        let xbar_net = Network::new(&SystemConfig::table2());
        assert!(matches!(xbar_net, Network::Crossbar(_)));
        let mesh_net = Network::new(&SystemConfig::table2().with_mesh());
        assert!(matches!(mesh_net, Network::Mesh(_)));
    }

    #[test]
    fn mesh_is_slower_than_crossbar_for_far_cores() {
        let mut net_x = Network::new(&SystemConfig::table2());
        let mut net_m = Network::new(&SystemConfig::table2().with_mesh());
        assert!(net_m.transfer(3, 100) > net_x.transfer(3, 100));
        assert!(net_m.control_latency(3) > net_x.control_latency(3));
    }
}
