//! A per-core fully associative TLB with LRU replacement.
//!
//! TLB misses feed the "avg #cycles between TLB misses" property of
//! Table 1 row 4 and the row 9 example, and contribute a fixed walk
//! penalty to load/store latency.

/// Fully associative translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, last-used stamp)
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB holding `capacity` page translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a page, filling on miss; returns `true` on a hit.
    pub fn access(&mut self, page: u64) -> bool {
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let (pos, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .expect("TLB is full, hence non-empty");
            self.entries.swap_remove(pos);
        }
        self.entries.push((page, self.stamp));
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // 2 becomes LRU
        t.access(3); // evicts 2
        assert!(t.access(1));
        assert!(!t.access(2));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn capacity_respected() {
        let mut t = Tlb::new(3);
        for p in 0..10 {
            t.access(p);
        }
        assert_eq!(t.entries.len(), 3);
    }
}
