//! Shared experiment drivers behind the per-figure harnesses.

use serde::Serialize;

use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;

use crate::population::{population, Population, PopulationKey};
use crate::report;
use crate::trial::{evaluate, Method, MethodEval, TrialConfig};

/// The ferret metrics the per-metric figures (6–9) sweep.
pub const FERRET_METRICS: [Metric; 6] = [
    Metric::RuntimeSeconds,
    Metric::Ipc,
    Metric::L1Mpki,
    Metric::L2Mpki,
    Metric::MaxLoadLatency,
    Metric::BranchMpki,
];

/// One figure row in JSON output.
#[derive(Debug, Clone, Serialize)]
pub struct EvalRow {
    /// Metric or benchmark label.
    pub label: String,
    /// Ground truth (population F-quantile).
    pub ground_truth: f64,
    /// Per-method results.
    pub methods: Vec<MethodEval>,
}

/// Geometric mean that tolerates zeros the way the paper's plots do
/// (zero error probabilities are clamped to 1/trials before averaging).
pub fn geomean(values: impl IntoIterator<Item = f64>, floor: f64) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(floor).ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Runs the §5.4 evaluation across ferret metrics and prints/saves both
/// an error-probability view and a width view (the Fig. 6/7 and 8/9
/// pairs).
pub fn eval_across_metrics(
    id: &str,
    title: &str,
    metrics: &[Metric],
    methods: &[Method],
    cfg: &TrialConfig,
    round_to_3_decimals: bool,
) -> Vec<EvalRow> {
    report::header(id, title);
    let pop = population(PopulationKey::standard(
        Benchmark::Ferret,
        crate::population_size(),
    ));
    let rows = eval_rows_for_population(&pop, metrics, methods, cfg, round_to_3_decimals);
    print_eval(&rows, methods, cfg);
    report::write_json(id, &rows);
    rows
}

/// As [`eval_across_metrics`] but sweeping benchmarks at a fixed metric
/// (the Fig. 10–13 pattern).
pub fn eval_across_benchmarks(
    id: &str,
    title: &str,
    metric: Metric,
    methods: &[Method],
    cfg: &TrialConfig,
) -> Vec<EvalRow> {
    report::header(id, title);
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let pop = population(PopulationKey::standard(bench, crate::population_size()));
        let samples = pop.metric(metric);
        let (gt, evals) = evaluate(&samples, methods, cfg);
        rows.push(EvalRow {
            label: bench.name().to_owned(),
            ground_truth: gt,
            methods: evals,
        });
    }
    print_eval(&rows, methods, cfg);
    report::write_json(id, &rows);
    rows
}

/// Evaluates each metric of one population.
pub fn eval_rows_for_population(
    pop: &Population,
    metrics: &[Metric],
    methods: &[Method],
    cfg: &TrialConfig,
    round_to_3_decimals: bool,
) -> Vec<EvalRow> {
    metrics
        .iter()
        .map(|&metric| {
            let mut samples = pop.metric(metric);
            if round_to_3_decimals {
                // Fig. 15: "round the simulator metrics to 3 digits past
                // the decimal to eliminate 'unreasonable' precision".
                for s in &mut samples {
                    *s = (*s * 1000.0).round() / 1000.0;
                }
            }
            let (gt, evals) = evaluate(&samples, methods, cfg);
            EvalRow {
                label: metric.name().to_owned(),
                ground_truth: gt,
                methods: evals,
            }
        })
        .collect()
}

/// Prints the paired error/width tables for a set of rows.
pub fn print_eval(rows: &[EvalRow], methods: &[Method], cfg: &TrialConfig) {
    let threshold = 1.0 - cfg.confidence;
    println!(
        "\n  {} trials x {} samples, C = {}, F = {}  (error must stay below {:.3})",
        cfg.trials, cfg.samples, cfg.confidence, cfg.proportion, threshold
    );

    println!("\n  CI error probability:");
    let mut columns = vec!["label", "ground truth"];
    columns.extend(methods.iter().map(|m| m.name()));
    columns.push("nulls");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.label.clone(), format!("{:.6}", r.ground_truth)];
            for e in &r.methods {
                let flag = if e.error_probability > threshold {
                    "*"
                } else {
                    ""
                };
                cells.push(format!("{:.3}{flag}", e.error_probability));
            }
            let nulls: Vec<String> = r
                .methods
                .iter()
                .filter(|e| e.null_fraction > 0.0)
                .map(|e| format!("{}={:.2}", e.method.name(), e.null_fraction))
                .collect();
            cells.push(if nulls.is_empty() {
                "-".into()
            } else {
                nulls.join(" ")
            });
            cells
        })
        .collect();
    report::table(&columns, &table_rows);
    println!("  (* = exceeds the requested error threshold)");

    println!("\n  Normalized mean CI width:");
    let mut columns = vec!["label"];
    columns.extend(methods.iter().map(|m| m.name()));
    let width_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.label.clone()];
            for e in &r.methods {
                cells.push(format!("{:.4}", e.mean_norm_width));
            }
            cells
        })
        .collect();
    report::table(&columns, &width_rows);

    // Geomean summary line, as the paper reports.
    let floor = 1.0 / cfg.trials as f64;
    print!("\n  geomean error:");
    for (i, m) in methods.iter().enumerate() {
        let g = geomean(rows.iter().map(|r| r.methods[i].error_probability), floor);
        print!("  {} = {:.3}", m.name(), g);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        let g = geomean([0.1, 0.1, 0.1], 1e-3);
        assert!((g - 0.1).abs() < 1e-12);
        // Zero is clamped to the floor rather than zeroing the product.
        let g = geomean([0.0, 0.1], 1e-3);
        assert!(g > 0.0);
        assert!(geomean(std::iter::empty::<f64>(), 1e-3).is_nan());
    }

    #[test]
    fn rounding_changes_samples() {
        use crate::population::{NoiseModel, SystemVariant};
        let key = PopulationKey {
            benchmark: Benchmark::Blackscholes,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count: 30,
            seed_start: 9200,
        };
        let pop = population(key);
        let cfg = TrialConfig {
            trials: 10,
            samples: 22,
            confidence: 0.9,
            proportion: 0.5,
            resamples: 50,
            seed: 1,
        };
        let plain = eval_rows_for_population(&pop, &[Metric::Ipc], &[Method::Spa], &cfg, false);
        let rounded = eval_rows_for_population(&pop, &[Metric::Ipc], &[Method::Spa], &cfg, true);
        // Rounded ground truth has at most 3 decimals.
        let gt = rounded[0].ground_truth;
        assert!((gt * 1000.0 - (gt * 1000.0).round()).abs() < 1e-9);
        assert_eq!(plain.len(), 1);
    }
}
