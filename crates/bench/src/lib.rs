#![warn(missing_docs)]

//! # spa-bench — the experiment harness
//!
//! One target per table/figure of the paper (see `DESIGN.md` for the
//! index). Each harness
//!
//! 1. obtains the required simulation populations (cached on disk under
//!    `target/spa-populations`, so reruns are fast),
//! 2. runs the statistical evaluation (1000 trials of 22 samples by
//!    default, §5.4), and
//! 3. prints the same rows/series the paper's figure reports, plus a
//!    JSON dump under `target/spa-results`.
//!
//! Environment overrides for quick runs:
//!
//! * `SPA_POPULATION` — population size (default 500; Fig. 1 uses 1000),
//! * `SPA_TRIALS` — trials per evaluation (default 1000),
//! * `SPA_RESAMPLES` — bootstrap resamples (default 2000).

pub mod band_bench;
pub mod batch_bench;
pub mod ci_bench;
pub mod event_bench;
pub mod experiment;
pub mod obs_bench;
pub mod pipeline_bench;
pub mod population;
pub mod report;
pub mod seq_bench;
pub mod trial;

mod error;

pub use error::PopulationError;

/// Reads a positive integer environment override.
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Population size for ground-truth populations (§5.3: 500).
pub fn population_size() -> usize {
    env_usize("SPA_POPULATION", 500)
}

/// Trials per CI-accuracy evaluation (§5.4: 1000).
pub fn trial_count() -> usize {
    env_usize("SPA_TRIALS", 1000)
}

/// Bootstrap resamples per CI construction.
pub fn bootstrap_resamples() -> usize {
    env_usize("SPA_RESAMPLES", 2000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parsing() {
        // Unset → default.
        std::env::remove_var("SPA_TEST_KNOB");
        assert_eq!(env_usize("SPA_TEST_KNOB", 7), 7);
        std::env::set_var("SPA_TEST_KNOB", "12");
        assert_eq!(env_usize("SPA_TEST_KNOB", 7), 12);
        std::env::set_var("SPA_TEST_KNOB", "0");
        assert_eq!(env_usize("SPA_TEST_KNOB", 7), 7); // zero rejected
        std::env::set_var("SPA_TEST_KNOB", "junk");
        assert_eq!(env_usize("SPA_TEST_KNOB", 7), 7);
        std::env::remove_var("SPA_TEST_KNOB");
    }
}
