use std::fmt;
use std::path::PathBuf;

use spa_sim::SimError;

/// Error type for population generation and the on-disk cache.
///
/// Cache-side failures ([`Io`](PopulationError::Io) and
/// [`Json`](PopulationError::Json)) always name the offending path, so a
/// harness log line is enough to locate — and delete — a bad cache file.
#[derive(Debug)]
pub enum PopulationError {
    /// Reading or writing a cache file failed.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A cache file exists but cannot be used: truncated or corrupt
    /// JSON, a cache-format version mismatch, or contents that answer a
    /// different population request.
    Json {
        /// The unusable cache file.
        path: PathBuf,
        /// Why it was rejected.
        detail: String,
    },
    /// The simulation itself failed (a workload or configuration bug);
    /// the population cannot be produced at all.
    Sim(SimError),
}

impl fmt::Display for PopulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopulationError::Io { path, source } => {
                write!(
                    f,
                    "population cache I/O failed for `{}`: {source}",
                    path.display()
                )
            }
            PopulationError::Json { path, detail } => {
                write!(
                    f,
                    "population cache file `{}` is unusable: {detail}",
                    path.display()
                )
            }
            PopulationError::Sim(e) => write!(f, "population simulation failed: {e}"),
        }
    }
}

impl std::error::Error for PopulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PopulationError::Io { source, .. } => Some(source),
            PopulationError::Sim(e) => Some(e),
            PopulationError::Json { .. } => None,
        }
    }
}

impl From<SimError> for PopulationError {
    fn from(e: SimError) -> Self {
        PopulationError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_path() {
        let e = PopulationError::Json {
            path: PathBuf::from("/tmp/ferret.json"),
            detail: "truncated".into(),
        };
        let s = e.to_string();
        assert!(s.contains("/tmp/ferret.json") && s.contains("truncated"));

        let e = PopulationError::Io {
            path: PathBuf::from("/tmp/x.json"),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope"),
        };
        assert!(e.to_string().contains("/tmp/x.json"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
