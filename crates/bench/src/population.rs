//! Simulation populations with a crash-safe disk cache.
//!
//! Ground-truth populations (§5.3: 500 executions per benchmark) are
//! expensive relative to the statistics, so they are generated once and
//! cached as JSON under `target/spa-populations/`, keyed by benchmark,
//! system variant, variability model, and population size. Delete the
//! directory to force regeneration.
//!
//! The cache is hardened against the failure modes long benchmark
//! campaigns actually hit: writes are atomic (temp file + rename, so a
//! killed process never leaves a half-written file under the real name),
//! every file carries a format version, and a truncated / corrupt /
//! version-mismatched / wrong-key file is detected, reported, and
//! regenerated instead of panicking.

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use spa_sim::config::SystemConfig;
use spa_sim::metrics::{ExecutionMetrics, Metric};
use spa_sim::runner::run_population_with;
use spa_sim::variability::Variability;
use spa_sim::workload::parsec::Benchmark;

use crate::PopulationError;

/// Which system the population was simulated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemVariant {
    /// The paper's Table 2 machine (3 MB L2).
    Table2,
    /// Table 2 with a 512 kB L2 (the §4.2 speedup study's base).
    L2Small,
    /// Table 2 with a 1 MB L2 (the speedup study's improved system).
    L2Large,
}

impl SystemVariant {
    /// Concrete configuration.
    pub fn config(&self) -> SystemConfig {
        match self {
            SystemVariant::Table2 => SystemConfig::table2(),
            SystemVariant::L2Small => SystemConfig::table2().with_l2_capacity(512 * 1024),
            SystemVariant::L2Large => SystemConfig::table2().with_l2_capacity(1024 * 1024),
        }
    }

    fn key(&self) -> &'static str {
        match self {
            SystemVariant::Table2 => "table2",
            SystemVariant::L2Small => "l2-512k",
            SystemVariant::L2Large => "l2-1m",
        }
    }
}

/// Which variability model drove the population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// §5.2 simulation model: uniform 0–4 cycle DRAM jitter.
    Paper,
    /// The "real machine" OS-noise model of Fig. 1.
    RealMachine,
    /// Explicit jitter bound (ablations).
    Jitter(u64),
}

impl NoiseModel {
    /// Concrete variability model.
    pub fn variability(&self) -> Variability {
        match self {
            NoiseModel::Paper => Variability::paper_default(),
            NoiseModel::RealMachine => Variability::real_machine(),
            NoiseModel::Jitter(0) => Variability::None,
            NoiseModel::Jitter(n) => Variability::DramJitter { max_cycles: *n },
        }
    }

    fn key(&self) -> String {
        match self {
            NoiseModel::Paper => "paper".into(),
            NoiseModel::RealMachine => "realmachine".into(),
            NoiseModel::Jitter(n) => format!("jitter{n}"),
        }
    }
}

/// A fully specified population request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationKey {
    /// Benchmark to run.
    pub benchmark: Benchmark,
    /// System variant.
    pub system: SystemVariant,
    /// Variability model.
    pub noise: NoiseModel,
    /// Number of executions.
    pub count: usize,
    /// First seed (populations with different seed bases are disjoint).
    pub seed_start: u64,
}

impl PopulationKey {
    /// Standard key: Table 2, paper noise, seeds from 0.
    pub fn standard(benchmark: Benchmark, count: usize) -> Self {
        Self {
            benchmark,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count,
            seed_start: 0,
        }
    }

    fn cache_file(&self) -> PathBuf {
        cache_dir().join(format!(
            "{}-{}-{}-n{}-s{}.json",
            self.benchmark.name(),
            self.system.key(),
            self.noise.key(),
            self.count,
            self.seed_start,
        ))
    }
}

fn cache_dir() -> PathBuf {
    // Keep the cache inside `target/` so `cargo clean` clears it.
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| {
        // If even the cwd is unavailable, a relative `target` still
        // works (or fails later with a path-naming cache error).
        let mut p = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        // Walk up to the WORKSPACE root: the outermost ancestor that
        // contains a Cargo.toml (crate dirs inside the workspace also
        // have one, so keep climbing while a parent qualifies).
        let mut root = p.clone();
        loop {
            if p.join("Cargo.toml").exists() {
                root = p.clone();
            }
            if !p.pop() {
                break;
            }
        }
        root.join("target").to_string_lossy().into_owned()
    });
    PathBuf::from(target).join("spa-populations")
}

/// A cached population: the metrics of every execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    /// The request this population answers.
    pub key: PopulationKey,
    /// Per-execution metrics, in seed order.
    pub runs: Vec<ExecutionMetrics>,
}

impl Population {
    /// Extracts one metric across the population.
    pub fn metric(&self, metric: Metric) -> Vec<f64> {
        self.runs.iter().map(|r| metric.extract(r)).collect()
    }
}

/// On-disk cache format version. Bump whenever [`Population`] or the
/// envelope changes shape; old files are then regenerated, not
/// misparsed.
const CACHE_FORMAT_VERSION: u32 = 1;

/// The versioned on-disk representation of a cached population.
#[derive(Debug, Deserialize)]
struct CacheEnvelope {
    version: u32,
    population: Population,
}

/// Borrowed counterpart of [`CacheEnvelope`] for writing.
#[derive(Serialize)]
struct CacheEnvelopeRef<'a> {
    version: u32,
    population: &'a Population,
}

/// Loads a cached population if a usable cache file exists.
///
/// Returns `Ok(None)` when no cache file exists (the ordinary cold
/// path).
///
/// # Errors
///
/// [`PopulationError::Io`] if the file exists but cannot be read, and
/// [`PopulationError::Json`] if it exists but is unusable — truncated or
/// corrupt JSON, a version mismatch, or contents answering a different
/// request. Both name the path; callers may delete the file and
/// regenerate (which is exactly what [`try_population`] does).
pub fn load_cached(key: PopulationKey) -> Result<Option<Population>, PopulationError> {
    let path = key.cache_file();
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PopulationError::Io { path, source: e }),
    };
    let envelope: CacheEnvelope =
        serde_json::from_slice(&bytes).map_err(|e| PopulationError::Json {
            path: path.clone(),
            detail: format!("truncated or corrupt JSON: {e}"),
        })?;
    if envelope.version != CACHE_FORMAT_VERSION {
        return Err(PopulationError::Json {
            path,
            detail: format!(
                "cache format version {} (this build expects {CACHE_FORMAT_VERSION})",
                envelope.version
            ),
        });
    }
    let pop = envelope.population;
    if pop.key != key || pop.runs.len() != key.count {
        return Err(PopulationError::Json {
            path,
            detail: format!(
                "contents answer a different request ({:?}, {} runs)",
                pop.key,
                pop.runs.len()
            ),
        });
    }
    Ok(Some(pop))
}

/// Writes the population to its cache file atomically: the JSON is
/// written to a temp file in the same directory and renamed into place,
/// so a crash mid-write can never leave a truncated file under the real
/// name.
///
/// # Errors
///
/// [`PopulationError::Io`] naming the path that failed.
pub fn store_cache(pop: &Population) -> Result<(), PopulationError> {
    let path = pop.key.cache_file();
    let dir = cache_dir();
    fs::create_dir_all(&dir).map_err(|e| PopulationError::Io {
        path: dir.clone(),
        source: e,
    })?;
    let envelope = CacheEnvelopeRef {
        version: CACHE_FORMAT_VERSION,
        population: pop,
    };
    let bytes = serde_json::to_vec(&envelope).map_err(|e| PopulationError::Json {
        path: path.clone(),
        detail: format!("serialization failed: {e}"),
    })?;
    let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
    fs::write(&tmp, &bytes).map_err(|e| PopulationError::Io {
        path: tmp.clone(),
        source: e,
    })?;
    fs::rename(&tmp, &path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        PopulationError::Io {
            path: path.clone(),
            source: e,
        }
    })
}

/// Loads the population from cache or simulates (and caches) it.
///
/// An unusable cache file (truncated, corrupt, wrong version, wrong
/// contents) is reported on stderr and regenerated — it never aborts a
/// campaign. Failure to *write* the cache afterwards is likewise only a
/// warning: the population itself is still returned.
///
/// # Errors
///
/// [`PopulationError::Sim`] if the simulation itself fails (a workload
/// or configuration bug).
pub fn try_population(key: PopulationKey) -> Result<Population, PopulationError> {
    match load_cached(key) {
        Ok(Some(pop)) => return Ok(pop),
        Ok(None) => {}
        Err(e @ (PopulationError::Io { .. } | PopulationError::Json { .. })) => {
            eprintln!("spa-bench: regenerating population: {e}");
        }
        Err(e) => return Err(e),
    }
    let spec = key.benchmark.workload();
    // run_population_with fans the seeds across the sim crate's batch
    // engine (one worker per available core); its output is
    // byte-identical to the sequential loop, so cached populations from
    // before the batch engine remain valid and cache keys need no
    // job-count component.
    let runs = run_population_with(
        key.system.config(),
        &spec,
        key.noise.variability(),
        key.seed_start,
        key.count as u64,
    )?;
    let pop = Population {
        key,
        runs: runs.into_iter().map(|r| r.metrics).collect(),
    };
    if let Err(e) = store_cache(&pop) {
        eprintln!("spa-bench: population cache write failed (continuing uncached): {e}");
    }
    Ok(pop)
}

/// Loads the population from cache or simulates (and caches) it.
///
/// Convenience wrapper over [`try_population`] for the figure harnesses.
///
/// # Panics
///
/// Panics if the simulation itself fails (a workload bug) — harnesses
/// treat that as fatal. Cache problems never panic; see
/// [`try_population`].
pub fn population(key: PopulationKey) -> Population {
    try_population(key).unwrap_or_else(|e| panic!("population generation failed: {e}"))
}

/// The speedup population of §5.2: pair execution `i` of the base
/// system with execution `i` of the improved system and divide their
/// runtimes (base / improved, so > 1 means the improved system wins).
pub fn speedup_samples(base: &Population, improved: &Population) -> Vec<f64> {
    base.runs
        .iter()
        .zip(&improved.runs)
        .map(|(b, i)| b.runtime_seconds / i.runtime_seconds)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_round_trip() {
        let key = PopulationKey {
            benchmark: Benchmark::Blackscholes,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count: 5,
            seed_start: 9000, // unlikely to collide with real runs
        };
        let _ = std::fs::remove_file(key.cache_file());
        let first = population(key);
        assert_eq!(first.runs.len(), 5);
        // Second call must hit the cache and agree exactly.
        let second = population(key);
        assert_eq!(first.runs, second.runs);
        assert!(key.cache_file().exists());
    }

    #[test]
    fn metric_extraction() {
        let key = PopulationKey {
            benchmark: Benchmark::Blackscholes,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count: 4,
            seed_start: 9100,
        };
        let pop = population(key);
        let rt = pop.metric(Metric::RuntimeSeconds);
        assert_eq!(rt.len(), 4);
        assert!(rt.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn speedup_pairing() {
        let a = Population {
            key: PopulationKey::standard(Benchmark::Ferret, 2),
            runs: vec![
                ExecutionMetrics {
                    runtime_seconds: 2.0,
                    ..Default::default()
                },
                ExecutionMetrics {
                    runtime_seconds: 3.0,
                    ..Default::default()
                },
            ],
        };
        let b = Population {
            key: PopulationKey::standard(Benchmark::Ferret, 2),
            runs: vec![
                ExecutionMetrics {
                    runtime_seconds: 1.0,
                    ..Default::default()
                },
                ExecutionMetrics {
                    runtime_seconds: 2.0,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(speedup_samples(&a, &b), vec![2.0, 1.5]);
    }

    fn tiny_key(seed_start: u64) -> PopulationKey {
        PopulationKey {
            benchmark: Benchmark::Blackscholes,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count: 3,
            seed_start,
        }
    }

    #[test]
    fn missing_cache_is_not_an_error() {
        let key = tiny_key(9200);
        let _ = std::fs::remove_file(key.cache_file());
        assert!(matches!(load_cached(key), Ok(None)));
    }

    #[test]
    fn corrupt_cache_is_detected_and_regenerated() {
        let key = tiny_key(9300);
        let path = key.cache_file();
        let _ = fs::create_dir_all(cache_dir());
        // A truncated file — the classic kill-during-write artifact of
        // the old non-atomic cache.
        fs::write(&path, br#"{"version":1,"population":{"key"#).unwrap();
        let err = load_cached(key).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("corrupt"), "{msg}");
        assert!(
            msg.contains(path.file_name().unwrap().to_str().unwrap()),
            "{msg}"
        );
        // try_population recovers: regenerates and leaves a good file.
        let pop = try_population(key).unwrap();
        assert_eq!(pop.runs.len(), 3);
        assert!(matches!(load_cached(key), Ok(Some(_))));
    }

    #[test]
    fn version_mismatch_is_detected() {
        let key = tiny_key(9400);
        let pop = try_population(key).unwrap();
        // Rewrite the valid file under a future version number.
        let json = serde_json::to_string(&CacheEnvelopeRef {
            version: CACHE_FORMAT_VERSION + 1,
            population: &pop,
        })
        .unwrap();
        fs::write(key.cache_file(), json).unwrap();
        let err = load_cached(key).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // And the panicking wrapper still serves the population.
        assert_eq!(population(key).runs.len(), 3);
    }

    #[test]
    fn wrong_contents_are_detected() {
        let a = tiny_key(9500);
        let b = tiny_key(9600);
        let pop_a = try_population(a).unwrap();
        // Store population A under B's file name.
        let json = serde_json::to_string(&CacheEnvelopeRef {
            version: CACHE_FORMAT_VERSION,
            population: &pop_a,
        })
        .unwrap();
        let _ = fs::create_dir_all(cache_dir());
        fs::write(b.cache_file(), json).unwrap();
        let err = load_cached(b).unwrap_err();
        assert!(err.to_string().contains("different request"), "{err}");
        let pop_b = try_population(b).unwrap();
        assert_eq!(pop_b.key, b);
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let key = tiny_key(9700);
        let _ = std::fs::remove_file(key.cache_file());
        let pop = try_population(key).unwrap();
        store_cache(&pop).unwrap();
        // Only this key's temp name — other tests may be mid-write.
        let tmp = key
            .cache_file()
            .with_extension(format!("json.tmp.{}", std::process::id()));
        assert!(!tmp.exists(), "temp file left behind: {}", tmp.display());
        assert!(key.cache_file().exists());
    }

    #[test]
    fn variant_configs_differ() {
        assert_eq!(
            SystemVariant::L2Small.config().l2.capacity_bytes,
            512 * 1024
        );
        assert_eq!(
            SystemVariant::L2Large.config().l2.capacity_bytes,
            1024 * 1024
        );
        assert_eq!(
            SystemVariant::Table2.config().l2.capacity_bytes,
            3 * 1024 * 1024
        );
    }
}
