//! Simulation populations with a disk cache.
//!
//! Ground-truth populations (§5.3: 500 executions per benchmark) are
//! expensive relative to the statistics, so they are generated once and
//! cached as JSON under `target/spa-populations/`, keyed by benchmark,
//! system variant, variability model, and population size. Delete the
//! directory to force regeneration.

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use spa_sim::config::SystemConfig;
use spa_sim::metrics::{ExecutionMetrics, Metric};
use spa_sim::runner::run_population_with;
use spa_sim::variability::Variability;
use spa_sim::workload::parsec::Benchmark;

/// Which system the population was simulated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemVariant {
    /// The paper's Table 2 machine (3 MB L2).
    Table2,
    /// Table 2 with a 512 kB L2 (the §4.2 speedup study's base).
    L2Small,
    /// Table 2 with a 1 MB L2 (the speedup study's improved system).
    L2Large,
}

impl SystemVariant {
    /// Concrete configuration.
    pub fn config(&self) -> SystemConfig {
        match self {
            SystemVariant::Table2 => SystemConfig::table2(),
            SystemVariant::L2Small => SystemConfig::table2().with_l2_capacity(512 * 1024),
            SystemVariant::L2Large => SystemConfig::table2().with_l2_capacity(1024 * 1024),
        }
    }

    fn key(&self) -> &'static str {
        match self {
            SystemVariant::Table2 => "table2",
            SystemVariant::L2Small => "l2-512k",
            SystemVariant::L2Large => "l2-1m",
        }
    }
}

/// Which variability model drove the population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// §5.2 simulation model: uniform 0–4 cycle DRAM jitter.
    Paper,
    /// The "real machine" OS-noise model of Fig. 1.
    RealMachine,
    /// Explicit jitter bound (ablations).
    Jitter(u64),
}

impl NoiseModel {
    /// Concrete variability model.
    pub fn variability(&self) -> Variability {
        match self {
            NoiseModel::Paper => Variability::paper_default(),
            NoiseModel::RealMachine => Variability::real_machine(),
            NoiseModel::Jitter(0) => Variability::None,
            NoiseModel::Jitter(n) => Variability::DramJitter { max_cycles: *n },
        }
    }

    fn key(&self) -> String {
        match self {
            NoiseModel::Paper => "paper".into(),
            NoiseModel::RealMachine => "realmachine".into(),
            NoiseModel::Jitter(n) => format!("jitter{n}"),
        }
    }
}

/// A fully specified population request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationKey {
    /// Benchmark to run.
    pub benchmark: Benchmark,
    /// System variant.
    pub system: SystemVariant,
    /// Variability model.
    pub noise: NoiseModel,
    /// Number of executions.
    pub count: usize,
    /// First seed (populations with different seed bases are disjoint).
    pub seed_start: u64,
}

impl PopulationKey {
    /// Standard key: Table 2, paper noise, seeds from 0.
    pub fn standard(benchmark: Benchmark, count: usize) -> Self {
        Self {
            benchmark,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count,
            seed_start: 0,
        }
    }

    fn cache_file(&self) -> PathBuf {
        cache_dir().join(format!(
            "{}-{}-{}-n{}-s{}.json",
            self.benchmark.name(),
            self.system.key(),
            self.noise.key(),
            self.count,
            self.seed_start,
        ))
    }
}

fn cache_dir() -> PathBuf {
    // Keep the cache inside `target/` so `cargo clean` clears it.
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| {
        let mut p = std::env::current_dir().expect("cwd");
        // Walk up to the WORKSPACE root: the outermost ancestor that
        // contains a Cargo.toml (crate dirs inside the workspace also
        // have one, so keep climbing while a parent qualifies).
        let mut root = p.clone();
        loop {
            if p.join("Cargo.toml").exists() {
                root = p.clone();
            }
            if !p.pop() {
                break;
            }
        }
        root.join("target").to_string_lossy().into_owned()
    });
    PathBuf::from(target).join("spa-populations")
}

/// A cached population: the metrics of every execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    /// The request this population answers.
    pub key: PopulationKey,
    /// Per-execution metrics, in seed order.
    pub runs: Vec<ExecutionMetrics>,
}

impl Population {
    /// Extracts one metric across the population.
    pub fn metric(&self, metric: Metric) -> Vec<f64> {
        self.runs.iter().map(|r| metric.extract(r)).collect()
    }
}

/// Loads the population from cache or simulates (and caches) it.
///
/// # Panics
///
/// Panics if the simulation itself fails (a workload bug) — harnesses
/// treat that as fatal.
pub fn population(key: PopulationKey) -> Population {
    let path = key.cache_file();
    if let Ok(bytes) = fs::read(&path) {
        if let Ok(pop) = serde_json::from_slice::<Population>(&bytes) {
            if pop.key == key && pop.runs.len() == key.count {
                return pop;
            }
        }
    }
    let spec = key.benchmark.workload();
    let runs = run_population_with(
        key.system.config(),
        &spec,
        key.noise.variability(),
        key.seed_start,
        key.count as u64,
    )
    .expect("simulation failed");
    let pop = Population {
        key,
        runs: runs.into_iter().map(|r| r.metrics).collect(),
    };
    let _ = fs::create_dir_all(cache_dir());
    if let Ok(bytes) = serde_json::to_vec(&pop) {
        let _ = fs::write(&path, bytes);
    }
    pop
}

/// The speedup population of §5.2: pair execution `i` of the base
/// system with execution `i` of the improved system and divide their
/// runtimes (base / improved, so > 1 means the improved system wins).
pub fn speedup_samples(base: &Population, improved: &Population) -> Vec<f64> {
    base.runs
        .iter()
        .zip(&improved.runs)
        .map(|(b, i)| b.runtime_seconds / i.runtime_seconds)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_round_trip() {
        let key = PopulationKey {
            benchmark: Benchmark::Blackscholes,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count: 5,
            seed_start: 9000, // unlikely to collide with real runs
        };
        let _ = std::fs::remove_file(key.cache_file());
        let first = population(key);
        assert_eq!(first.runs.len(), 5);
        // Second call must hit the cache and agree exactly.
        let second = population(key);
        assert_eq!(first.runs, second.runs);
        assert!(key.cache_file().exists());
    }

    #[test]
    fn metric_extraction() {
        let key = PopulationKey {
            benchmark: Benchmark::Blackscholes,
            system: SystemVariant::Table2,
            noise: NoiseModel::Paper,
            count: 4,
            seed_start: 9100,
        };
        let pop = population(key);
        let rt = pop.metric(Metric::RuntimeSeconds);
        assert_eq!(rt.len(), 4);
        assert!(rt.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn speedup_pairing() {
        let a = Population {
            key: PopulationKey::standard(Benchmark::Ferret, 2),
            runs: vec![
                ExecutionMetrics {
                    runtime_seconds: 2.0,
                    ..Default::default()
                },
                ExecutionMetrics {
                    runtime_seconds: 3.0,
                    ..Default::default()
                },
            ],
        };
        let b = Population {
            key: PopulationKey::standard(Benchmark::Ferret, 2),
            runs: vec![
                ExecutionMetrics {
                    runtime_seconds: 1.0,
                    ..Default::default()
                },
                ExecutionMetrics {
                    runtime_seconds: 2.0,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(speedup_samples(&a, &b), vec![2.0, 1.5]);
    }

    #[test]
    fn variant_configs_differ() {
        assert_eq!(
            SystemVariant::L2Small.config().l2.capacity_bytes,
            512 * 1024
        );
        assert_eq!(
            SystemVariant::L2Large.config().l2.capacity_bytes,
            1024 * 1024
        );
        assert_eq!(
            SystemVariant::Table2.config().l2.capacity_bytes,
            3 * 1024 * 1024
        );
    }
}
