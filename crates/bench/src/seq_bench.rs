//! The PR 7 perf measurement: what the anytime-valid engine buys and
//! costs, written to `BENCH_pr7.json` at the workspace root.
//!
//! The workload is a seeded synthetic Bernoulli stream (a splitmix64
//! hash of the seed mapped to `[0, 1)`, satisfied below a 0.9
//! threshold) run through [`spa_core::seq::run_anytime`] — the same
//! driver the server's streaming jobs use, minus the simulator so the
//! numbers isolate the statistics. Three things are measured:
//!
//! * samples-to-decision: how many observations each anytime boundary
//!   needs before its interval reaches the target width, vs the
//!   a-priori fixed-`N` Hoeffding budget ([`hoeffding_fixed_n`]) at the
//!   same confidence and width — the "commit before looking" baseline,
//! * the headline `betting_savings_ratio` — fixed-`N` samples over the
//!   betting sequence's samples-to-decision (> 1 means the anytime mode
//!   reaches the same-width verdict on less data *and* stays valid at
//!   every earlier stopping time, which fixed-`N` does not),
//! * per-update cost of [`AnytimeRun::observe`] for each boundary, ns —
//!   the price a streaming round pays over plain counting (Hoeffding is
//!   closed-form; betting runs two bisections over `ln_beta`).
//!
//! Before timing anything, [`measure`] cross-checks the engine the way
//! the PR 3–5 harnesses do: both anytime runs must stop on
//! `TargetWidth` with a clean failure ledger, and the betting run must
//! beat the fixed-`N` budget (the bench-smoke CI job enforces the same
//! floor on the emitted JSON).
//!
//! Like the PR 3–6 baselines, the same measurement runs three ways: the
//! `pr7_anytime` bench binary, the CI bench-smoke job (which uploads
//! the JSON), and a quick smoke test so every `cargo test` refreshes
//! the file.

use std::hint::black_box;
use std::path::{Path, PathBuf};

use spa_core::fault::{RetryPolicy, SampleError};
use spa_core::property::{Direction, MetricProperty};
use spa_core::seq::{
    hoeffding_fixed_n, run_anytime, AnytimeConfig, AnytimeReport, AnytimeRun, Boundary, StopReason,
};

/// Nominal simultaneous confidence for every run in this harness.
pub const CONFIDENCE: f64 = 0.9;
/// Interval width both anytime runs and the fixed-`N` baseline target.
pub const TARGET_WIDTH: f64 = 0.2;
/// Satisfaction threshold on the uniform synthetic metric — the true
/// proportion of the stream.
pub const THRESHOLD: f64 = 0.9;
/// Observations folded per update round (the server's default order of
/// magnitude).
pub const ROUND_SIZE: u64 = 8;

/// Measured PR 7 anytime-engine numbers (serialized as
/// `BENCH_pr7.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Pr7Report {
    /// Harness identifier.
    pub bench: &'static str,
    /// Nominal confidence shared by every run.
    pub confidence: f64,
    /// Interval width all decisions target.
    pub target_width: f64,
    /// True satisfaction proportion of the synthetic stream.
    pub true_proportion: f64,
    /// The a-priori fixed-`N` Hoeffding budget at the same confidence
    /// and width.
    pub fixed_n_samples: u64,
    /// Samples until the betting sequence's interval reached the width.
    pub betting_samples_to_width: u64,
    /// Samples until the stitched Hoeffding sequence reached the width.
    pub hoeffding_samples_to_width: u64,
    /// `fixed_n_samples / betting_samples_to_width` — the headline.
    pub betting_savings_ratio: f64,
    /// Final betting interval width at its stop (≤ `target_width`).
    pub betting_final_width: f64,
    /// One betting `observe` round (bisections included), ns.
    pub betting_update_ns: u64,
    /// One Hoeffding `observe` round (closed form), ns.
    pub hoeffding_update_ns: u64,
}

/// A splitmix64 step — the synthetic metric is its output mapped to
/// `[0, 1)`, so the stream is seeded, i.i.d.-looking, and free of the
/// simulator's cost.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The synthetic metric at `seed`: uniform on `[0, 1)`.
fn metric(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs one anytime stream to its width target and returns the report.
fn run_to_width(boundary: Boundary, seed_start: u64) -> AnytimeReport {
    let sampler = |seed: u64| -> std::result::Result<f64, SampleError> { Ok(metric(seed)) };
    let property = MetricProperty::new(Direction::AtMost, THRESHOLD);
    let config = AnytimeConfig {
        boundary,
        confidence: CONFIDENCE,
        target_width: Some(TARGET_WIDTH),
        max_samples: 1 << 20,
        round_size: ROUND_SIZE,
    };
    run_anytime(
        &sampler,
        &property,
        seed_start,
        &RetryPolicy::no_retry(),
        &config,
        None,
        |_| {},
    )
    .expect("anytime run on a clean synthetic stream")
}

/// Mean ns per `observe` round for one boundary: a long pre-generated
/// outcome stream folded round by round, restarting the run when the
/// stream is exhausted so state stays in the regime the server sees.
fn update_ns(boundary: Boundary, iters: u32) -> u64 {
    let outcomes: Vec<bool> = (0..4096u64).map(|i| metric(i) <= THRESHOLD).collect();
    let rounds: Vec<&[bool]> = outcomes.chunks(ROUND_SIZE as usize).collect();
    let mut run = AnytimeRun::new(boundary.sequence(CONFIDENCE).expect("valid confidence"));
    let mut next = 0usize;
    crate::obs_bench::mean_ns(iters, || {
        if next == rounds.len() {
            run = AnytimeRun::new(boundary.sequence(CONFIDENCE).expect("valid confidence"));
            next = 0;
        }
        black_box(run.observe(black_box(rounds[next])));
        next += 1;
    })
}

/// Runs the measurement: both boundaries to the width target
/// (deterministic sample counts — no timing involved), the fixed-`N`
/// baseline budget, and `update_iters` timed `observe` rounds per
/// boundary.
///
/// Panics if either anytime run fails to stop on `TargetWidth`, records
/// a sampling failure, or the betting run needs at least the fixed-`N`
/// budget — this harness doubles as the PR's acceptance check.
pub fn measure(update_iters: u32) -> Pr7Report {
    let fixed_n = hoeffding_fixed_n(CONFIDENCE, TARGET_WIDTH);
    let betting = run_to_width(Boundary::Betting, 0x5EC7_0000);
    let hoeffding = run_to_width(Boundary::Hoeffding, 0x5EC7_0000);
    for report in [&betting, &hoeffding] {
        assert_eq!(report.stop, StopReason::TargetWidth, "{report:?}");
        assert!(report.failures.is_clean(), "{report:?}");
        assert!(report.width() <= TARGET_WIDTH, "{report:?}");
    }
    assert!(
        betting.samples < fixed_n,
        "betting needed {} samples, fixed-N budget is {fixed_n}",
        betting.samples
    );

    Pr7Report {
        bench: "pr7_anytime",
        confidence: CONFIDENCE,
        target_width: TARGET_WIDTH,
        true_proportion: THRESHOLD,
        fixed_n_samples: fixed_n,
        betting_samples_to_width: betting.samples,
        hoeffding_samples_to_width: hoeffding.samples,
        betting_savings_ratio: fixed_n as f64 / betting.samples.max(1) as f64,
        betting_final_width: betting.width(),
        betting_update_ns: update_ns(Boundary::Betting, update_iters),
        hoeffding_update_ns: update_ns(Boundary::Hoeffding, update_iters),
    }
}

/// The canonical output location: `BENCH_pr7.json` at the workspace
/// root, next to `Cargo.toml`.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr7.json")
}

/// Serializes `report` as pretty JSON (with a trailing newline) to
/// `path`.
///
/// # Errors
///
/// I/O failures writing the file.
pub fn write_json(report: &Pr7Report, path: &Path) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(report).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_to_decision_beats_the_fixed_n_budget() {
        // The cheap half of the measurement (no timing loops): the
        // anytime runs are deterministic, so this doubles as the
        // sample-savings regression `cargo test` re-checks every run.
        let report = measure(50);
        assert!(report.betting_savings_ratio > 1.0, "{report:?}");
        assert!(report.betting_samples_to_width > 0);
        assert_eq!(report.fixed_n_samples, 150);
    }

    #[test]
    fn report_serializes_with_required_fields() {
        let report = measure(10);
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(v["bench"], "pr7_anytime");
        assert!(v["betting_savings_ratio"].as_f64().unwrap() > 1.0);
        assert!(v["fixed_n_samples"].as_u64().unwrap() > 0);
        assert!(v["betting_update_ns"].as_u64().unwrap() > 0);
    }
}
