//! The PR 10 perf measurement: what the event-driven simulator core
//! (idle-skip + run-ahead scheduling) buys over the pre-refactor
//! quantum-stepped loop, written to `BENCH_pr10.json` at the workspace
//! root.
//!
//! The workload is a quarter-scale blackscholes sample stream on the
//! Table 2 machine, fixed seeds, one machine, one thread — this
//! measures the single-machine engine itself, not the PR 8 worker pool
//! (the two compose: each batch worker runs this engine). Two costs
//! are measured:
//!
//! * the quantum-stepped path — `Machine::run_quantum_stepped`, the
//!   old loop kept verbatim inside spa-sim as the differential oracle,
//! * the event-driven path — `Machine::run`, the `sched`-module core.
//!
//! The headline is `speedup` — quantum wall-clock over event-driven
//! wall-clock for the same seeds. Before timing anything, [`measure`]
//! cross-checks the tentpole's determinism contract the way the
//! PR 3/4/5/8 harnesses do: both engines must produce *equal* (not
//! just statistically alike) `ExecutionResult`s on every seed it
//! times, so a measured speedup can never come from computing
//! something different.
//!
//! Like the earlier baselines, the same measurement runs three ways:
//! the `pr10_event_core` bench binary, the CI bench-smoke job (which
//! validates the schema, enforces the ≥1.3× floor, and uploads the
//! JSON), and a quick smoke test so `cargo test` exercises the harness.

use std::path::{Path, PathBuf};
use std::time::Instant;

use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;
use spa_sim::workload::WorkloadSpec;

/// Measured PR 10 event-core numbers (serialized as `BENCH_pr10.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Pr10Report {
    /// Harness identifier.
    pub bench: &'static str,
    /// Executions per timed pass (seeds `0..samples`).
    pub samples: u64,
    /// Timed passes per engine; the fastest pass is reported.
    pub passes: u32,
    /// Fastest quantum-stepped pass, milliseconds.
    pub quantum_total_ms: f64,
    /// Fastest event-driven pass, milliseconds.
    pub event_total_ms: f64,
    /// Samples per second through the quantum-stepped loop.
    pub quantum_samples_per_sec: f64,
    /// Samples per second through the event-driven core.
    pub event_samples_per_sec: f64,
    /// `quantum_total_ms / event_total_ms` — the PR's headline: what
    /// idle-skip and run-ahead buy on one machine.
    pub speedup: f64,
}

fn bench_workload() -> WorkloadSpec {
    Benchmark::Blackscholes.workload_scaled(0.25)
}

/// One timed pass over the fixed seed range with one engine; returns
/// seconds.
fn timed_pass(machine: &Machine<'_>, count: u64, event_driven: bool) -> f64 {
    let start = Instant::now();
    let mut cycles = 0u64;
    for seed in 0..count {
        let result = if event_driven {
            machine.run(seed)
        } else {
            machine.run_quantum_stepped(seed)
        }
        .expect("benchmark execution");
        cycles = cycles.max(result.metrics.runtime_cycles);
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(cycles > 0, "executions must simulate something");
    secs
}

/// Runs the measurement: cross-checks event-vs-quantum equality on
/// every seed of the Table 2 blackscholes stream, then times `passes`
/// full passes per engine and keeps each engine's fastest pass.
///
/// Panics on simulator errors and on any cross-check disagreement —
/// this is a bench harness with a known-valid fixed configuration.
pub fn measure(count: u64, passes: u32) -> Pr10Report {
    assert!(count > 0 && passes > 0, "empty measurement");
    let spec = bench_workload();
    let machine = Machine::new(SystemConfig::table2(), &spec).expect("benchmark machine");

    // Cross-check before timing: the tentpole's identity contract. A
    // speedup over a *different* computation would be meaningless.
    for seed in 0..count {
        let event = machine.run(seed).expect("event-driven execution");
        let quantum = machine
            .run_quantum_stepped(seed)
            .expect("quantum-stepped execution");
        assert_eq!(event, quantum, "engines diverged at seed {seed}");
    }

    let fastest = |event_driven: bool| {
        (0..passes)
            .map(|_| timed_pass(&machine, count, event_driven))
            .fold(f64::INFINITY, f64::min)
    };
    let quantum_secs = fastest(false);
    let event_secs = fastest(true);

    Pr10Report {
        bench: "pr10_event_core",
        samples: count,
        passes,
        quantum_total_ms: quantum_secs * 1e3,
        event_total_ms: event_secs * 1e3,
        quantum_samples_per_sec: count as f64 / quantum_secs.max(1e-9),
        event_samples_per_sec: count as f64 / event_secs.max(1e-9),
        speedup: quantum_secs / event_secs.max(1e-9),
    }
}

/// The canonical output location: `BENCH_pr10.json` at the workspace
/// root, next to `Cargo.toml`.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr10.json")
}

/// Serializes `report` as pretty JSON (with a trailing newline) to
/// `path`.
///
/// # Errors
///
/// I/O failures writing the file.
pub fn write_json(report: &Pr10Report, path: &Path) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(report).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_required_fields() {
        let report = Pr10Report {
            bench: "pr10_event_core",
            samples: 64,
            passes: 3,
            quantum_total_ms: 900.0,
            event_total_ms: 500.0,
            quantum_samples_per_sec: 71.0,
            event_samples_per_sec: 128.0,
            speedup: 1.8,
        };
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(v["bench"], "pr10_event_core");
        assert!(v["speedup"].as_f64().unwrap() > 1.0);
        assert!(v["event_samples_per_sec"].as_f64().unwrap() > 0.0);
        assert!(v["quantum_samples_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn small_measurement_is_consistent() {
        // No speedup assertion here — a loaded test machine may not
        // deliver one on a tiny pass. CI enforces the ≥1.3× floor on
        // the real bench run.
        let report = measure(4, 1);
        assert_eq!(report.bench, "pr10_event_core");
        assert_eq!(report.samples, 4);
        assert!(report.quantum_samples_per_sec > 0.0);
        assert!(report.event_samples_per_sec > 0.0);
        assert!(report.speedup > 0.0);
    }
}
