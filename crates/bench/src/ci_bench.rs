//! The PR 4 perf measurement: the indexed CI-construction engine
//! against the pre-engine linear scans, written to `BENCH_pr4.json` at
//! the workspace root.
//!
//! The workload is the Fig. 4 study — ferret L2-doubling speedups,
//! `C = F = 0.9`, `Direction::AtLeast`, 22 samples (Eq. 8 minimum) — on
//! a much denser threshold grid than the figure plots, which is exactly
//! where the engine pays off: the naive sweep costs an O(n) count plus
//! two Clopper–Pearson evaluations *per threshold*, while the engine
//! costs an O(log n) indexed count per threshold plus O(distinct
//! counts) Clopper–Pearson evaluations *total*.
//!
//! The baseline here is rebuilt from the same public pieces the old
//! code used (`MetricProperty::count_satisfying`, `positive_confidence`,
//! `SmcEngine::run_counts`) — the verbatim pre-engine code survives only
//! as spa-core's `#[cfg(test)]` differential oracle. Before timing
//! anything, [`measure`] asserts the two paths agree bit-for-bit, so
//! the reported speedup is never comparing different answers.
//!
//! Like the PR 3 baseline, the same measurement runs three ways: the
//! `pr4_ci_engine` bench binary, the CI bench-smoke job (which checks
//! the ≥ 5× sweep-speedup acceptance floor and uploads the JSON), and a
//! quick smoke test so every `cargo test` refreshes the file.

use std::hint::black_box;
use std::path::{Path, PathBuf};

use spa_core::ci::{ci_exact, sweep, SweepPoint};
use spa_core::clopper_pearson::{positive_confidence, Assertion};
use spa_core::obs_names;
use spa_core::property::{Direction, MetricProperty};
use spa_core::smc::SmcEngine;
use spa_obs::metrics::global;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

use crate::obs_bench::mean_ns;
use crate::population::SystemVariant;

/// Measured PR 4 engine-vs-naive numbers (serialized as
/// `BENCH_pr4.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Pr4Report {
    /// Harness identifier.
    pub bench: &'static str,
    /// Speedup executions in the sample (Eq. 8 minimum at C = F = 0.9).
    pub samples: u64,
    /// Thresholds in the dense Fig. 4-style sweep grid.
    pub grid_points: u64,
    /// Pre-engine sweep throughput: O(n) count + fresh Clopper–Pearson
    /// per threshold.
    pub naive_thresholds_per_sec: f64,
    /// Indexed-engine sweep throughput over the identical grid.
    pub indexed_thresholds_per_sec: f64,
    /// `indexed_thresholds_per_sec / naive_thresholds_per_sec` — the
    /// PR's acceptance headline (floor: 5×).
    pub sweep_speedup: f64,
    /// End-to-end exact-CI latency of the pre-engine linear scan, ns.
    pub naive_ci_exact_ns: u64,
    /// End-to-end exact-CI latency through the engine (bisection over
    /// order statistics), ns.
    pub indexed_ci_exact_ns: u64,
    /// `naive_ci_exact_ns / indexed_ci_exact_ns`.
    pub ci_exact_speedup: f64,
    /// `core.ci.index_hits` accumulated by one indexed sweep: every
    /// threshold answered by the sorted-sample index.
    pub index_hits_per_sweep: u64,
    /// `core.ci.cp_cache_hits` accumulated by one indexed sweep:
    /// thresholds whose Clopper–Pearson evaluation was served from the
    /// per-count memo instead of recomputed.
    pub cp_cache_hits_per_sweep: u64,
}

/// The Fig. 4 speedup sample at smoke-test cost: 22 paired
/// quarter-scale ferret executions on the 512 kB and 1 MB L2 variants,
/// paper variability, fixed seeds.
fn speedup_sample() -> Vec<f64> {
    let spec = Benchmark::Ferret.workload_scaled(0.25);
    let small = Machine::new(SystemVariant::L2Small.config(), &spec).expect("machine config");
    let large = Machine::new(SystemVariant::L2Large.config(), &spec).expect("machine config");
    (0..22)
        .map(|seed| {
            let base = small.run(seed).expect("simulation failed");
            let improved = large.run(10_000 + seed).expect("simulation failed");
            base.metrics.runtime_seconds / improved.metrics.runtime_seconds
        })
        .collect()
}

/// The pre-engine sweep, rebuilt from public API: per threshold, an
/// O(n) satisfaction count, a fresh positive Clopper–Pearson
/// confidence, and a fresh Algorithm 2 verdict.
fn naive_sweep(
    engine: &SmcEngine,
    samples: &[f64],
    direction: Direction,
    thresholds: &[f64],
) -> Vec<SweepPoint> {
    let n = samples.len() as u64;
    thresholds
        .iter()
        .map(|&v| {
            let m = MetricProperty::new(direction, v).count_satisfying(samples);
            SweepPoint {
                threshold: v,
                positive_confidence: positive_confidence(m, n, engine.proportion())
                    .expect("valid counts"),
                verdict: engine.run_counts(m, n).expect("valid counts").assertion,
            }
        })
        .collect()
}

/// The pre-engine exact CI, rebuilt from public API: an ascending
/// linear scan over the distinct sample values, one O(n) count and one
/// fresh verdict per value, stopping at the first high-polarity
/// verdict.
fn naive_ci_exact_bounds(engine: &SmcEngine, samples: &[f64], direction: Direction) -> (f64, f64) {
    let mut values = samples.to_vec();
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in bench data"));
    values.dedup();
    let n = samples.len() as u64;
    let low_polarity = match direction {
        Direction::AtMost => Assertion::Negative,
        Direction::AtLeast => Assertion::Positive,
    };

    let below_min_m = match direction {
        Direction::AtMost => 0,
        Direction::AtLeast => n,
    };
    let below = engine.run_counts(below_min_m, n).expect("valid counts");
    let mut lower = (below.assertion == Some(low_polarity)).then(|| values[0]);
    let mut upper = None;
    for &v in &values {
        let m = MetricProperty::new(direction, v).count_satisfying(samples);
        match engine.run_counts(m, n).expect("valid counts").assertion {
            Some(a) if a == low_polarity => lower = Some(v),
            Some(_) => {
                upper = Some(v);
                break;
            }
            None => {}
        }
    }
    if upper.is_none() {
        let above_max_m = match direction {
            Direction::AtMost => n,
            Direction::AtLeast => 0,
        };
        let above = engine.run_counts(above_max_m, n).expect("valid counts");
        if above.assertion.is_some_and(|a| a != low_polarity) {
            upper = values.last().copied();
        }
    }
    (
        lower.unwrap_or(f64::NEG_INFINITY),
        upper.unwrap_or(f64::INFINITY),
    )
}

fn assert_sweeps_identical(naive: &[SweepPoint], indexed: &[SweepPoint]) {
    assert_eq!(naive.len(), indexed.len());
    for (a, b) in naive.iter().zip(indexed) {
        assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
        assert_eq!(
            a.positive_confidence.to_bits(),
            b.positive_confidence.to_bits(),
            "positive confidence diverged at threshold {}",
            a.threshold
        );
        assert_eq!(a.verdict, b.verdict, "verdict diverged at {}", a.threshold);
    }
}

/// Runs the measurement: builds the Fig. 4 speedup sample, lays a dense
/// ~2000-point threshold grid over it, asserts the naive and indexed
/// paths agree bit-for-bit, then times sweeps (`sweep_iters` each) and
/// end-to-end exact CI constructions (`ci_iters` each), and reads the
/// engine's counters off one additional sweep.
///
/// Panics on simulator or engine configuration errors, and on any
/// naive/indexed disagreement — this is a bench harness with a
/// known-valid fixed configuration.
pub fn measure(sweep_iters: u32, ci_iters: u32) -> Pr4Report {
    let sample = speedup_sample();
    let engine = SmcEngine::new(0.9, 0.9).expect("valid C/F");
    let direction = Direction::AtLeast;

    let lo = sample.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // Fig. 4 plots ~a hundred grid points; the engine's regime is the
    // dense sweep, so lay ~2000 points across the same span (one grain
    // beyond each end, like the figure's grid).
    let grain = (hi - lo) / 1998.0;
    let thresholds: Vec<f64> = (0..=2000)
        .map(|i| (lo - grain) + i as f64 * grain)
        .collect();

    let naive_points = naive_sweep(&engine, &sample, direction, &thresholds);
    let indexed_points = sweep(&engine, &sample, direction, &thresholds).expect("sweep");
    assert_sweeps_identical(&naive_points, &indexed_points);

    let naive_sweep_ns = mean_ns(sweep_iters, || {
        black_box(naive_sweep(
            &engine,
            black_box(&sample),
            direction,
            black_box(&thresholds),
        ));
    });
    let indexed_sweep_ns = mean_ns(sweep_iters, || {
        black_box(
            sweep(
                &engine,
                black_box(&sample),
                direction,
                black_box(&thresholds),
            )
            .unwrap(),
        );
    });

    let (naive_lower, naive_upper) = naive_ci_exact_bounds(&engine, &sample, direction);
    let indexed_ci = ci_exact(&engine, &sample, direction).expect("ci");
    assert_eq!(naive_lower.to_bits(), indexed_ci.lower().to_bits());
    assert_eq!(naive_upper.to_bits(), indexed_ci.upper().to_bits());

    let naive_ci_ns = mean_ns(ci_iters, || {
        black_box(naive_ci_exact_bounds(
            &engine,
            black_box(&sample),
            direction,
        ));
    });
    let indexed_ci_ns = mean_ns(ci_iters, || {
        black_box(ci_exact(&engine, black_box(&sample), direction).unwrap());
    });

    // One more sweep with counter deltas around it: the engine flushes
    // its tallies into the global registry when dropped (at the end of
    // the `sweep` call).
    let before = global().snapshot();
    let _ = sweep(&engine, &sample, direction, &thresholds).expect("sweep");
    let after = global().snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);

    let per_sec = |ns: u64| thresholds.len() as f64 / (ns.max(1) as f64 / 1e9);
    Pr4Report {
        bench: "pr4_ci_engine",
        samples: sample.len() as u64,
        grid_points: thresholds.len() as u64,
        naive_thresholds_per_sec: per_sec(naive_sweep_ns),
        indexed_thresholds_per_sec: per_sec(indexed_sweep_ns),
        sweep_speedup: naive_sweep_ns as f64 / indexed_sweep_ns.max(1) as f64,
        naive_ci_exact_ns: naive_ci_ns,
        indexed_ci_exact_ns: indexed_ci_ns,
        ci_exact_speedup: naive_ci_ns as f64 / indexed_ci_ns.max(1) as f64,
        index_hits_per_sweep: delta(obs_names::CI_INDEX_HITS),
        cp_cache_hits_per_sweep: delta(obs_names::CP_CACHE_HITS),
    }
}

/// The canonical output location: `BENCH_pr4.json` at the workspace
/// root, next to `Cargo.toml`.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr4.json")
}

/// Serializes `report` as pretty JSON (with a trailing newline) to
/// `path`.
///
/// # Errors
///
/// I/O failures writing the file.
pub fn write_json(report: &Pr4Report, path: &Path) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(report).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_required_fields() {
        let report = Pr4Report {
            bench: "pr4_ci_engine",
            samples: 22,
            grid_points: 2001,
            naive_thresholds_per_sec: 1.0e6,
            indexed_thresholds_per_sec: 2.0e7,
            sweep_speedup: 20.0,
            naive_ci_exact_ns: 9000,
            indexed_ci_exact_ns: 3000,
            ci_exact_speedup: 3.0,
            index_hits_per_sweep: 2001,
            cp_cache_hits_per_sweep: 1978,
        };
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(v["bench"], "pr4_ci_engine");
        assert_eq!(v["grid_points"], 2001);
        assert!(v["sweep_speedup"].as_f64().unwrap() > 1.0);
        assert!(v["index_hits_per_sweep"].as_u64().unwrap() > 0);
    }

    #[test]
    fn naive_sweep_agrees_with_engine_on_synthetic_data() {
        // Cheap cross-check that does not touch the simulator: the
        // public-API naive baseline and the engine must agree bitwise.
        let xs: Vec<f64> = (0..30).map(|i| 1.0 + 0.1 * i as f64).collect();
        let engine = SmcEngine::new(0.9, 0.5).unwrap();
        let thresholds: Vec<f64> = (0..400).map(|i| 0.5 + 0.01 * i as f64).collect();
        let naive = naive_sweep(&engine, &xs, Direction::AtMost, &thresholds);
        let indexed = sweep(&engine, &xs, Direction::AtMost, &thresholds).unwrap();
        assert_sweeps_identical(&naive, &indexed);
        let (lo, hi) = naive_ci_exact_bounds(&engine, &xs, Direction::AtMost);
        let ci = ci_exact(&engine, &xs, Direction::AtMost).unwrap();
        assert_eq!(lo.to_bits(), ci.lower().to_bits());
        assert_eq!(hi.to_bits(), ci.upper().to_bits());
    }
}
