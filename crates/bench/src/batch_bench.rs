//! The PR 8 perf measurement: what the batch-of-machines population
//! engine buys over the sequential per-seed loop, written to
//! `BENCH_pr8.json` at the workspace root.
//!
//! The workload is a quarter-scale blackscholes population on the
//! Table 2 machine, fixed seeds. Two costs are measured:
//!
//! * the sequential path — `run_population_batch` pinned to one job,
//!   which is exactly the pre-PR per-seed loop (construct the machine
//!   once, run each seed in order on the calling thread),
//! * the batched path — the same call fanned across
//!   [`available_jobs`] workers through the claim-by-index engine.
//!
//! The headline is `speedup` — sequential wall-clock over batched
//! wall-clock for the same population. Before timing anything,
//! [`measure`] cross-checks the tentpole's determinism contract the way
//! the PR 3/4/5 harnesses do: the batched population must be *equal*
//! (not just statistically alike) to the sequential one at every job
//! count it times, so a measured speedup can never come from computing
//! something different.
//!
//! Like the earlier baselines, the same measurement runs three ways:
//! the `pr8_batch` bench binary, the CI bench-smoke job (which
//! validates the schema, enforces the ≥2× floor, and uploads the
//! JSON), and a quick smoke test so `cargo test` exercises the
//! harness.

use std::path::{Path, PathBuf};
use std::time::Instant;

use spa_sim::batch::{available_jobs, run_population_batch};
use spa_sim::config::SystemConfig;
use spa_sim::workload::parsec::Benchmark;

/// Measured PR 8 batch-engine numbers (serialized as `BENCH_pr8.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Pr8Report {
    /// Harness identifier.
    pub bench: &'static str,
    /// Population size per timed pass (seeds `0..samples`).
    pub samples: u64,
    /// Worker count used for the batched path.
    pub jobs: usize,
    /// Timed passes per path; the fastest pass is reported.
    pub passes: u32,
    /// Fastest sequential (one-job) pass, milliseconds.
    pub sequential_total_ms: f64,
    /// Fastest batched pass at `jobs` workers, milliseconds.
    pub batched_total_ms: f64,
    /// Samples per second through the sequential path.
    pub sequential_samples_per_sec: f64,
    /// Samples per second through the batched path.
    pub batched_samples_per_sec: f64,
    /// `sequential_total_ms / batched_total_ms` — the PR's headline:
    /// what fanning one population across the pool buys.
    pub speedup: f64,
}

/// One timed pass over the fixed population; returns seconds.
fn timed_pass(count: u64, jobs: usize) -> f64 {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let start = Instant::now();
    let population = run_population_batch(SystemConfig::table2(), &spec, 0, count, jobs)
        .expect("benchmark population");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(population.len() as u64, count, "short population");
    secs
}

/// Runs the measurement: cross-checks batched-vs-sequential equality on
/// the Table 2 blackscholes population, then times `passes` full
/// populations per path (sequential = one job, batched =
/// [`available_jobs`] workers, floor two) and keeps each path's fastest
/// pass.
///
/// Panics on simulator errors and on any cross-check disagreement —
/// this is a bench harness with a known-valid fixed configuration.
pub fn measure(count: u64, passes: u32) -> Pr8Report {
    assert!(count > 0 && passes > 0, "empty measurement");
    let jobs = available_jobs().max(2);
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);

    // Cross-check before timing: the tentpole's byte-identity contract.
    // A speedup over a *different* computation would be meaningless.
    let sequential = run_population_batch(SystemConfig::table2(), &spec, 0, count, 1)
        .expect("sequential population");
    for candidate_jobs in [2, jobs] {
        let batched = run_population_batch(SystemConfig::table2(), &spec, 0, count, candidate_jobs)
            .expect("batched population");
        assert_eq!(
            sequential, batched,
            "batched population diverged at {candidate_jobs} jobs"
        );
    }

    let fastest = |jobs: usize| {
        (0..passes)
            .map(|_| timed_pass(count, jobs))
            .fold(f64::INFINITY, f64::min)
    };
    let sequential_secs = fastest(1);
    let batched_secs = fastest(jobs);

    Pr8Report {
        bench: "pr8_batch",
        samples: count,
        jobs,
        passes,
        sequential_total_ms: sequential_secs * 1e3,
        batched_total_ms: batched_secs * 1e3,
        sequential_samples_per_sec: count as f64 / sequential_secs.max(1e-9),
        batched_samples_per_sec: count as f64 / batched_secs.max(1e-9),
        speedup: sequential_secs / batched_secs.max(1e-9),
    }
}

/// The canonical output location: `BENCH_pr8.json` at the workspace
/// root, next to `Cargo.toml`.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr8.json")
}

/// Serializes `report` as pretty JSON (with a trailing newline) to
/// `path`.
///
/// # Errors
///
/// I/O failures writing the file.
pub fn write_json(report: &Pr8Report, path: &Path) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(report).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_required_fields() {
        let report = Pr8Report {
            bench: "pr8_batch",
            samples: 64,
            jobs: 8,
            passes: 3,
            sequential_total_ms: 800.0,
            batched_total_ms: 150.0,
            sequential_samples_per_sec: 80.0,
            batched_samples_per_sec: 426.0,
            speedup: 5.33,
        };
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(v["bench"], "pr8_batch");
        assert!(v["speedup"].as_f64().unwrap() > 1.0);
        assert!(v["batched_samples_per_sec"].as_f64().unwrap() > 0.0);
        assert!(v["jobs"].as_u64().unwrap() >= 2);
    }

    #[test]
    fn small_measurement_is_consistent() {
        // No speedup assertion here — a loaded or single-core test
        // machine may not deliver one. CI enforces the ≥2× floor on
        // the real bench run.
        let report = measure(4, 1);
        assert_eq!(report.bench, "pr8_batch");
        assert_eq!(report.samples, 4);
        assert!(report.jobs >= 2);
        assert!(report.sequential_samples_per_sec > 0.0);
        assert!(report.batched_samples_per_sec > 0.0);
        assert!(report.speedup > 0.0);
    }
}
