//! The PR 3 perf baseline: sampling throughput and CI-construction
//! latency over the gem5-like simulated population, written to
//! `BENCH_pr3.json` at the workspace root.
//!
//! This is the repo's first self-measurement hook (the observability
//! layer's companion): the numbers give future perf PRs a trajectory to
//! move. The same measurement runs three ways — the
//! `pr3_observability` bench binary, the CI bench-smoke job (which
//! uploads the JSON as an artifact), and a quick smoke test in
//! `tests/` so every `cargo test` refreshes the file.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spa_core::ci::ci_exact;
use spa_core::property::Direction;
use spa_core::smc::SmcEngine;
use spa_core::spa::Spa;
use spa_obs::{clear_subscriber, set_subscriber, NoopSubscriber, TimingHistogram};
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

/// Measured PR 3 baseline numbers (serialized as `BENCH_pr3.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Pr3Report {
    /// Harness identifier.
    pub bench: &'static str,
    /// Executions collected (Eq. 8 minimum at C = F = 0.9).
    pub samples: u64,
    /// Wall-clock time of the instrumented sampling run, milliseconds.
    pub sampling_elapsed_ms: f64,
    /// Simulator-backed sampling throughput.
    pub samples_per_sec: f64,
    /// Mean exact-CI construction latency, no subscriber installed.
    pub ci_construction_ns_bare: u64,
    /// Mean exact-CI construction latency with a no-op span subscriber —
    /// the overhead the observability layer promises to keep negligible.
    pub ci_construction_ns_noop_subscriber: u64,
    /// Mean of the CI latency histogram (1µs–10ms log buckets), ns.
    pub ci_latency_mean_ns: Option<f64>,
    /// CI latencies below the histogram range.
    pub ci_latency_underflow: u64,
    /// CI latencies at or above the histogram range.
    pub ci_latency_overflow: u64,
}

/// Mean wall-clock nanoseconds per call of `f` over `iters` calls,
/// after a short warmup.
pub(crate) fn mean_ns(iters: u32, mut f: impl FnMut()) -> u64 {
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    (start.elapsed().as_nanos() / u128::from(iters.max(1))) as u64
}

/// Runs the measurement: one instrumented `Spa::run` over the Table 2
/// machine with a scaled blackscholes workload (samples/sec), then
/// `ci_iters` exact CI constructions over the collected population,
/// bare and with a no-op subscriber installed.
///
/// Panics on simulator or engine configuration errors — this is a bench
/// harness, and its fixed configuration is known-valid.
pub fn measure(ci_iters: u32) -> Pr3Report {
    let workload = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &workload).expect("machine config");
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .batch_size(4)
        .build()
        .expect("spa config");
    let sampler = |seed: u64| {
        machine
            .run(seed)
            .expect("simulation failed")
            .metrics
            .runtime_seconds
    };

    let start = Instant::now();
    let report = spa.run(&sampler, 0, Direction::AtMost).expect("spa run");
    let sampling = start.elapsed();
    let samples = report.samples.len() as u64;

    let engine = SmcEngine::new(0.9, 0.9).expect("engine");
    let histogram = TimingHistogram::new(Duration::from_micros(1), Duration::from_millis(10), 16);
    let bare_ns = mean_ns(ci_iters, || {
        let t = Instant::now();
        black_box(ci_exact(&engine, black_box(&report.samples), Direction::AtMost).expect("ci"));
        histogram.record(t.elapsed());
    });
    set_subscriber(Arc::new(NoopSubscriber));
    let noop_subscriber_ns = mean_ns(ci_iters, || {
        black_box(ci_exact(&engine, black_box(&report.samples), Direction::AtMost).expect("ci"));
    });
    clear_subscriber();
    let snapshot = histogram.snapshot();

    Pr3Report {
        bench: "pr3_observability",
        samples,
        sampling_elapsed_ms: sampling.as_secs_f64() * 1e3,
        samples_per_sec: samples as f64 / sampling.as_secs_f64(),
        ci_construction_ns_bare: bare_ns,
        ci_construction_ns_noop_subscriber: noop_subscriber_ns,
        ci_latency_mean_ns: snapshot.mean_ns(),
        ci_latency_underflow: snapshot.underflow,
        ci_latency_overflow: snapshot.overflow,
    }
}

/// The canonical output location: `BENCH_pr3.json` at the workspace
/// root, next to `Cargo.toml`.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr3.json")
}

/// Serializes `report` as pretty JSON (with a trailing newline) to
/// `path`.
///
/// # Errors
///
/// I/O failures writing the file.
pub fn write_json(report: &Pr3Report, path: &Path) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(report).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_required_fields() {
        let report = Pr3Report {
            bench: "pr3_observability",
            samples: 22,
            sampling_elapsed_ms: 10.0,
            samples_per_sec: 2200.0,
            ci_construction_ns_bare: 1200,
            ci_construction_ns_noop_subscriber: 1210,
            ci_latency_mean_ns: Some(1205.0),
            ci_latency_underflow: 0,
            ci_latency_overflow: 0,
        };
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(v["samples"], 22);
        assert!(v["samples_per_sec"].as_f64().unwrap() > 0.0);
        assert!(v["ci_construction_ns_bare"].as_u64().unwrap() > 0);
    }
}
