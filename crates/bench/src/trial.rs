//! The CI-accuracy trial engine (§5.4).
//!
//! "In each trial, 22 samples are randomly drawn from the benchmark
//! population, and the metric of interest is extracted. … each method
//! constructs a CI which is compared against the calculated ground
//! truth. If the CI covers the ground truth, that technique is counted
//! to be accurate for that trial. … we calculate the mean width for
//! each method by averaging the widths of the 1000 CIs it generated …
//! we normalize these values by dividing the mean width by its
//! corresponding ground truth value."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use spa_baselines::bootstrap::bca_ci;
use spa_baselines::rank::rank_ci_normal;
use spa_baselines::tscore::t_ci;
use spa_baselines::zscore::z_ci;
use spa_core::ci::ci_exact;
use spa_core::property::Direction;
use spa_core::smc::SmcEngine;
use spa_stats::descriptive::{quantile, QuantileMethod};

/// A CI-construction method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// SPA's SMC-based interval (the paper's contribution).
    Spa,
    /// BCa bootstrap (§2.4, [30, 32]).
    Bootstrap,
    /// Rank test with normal approximation (§2.4, [10, 26]).
    RankTest,
    /// Z-score interval (Gaussian assumption).
    ZScore,
    /// Student-t interval (Gaussian assumption, small-sample quantile;
    /// an extension beyond the paper's comparison set).
    TScore,
}

impl Method {
    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Spa => "SPA",
            Method::Bootstrap => "Bootstrapping",
            Method::RankTest => "Rank Testing",
            Method::ZScore => "Z-score",
            Method::TScore => "t-score",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialConfig {
    /// Number of trials (paper: 1000; Fig. 14: 100).
    pub trials: usize,
    /// Samples drawn per trial (paper: 22, from Eq. 8 at C = F = 0.9).
    pub samples: usize,
    /// Confidence level `C`.
    pub confidence: f64,
    /// Proportion `F` (0.5 = median evaluation of §6.1).
    pub proportion: f64,
    /// Bootstrap resamples.
    pub resamples: usize,
    /// RNG seed for the trial draws (fixed ⇒ reproducible figures).
    pub seed: u64,
}

impl TrialConfig {
    /// The paper's default setup for a given `C`/`F`.
    pub fn paper(trials: usize, confidence: f64, proportion: f64, resamples: usize) -> Self {
        Self {
            trials,
            samples: 22,
            confidence,
            proportion,
            resamples,
            seed: 0xC17A_B1E5,
        }
    }
}

/// Aggregate outcome of one method over all trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodEval {
    /// The evaluated method.
    pub method: Method,
    /// Fraction of trials whose CI *missed* the ground truth, among
    /// trials that produced a CI.
    pub error_probability: f64,
    /// Fraction of trials in which the method failed to produce any CI
    /// (the paper's bootstrap "Null" bar).
    pub null_fraction: f64,
    /// Mean CI width over successful trials, divided by the ground
    /// truth (the paper's normalized width).
    pub mean_norm_width: f64,
    /// Unnormalized mean width.
    pub mean_width: f64,
}

/// Evaluates the requested methods on one population/metric.
///
/// `population` is the full ground-truth population (§5.3); the ground
/// truth itself is its `F`-quantile under lower-rank semantics — "the
/// proportion of executions for which a property is true".
///
/// # Panics
///
/// Panics if the population is smaller than the per-trial sample count
/// or if the SMC engine parameters are invalid — harness configuration
/// errors.
pub fn evaluate(
    population: &[f64],
    methods: &[Method],
    cfg: &TrialConfig,
) -> (f64, Vec<MethodEval>) {
    assert!(
        population.len() >= cfg.samples,
        "population smaller than per-trial sample size"
    );
    let ground_truth = quantile(population, cfg.proportion, QuantileMethod::LowerRank)
        .expect("non-empty population");
    let engine = SmcEngine::new(cfg.confidence, cfg.proportion).expect("valid C/F");

    struct Acc {
        misses: usize,
        nulls: usize,
        produced: usize,
        width_sum: f64,
    }
    let mut accs: Vec<Acc> = methods
        .iter()
        .map(|_| Acc {
            misses: 0,
            nulls: 0,
            produced: 0,
            width_sum: 0.0,
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut indices: Vec<usize> = (0..population.len()).collect();
    let mut sample = vec![0.0_f64; cfg.samples];

    for _ in 0..cfg.trials {
        // Draw without replacement, as §5.4 describes. `partial_shuffle`
        // returns the freshly shuffled portion first.
        let (chosen, _) = indices.partial_shuffle(&mut rng, cfg.samples);
        for (slot, &idx) in sample.iter_mut().zip(chosen.iter()) {
            *slot = population[idx];
        }

        for (method, acc) in methods.iter().zip(accs.iter_mut()) {
            let ci: Option<(f64, f64)> = match method {
                Method::Spa => ci_exact(&engine, &sample, Direction::AtMost)
                    .ok()
                    .map(|c| (c.lower(), c.upper())),
                Method::Bootstrap => bca_ci(
                    &sample,
                    cfg.proportion,
                    cfg.confidence,
                    cfg.resamples,
                    &mut rng,
                )
                .ok()
                .map(|c| (c.lower(), c.upper())),
                Method::RankTest => rank_ci_normal(&sample, cfg.proportion, cfg.confidence)
                    .ok()
                    .map(|c| (c.lower(), c.upper())),
                Method::ZScore => z_ci(&sample, cfg.confidence)
                    .ok()
                    .map(|c| (c.lower(), c.upper())),
                Method::TScore => t_ci(&sample, cfg.confidence)
                    .ok()
                    .map(|c| (c.lower(), c.upper())),
            };
            match ci {
                None => acc.nulls += 1,
                Some((lo, hi)) => {
                    acc.produced += 1;
                    acc.width_sum += hi - lo;
                    if ground_truth < lo || ground_truth > hi {
                        acc.misses += 1;
                    }
                }
            }
        }
    }

    let evals = methods
        .iter()
        .zip(accs)
        .map(|(&method, acc)| {
            let mean_width = if acc.produced > 0 {
                acc.width_sum / acc.produced as f64
            } else {
                f64::NAN
            };
            MethodEval {
                method,
                error_probability: if acc.produced > 0 {
                    acc.misses as f64 / acc.produced as f64
                } else {
                    f64::NAN
                },
                null_fraction: acc.nulls as f64 / cfg.trials as f64,
                mean_norm_width: mean_width / ground_truth.abs(),
                mean_width,
            }
        })
        .collect();
    (ground_truth, evals)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic non-Gaussian population: exponential-ish spacing.
    fn skewed_population(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                10.0 - 3.0 * (1.0 - u).ln()
            })
            .collect()
    }

    #[test]
    fn spa_respects_confidence_on_skewed_data() {
        let pop = skewed_population(500);
        let cfg = TrialConfig {
            trials: 300,
            samples: 22,
            confidence: 0.9,
            proportion: 0.5,
            resamples: 200,
            seed: 42,
        };
        let (gt, evals) = evaluate(&pop, &[Method::Spa], &cfg);
        assert!(gt > 10.0);
        let spa = &evals[0];
        assert!(
            spa.error_probability <= 0.1 + 0.04,
            "SPA error {} exceeds 1 − C",
            spa.error_probability
        );
        assert_eq!(spa.null_fraction, 0.0);
        assert!(spa.mean_norm_width > 0.0);
    }

    #[test]
    fn all_methods_produce_finite_summaries() {
        let pop = skewed_population(300);
        let cfg = TrialConfig {
            trials: 60,
            samples: 22,
            confidence: 0.9,
            proportion: 0.5,
            resamples: 200,
            seed: 7,
        };
        let (_, evals) = evaluate(
            &pop,
            &[
                Method::Spa,
                Method::Bootstrap,
                Method::RankTest,
                Method::ZScore,
            ],
            &cfg,
        );
        assert_eq!(evals.len(), 4);
        for e in &evals {
            assert!(e.null_fraction < 1.0, "{}: no CI ever produced", e.method);
            assert!(e.mean_width.is_finite(), "{}", e.method);
        }
    }

    #[test]
    fn duplicate_heavy_population_breaks_bootstrap_not_spa() {
        // Integer-valued metric with massive duplication (the §6.4 /
        // Fig. 15 scenario).
        let pop: Vec<f64> = (0..400).map(|i| (140 + (i % 3)) as f64).collect();
        let cfg = TrialConfig {
            trials: 100,
            samples: 22,
            confidence: 0.9,
            proportion: 0.9,
            resamples: 200,
            seed: 3,
        };
        let (_, evals) = evaluate(&pop, &[Method::Spa, Method::Bootstrap], &cfg);
        let spa = evals.iter().find(|e| e.method == Method::Spa).unwrap();
        let boot = evals
            .iter()
            .find(|e| e.method == Method::Bootstrap)
            .unwrap();
        assert_eq!(spa.null_fraction, 0.0, "SPA must never return Null");
        assert!(
            boot.null_fraction > 0.3,
            "bootstrap null fraction {} too low for duplicate data",
            boot.null_fraction
        );
    }

    #[test]
    fn trials_are_reproducible() {
        let pop = skewed_population(200);
        let cfg = TrialConfig {
            trials: 50,
            samples: 22,
            confidence: 0.9,
            proportion: 0.5,
            resamples: 100,
            seed: 99,
        };
        let a = evaluate(&pop, &[Method::Spa, Method::ZScore], &cfg);
        let b = evaluate(&pop, &[Method::Spa, Method::ZScore], &cfg);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    #[should_panic(expected = "population smaller")]
    fn rejects_tiny_population() {
        let cfg = TrialConfig::paper(10, 0.9, 0.5, 100);
        let _ = evaluate(&[1.0, 2.0], &[Method::Spa], &cfg);
    }
}
