//! The PR 5 perf measurement: what the trace-to-verdict pipeline costs
//! on top of the scalar sampling path, written to `BENCH_pr5.json` at
//! the workspace root.
//!
//! The workload is a quarter-scale blackscholes execution on the
//! Table 2 machine, fixed seeds. Four costs are measured:
//!
//! * the scalar path — one `MachineSource` execution reduced to an IPC
//!   sample by `MetricEvaluator` (the pre-PR `Sampler` workload),
//! * the traced path — the same execution with the `TraceRecorder`
//!   active, reduced to a boolean-satisfaction sample by
//!   `StlEvaluator`,
//! * per-trace STL evaluation alone (boolean and robustness), on one
//!   pre-recorded execution, isolating the formula-evaluation cost
//!   from the simulation cost.
//!
//! The headline is `trace_overhead_ratio` — traced-sample cost over
//! scalar-sample cost — which bounds what a `property` job pays
//! relative to an `interval` job on the same machine. Before timing
//! anything, [`measure`] cross-checks both paths the way the PR 3/4
//! harnesses do: the scalar pipeline sample must equal direct metric
//! extraction, and boolean/robustness semantics must agree in sign.
//!
//! Like the PR 3/4 baselines, the same measurement runs three ways: the
//! `pr5_pipeline` bench binary, the CI bench-smoke job (which uploads
//! the JSON), and a quick smoke test so every `cargo test` refreshes
//! the file.

use std::hint::black_box;
use std::path::{Path, PathBuf};

use spa_core::pipeline::{Evaluator, Pipeline};
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::metrics::Metric;
use spa_sim::pipeline::{MachineSource, MetricEvaluator, PropertySemantics, StlEvaluator};
use spa_sim::workload::parsec::Benchmark;
use spa_stl::parser::parse;

use crate::obs_bench::mean_ns;

/// The Table 1-style formula the traced path evaluates. Row 8's shape
/// (a bounded eventually over a performance signal) on the recorded
/// `ipc` trace.
pub const FORMULA: &str = "F[0,end] (ipc > 0.1)";

/// Measured PR 5 pipeline-overhead numbers (serialized as
/// `BENCH_pr5.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Pr5Report {
    /// Harness identifier.
    pub bench: &'static str,
    /// The STL formula the traced path checks (canonical rendering).
    pub formula: String,
    /// One scalar pipeline sample (untraced execution + IPC
    /// extraction), ns.
    pub scalar_sample_ns: u64,
    /// One traced pipeline sample (recorder-active execution + boolean
    /// STL evaluation), ns.
    pub traced_sample_ns: u64,
    /// `traced_sample_ns / scalar_sample_ns` — the PR's headline: the
    /// cost of making traces first-class on this workload.
    pub trace_overhead_ratio: f64,
    /// Per-trace boolean STL evaluation on a pre-recorded execution,
    /// ns (no simulation in the loop).
    pub stl_eval_boolean_ns: u64,
    /// Per-trace robustness STL evaluation on the same execution, ns.
    pub stl_eval_robustness_ns: u64,
    /// Samples per second through the scalar pipeline.
    pub scalar_samples_per_sec: f64,
    /// Samples per second through the traced pipeline.
    pub traced_samples_per_sec: f64,
}

/// Runs the measurement: builds untraced and traced Table 2 machines on
/// a quarter-scale blackscholes workload, cross-checks both pipeline
/// paths, then times `run_iters` full pipeline samples per path and
/// `eval_iters` isolated STL evaluations per semantics.
///
/// Panics on simulator or parse errors and on any cross-check
/// disagreement — this is a bench harness with a known-valid fixed
/// configuration.
pub fn measure(run_iters: u32, eval_iters: u32) -> Pr5Report {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let scalar_machine = Machine::new(SystemConfig::table2(), &spec).expect("machine config");
    let traced_machine =
        Machine::new(SystemConfig::table2().with_trace(), &spec).expect("machine config");
    let formula = parse(FORMULA).expect("valid formula");

    let metric_eval = MetricEvaluator::new(Metric::Ipc);
    let boolean_eval = StlEvaluator::new(formula.clone(), PropertySemantics::Boolean);
    let robust_eval = StlEvaluator::new(formula.clone(), PropertySemantics::Robustness);
    let scalar_pipeline = Pipeline::new(MachineSource::new(&scalar_machine), metric_eval);
    let traced_pipeline = Pipeline::new(MachineSource::new(&traced_machine), boolean_eval.clone());

    // Cross-checks before timing: the scalar pipeline sample is exactly
    // direct extraction, and the two STL semantics agree in sign.
    use spa_core::fault::FallibleSampler;
    let direct = Metric::Ipc.extract(&scalar_machine.run(0).expect("simulation failed").metrics);
    assert_eq!(scalar_pipeline.sample(0), Ok(direct));
    let recorded = traced_machine.run(0).expect("simulation failed");
    let boolean = boolean_eval.evaluate(&recorded).expect("boolean eval");
    let robust = robust_eval.evaluate(&recorded).expect("robustness eval");
    assert_eq!(boolean == 1.0, robust > 0.0, "semantics disagree in sign");

    let mut seed = 0u64;
    let scalar_ns = mean_ns(run_iters, || {
        seed += 1;
        black_box(scalar_pipeline.sample(black_box(seed))).expect("scalar sample");
    });
    let mut seed = 0u64;
    let traced_ns = mean_ns(run_iters, || {
        seed += 1;
        black_box(traced_pipeline.sample(black_box(seed))).expect("traced sample");
    });

    let boolean_ns = mean_ns(eval_iters, || {
        black_box(boolean_eval.evaluate(black_box(&recorded))).expect("boolean eval");
    });
    let robust_ns = mean_ns(eval_iters, || {
        black_box(robust_eval.evaluate(black_box(&recorded))).expect("robustness eval");
    });

    let per_sec = |ns: u64| 1e9 / ns.max(1) as f64;
    Pr5Report {
        bench: "pr5_pipeline",
        formula: formula.to_string(),
        scalar_sample_ns: scalar_ns,
        traced_sample_ns: traced_ns,
        trace_overhead_ratio: traced_ns as f64 / scalar_ns.max(1) as f64,
        stl_eval_boolean_ns: boolean_ns,
        stl_eval_robustness_ns: robust_ns,
        scalar_samples_per_sec: per_sec(scalar_ns),
        traced_samples_per_sec: per_sec(traced_ns),
    }
}

/// The canonical output location: `BENCH_pr5.json` at the workspace
/// root, next to `Cargo.toml`.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr5.json")
}

/// Serializes `report` as pretty JSON (with a trailing newline) to
/// `path`.
///
/// # Errors
///
/// I/O failures writing the file.
pub fn write_json(report: &Pr5Report, path: &Path) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(report).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_required_fields() {
        let report = Pr5Report {
            bench: "pr5_pipeline",
            formula: "F[0,inf] (ipc > 0.1)".into(),
            scalar_sample_ns: 100_000,
            traced_sample_ns: 120_000,
            trace_overhead_ratio: 1.2,
            stl_eval_boolean_ns: 900,
            stl_eval_robustness_ns: 1100,
            scalar_samples_per_sec: 1e4,
            traced_samples_per_sec: 8e3,
        };
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(v["bench"], "pr5_pipeline");
        assert!(v["trace_overhead_ratio"].as_f64().unwrap() > 1.0);
        assert!(v["stl_eval_boolean_ns"].as_u64().unwrap() > 0);
        assert!(v["formula"].as_str().unwrap().contains("ipc"));
    }
}
