//! The PR 9 perf measurement: one whole-CDF DKW band answering `k`
//! quantile queries against `k` repeated per-quantile SPA searches,
//! written to `BENCH_pr9.json` at the workspace root.
//!
//! The repeated baseline is the pre-band way to get `k` quantile CIs
//! from one sample set: for each level `q`, configure a fresh
//! `SmcEngine` at proportion `q` and run a full `ci_exact` threshold
//! search (bisection over order statistics with Clopper–Pearson
//! evaluations). The band pays one `O(n log n)` sort plus one DKW
//! epsilon, then answers every quantile with two order-statistic
//! lookups — so the band should win from `k >= 2` and the margin should
//! grow roughly linearly in `k`.
//!
//! The two methods answer *different but compatible* questions: each
//! per-quantile search is marginally valid at confidence `C`, while the
//! band's read-offs are simultaneously valid at `C`. Before timing
//! anything, [`measure`] asserts that at every level the band CI and
//! the SPA CI overlap (a disjoint pair would mean one of the
//! constructions is wrong), so the reported speedup never compares
//! disagreeing answers.
//!
//! The measurement runs three ways: the `pr9_band` bench binary, the CI
//! bench-smoke job (which checks the ≥ 2× floor at `k = 4` and uploads
//! the JSON), and a quick smoke test so every `cargo test` refreshes
//! the file.

use std::hint::black_box;
use std::path::{Path, PathBuf};

use spa_core::band::CdfBand;
use spa_core::ci::ci_exact;
use spa_core::ci_engine::SortedSamples;
use spa_core::obs_names;
use spa_core::property::Direction;
use spa_core::smc::SmcEngine;
use spa_obs::metrics::global;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

use crate::obs_bench::mean_ns;
use crate::population::SystemVariant;

/// One `k`-queries comparison point.
#[derive(Debug, Clone, serde::Serialize)]
pub struct KPoint {
    /// How many quantile levels were answered.
    pub k: u64,
    /// Band path, ns: sort + DKW build + `k` read-offs.
    pub band_ns: u64,
    /// Repeated path, ns: `k` × (fresh engine + full `ci_exact`
    /// threshold search).
    pub repeated_ns: u64,
    /// `repeated_ns / band_ns` — the PR's acceptance headline
    /// (floor: 2× at `k = 4`).
    pub speedup: f64,
}

/// Measured PR 9 band-vs-repeated numbers (serialized as
/// `BENCH_pr9.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Pr9Report {
    /// Harness identifier.
    pub bench: &'static str,
    /// Runtime samples in the population.
    pub samples: u64,
    /// Confidence level shared by both methods.
    pub confidence: f64,
    /// One comparison per `k` in ascending order.
    pub points: Vec<KPoint>,
    /// `core.band.builds` accumulated by one band pass.
    pub band_builds_per_pass: u64,
    /// `core.band.quantile_queries` accumulated by one band pass at the
    /// largest `k`.
    pub quantile_queries_per_pass: u64,
}

/// The population: quarter-scale blackscholes runtimes under paper
/// variability, fixed seeds. 64 samples — enough that every grid level
/// in [`levels`] has both endpoints bounded at `C = 0.9`
/// (`eps ≈ 0.147`).
fn runtime_sample() -> Vec<f64> {
    let spec = Benchmark::Blackscholes.workload_scaled(0.25);
    let machine = Machine::new(SystemVariant::Table2.config(), &spec)
        .expect("machine config")
        .with_variability(spa_sim::variability::Variability::paper_default());
    (0..64)
        .map(|seed| {
            machine
                .run(seed)
                .expect("simulation failed")
                .metrics
                .runtime_seconds
        })
        .collect()
}

/// `k` evenly spaced interior levels: `i / (k + 1)` for `i = 1..=k`.
fn levels(k: u64) -> Vec<f64> {
    (1..=k).map(|i| i as f64 / (k + 1) as f64).collect()
}

/// The repeated baseline: one fresh per-quantile SPA search per level.
/// `Direction::AtMost` at proportion `q` makes `ci_exact` bracket the
/// `q`-quantile.
fn repeated_quantile_cis(samples: &[f64], confidence: f64, qs: &[f64]) -> Vec<(f64, f64)> {
    qs.iter()
        .map(|&q| {
            let engine = SmcEngine::new(confidence, q).expect("valid C/F");
            let ci = ci_exact(&engine, samples, Direction::AtMost).expect("ci");
            (ci.lower(), ci.upper())
        })
        .collect()
}

/// The band path: sort once, one DKW build, `k` read-offs.
fn band_quantile_cis(samples: &[f64], confidence: f64, qs: &[f64]) -> Vec<(f64, f64)> {
    let index = SortedSamples::new(samples).expect("clean samples");
    let band = CdfBand::dkw(&index, confidence).expect("valid confidence");
    qs.iter()
        .map(|&q| {
            let ci = band.quantile_ci(q).expect("valid level");
            (
                ci.lower.unwrap_or(f64::NEG_INFINITY),
                ci.upper.unwrap_or(f64::INFINITY),
            )
        })
        .collect()
}

/// Runs the measurement: builds the runtime population, asserts the
/// band and repeated answers overlap at every level of the largest
/// grid, then times both paths at each `k` (`iters` timed repetitions
/// each) and reads the band counters off one extra pass.
///
/// Panics on simulator or engine configuration errors, and on any
/// disjoint band/SPA interval pair — this is a bench harness with a
/// known-valid fixed configuration.
pub fn measure(iters: u32) -> Pr9Report {
    let samples = runtime_sample();
    let confidence = 0.9;
    let ks: [u64; 4] = [1, 2, 4, 8];
    let max_levels = levels(*ks.last().expect("non-empty"));

    // Correctness gate: at every level the two constructions must
    // overlap — the band is simultaneously valid, the repeated search
    // marginally valid, and both cover the true quantile with
    // probability >= C, so disjointness means a bug.
    let band_cis = band_quantile_cis(&samples, confidence, &max_levels);
    let spa_cis = repeated_quantile_cis(&samples, confidence, &max_levels);
    for ((&q, &(b_lo, b_hi)), &(s_lo, s_hi)) in max_levels.iter().zip(&band_cis).zip(&spa_cis) {
        assert!(
            b_lo <= s_hi && s_lo <= b_hi,
            "disjoint intervals at q = {q}: band [{b_lo}, {b_hi}] vs SPA [{s_lo}, {s_hi}]"
        );
    }

    let points = ks
        .iter()
        .map(|&k| {
            let qs = levels(k);
            let band_ns = mean_ns(iters, || {
                black_box(band_quantile_cis(black_box(&samples), confidence, &qs));
            });
            let repeated_ns = mean_ns(iters, || {
                black_box(repeated_quantile_cis(black_box(&samples), confidence, &qs));
            });
            KPoint {
                k,
                band_ns,
                repeated_ns,
                speedup: repeated_ns as f64 / band_ns.max(1) as f64,
            }
        })
        .collect();

    // One extra pass with counter deltas around it.
    let before = global().snapshot();
    let _ = band_quantile_cis(&samples, confidence, &max_levels);
    let after = global().snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);

    Pr9Report {
        bench: "pr9_band",
        samples: samples.len() as u64,
        confidence,
        points,
        band_builds_per_pass: delta(obs_names::BAND_BUILDS),
        quantile_queries_per_pass: delta(obs_names::BAND_QUANTILE_QUERIES),
    }
}

/// The canonical output location: `BENCH_pr9.json` at the workspace
/// root, next to `Cargo.toml`.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr9.json")
}

/// Serializes `report` as pretty JSON (with a trailing newline) to
/// `path`.
///
/// # Errors
///
/// I/O failures writing the file.
pub fn write_json(report: &Pr9Report, path: &Path) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(report).expect("report serializes");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_required_fields() {
        let report = Pr9Report {
            bench: "pr9_band",
            samples: 64,
            confidence: 0.9,
            points: vec![KPoint {
                k: 4,
                band_ns: 1_000,
                repeated_ns: 9_000,
                speedup: 9.0,
            }],
            band_builds_per_pass: 1,
            quantile_queries_per_pass: 8,
        };
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(v["bench"], "pr9_band");
        assert_eq!(v["points"][0]["k"], 4);
        assert!(v["points"][0]["speedup"].as_f64().unwrap() > 1.0);
        assert_eq!(v["band_builds_per_pass"], 1);
    }

    #[test]
    fn band_and_repeated_answers_overlap_on_synthetic_data() {
        // Cheap cross-check that does not touch the simulator.
        let xs: Vec<f64> = (0..80).map(|i| (i as f64 * 0.37).sin() + 2.0).collect();
        let qs = levels(8);
        let band = band_quantile_cis(&xs, 0.9, &qs);
        let repeated = repeated_quantile_cis(&xs, 0.9, &qs);
        for ((&q, &(b_lo, b_hi)), &(s_lo, s_hi)) in qs.iter().zip(&band).zip(&repeated) {
            assert!(
                b_lo <= s_hi && s_lo <= b_hi,
                "disjoint at q = {q}: band [{b_lo}, {b_hi}] vs SPA [{s_lo}, {s_hi}]"
            );
        }
    }

    #[test]
    fn level_grids_are_interior_and_ascending() {
        for k in [1, 2, 4, 8] {
            let qs = levels(k);
            assert_eq!(qs.len() as u64, k);
            assert!(qs.iter().all(|&q| 0.0 < q && q < 1.0), "{qs:?}");
            assert!(qs.windows(2).all(|w| w[0] < w[1]), "{qs:?}");
        }
    }
}
