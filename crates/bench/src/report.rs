//! Harness output: aligned terminal tables, ASCII bar charts, and JSON
//! result dumps under `target/spa-results/`.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Prints a figure/table header in a consistent style.
pub fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints an aligned table: `columns` are headers, `rows` pre-formatted
/// cells.
///
/// # Panics
///
/// Panics if a row's length differs from the header's (a harness bug).
pub fn table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        assert_eq!(row.len(), columns.len(), "row/column arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(columns.iter().map(|c| c.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Renders a labelled horizontal bar chart (values must be ≥ 0).
pub fn bars(items: &[(String, f64)], width: usize, unit: &str) {
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0_f64, f64::max)
        .max(1e-300);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in items {
        let n = ((v / max) * width as f64).round() as usize;
        println!(
            "  {label:<label_w$}  {:<width$}  {v:.4}{unit}",
            "#".repeat(n)
        );
    }
}

/// Directory for JSON results (inside `target/`).
fn results_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| {
        // If even the cwd is unavailable, fall back to a relative
        // `target`; write_json already degrades to a warning on failure.
        let mut p = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        // Walk up to the WORKSPACE root: the outermost ancestor that
        // contains a Cargo.toml (crate dirs inside the workspace also
        // have one, so keep climbing while a parent qualifies).
        let mut root = p.clone();
        loop {
            if p.join("Cargo.toml").exists() {
                root = p.clone();
            }
            if !p.pop() {
                break;
            }
        }
        root.join("target").to_string_lossy().into_owned()
    });
    PathBuf::from(target).join("spa-results")
}

/// Writes a JSON result artifact for the given experiment id.
pub fn write_json<T: Serialize>(id: &str, value: &T) {
    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => {
            if let Err(e) = fs::write(&path, bytes) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  [results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {id}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panicking() {
        table(
            &["a", "metric"],
            &[
                vec!["1".into(), "x".into()],
                vec!["22".into(), "yyyy".into()],
            ],
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn table_checks_arity() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn bars_handle_zero_and_empty() {
        bars(&[], 10, "");
        bars(&[("z".into(), 0.0)], 10, "%");
    }

    #[test]
    fn json_write_round_trips() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        write_json("unit-test-artifact", &T { x: 5 });
        let path = results_dir().join("unit-test-artifact.json");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x\": 5"));
        let _ = std::fs::remove_file(path);
    }
}
