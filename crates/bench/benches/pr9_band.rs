//! PR 9 bench: one whole-CDF DKW band answering k quantile queries vs
//! k repeated per-quantile SPA searches.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-bench --bench pr9_band`. Emits
//! `BENCH_pr9.json` at the workspace root; the measurement itself lives
//! in [`spa_bench::band_bench`] so the test suite's quick smoke run and
//! this full run share one code path.

use spa_bench::band_bench;

fn main() {
    let report = band_bench::measure(200);
    let path = band_bench::default_path();
    band_bench::write_json(&report, &path).expect("write BENCH_pr9.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
