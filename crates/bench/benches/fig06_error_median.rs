//! Fig. 6: CI error probability for ferret metrics at F = 0.5 (median),
//! C = 0.9, all four methods, 1000 trials of 22 samples.
//!
//! Expected shape (paper §6.1): SPA and Z-score stay below the 0.1
//! error threshold; bootstrapping exceeds it everywhere; rank testing
//! exceeds it on some metrics.

use spa_bench::experiment::{eval_across_metrics, FERRET_METRICS};
use spa_bench::trial::{Method, TrialConfig};

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.5,
        spa_bench::bootstrap_resamples(),
    );
    eval_across_metrics(
        "fig06_error_median",
        "CI error probability, ferret metrics, F = 0.5",
        &FERRET_METRICS,
        &[
            Method::Spa,
            Method::Bootstrap,
            Method::RankTest,
            Method::ZScore,
        ],
        &cfg,
        false,
    );
}
