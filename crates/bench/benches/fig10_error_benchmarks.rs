//! Fig. 10: CI error probability across all PARSEC benchmarks for
//! L1 Cache Misses / 1k Instructions at F = 0.9.
//!
//! Expected shape (paper §6.2.2): SPA within the error bound on every
//! benchmark; bootstrapping exceeds it on most.

use spa_bench::experiment::eval_across_benchmarks;
use spa_bench::trial::{Method, TrialConfig};
use spa_sim::metrics::Metric;

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.9,
        spa_bench::bootstrap_resamples(),
    );
    eval_across_benchmarks(
        "fig10_error_benchmarks",
        "CI error probability across benchmarks, L1 MPKI, F = 0.9",
        Metric::L1Mpki,
        &[Method::Spa, Method::Bootstrap],
        &cfg,
    );
}
