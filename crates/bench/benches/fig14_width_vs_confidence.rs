//! Fig. 14: mean normalized CI width vs confidence level (90 % → 99.9 %)
//! at the median (F = 0.5), L1 MPKI of ferret, 100 trials per point.
//!
//! Expected shape: SPA, bootstrapping and rank widths stay comparable
//! (bootstrapping narrowest); the Z-score CI is considerably wider
//! throughout.

use serde::Serialize;
use spa_bench::population::{population, PopulationKey};
use spa_bench::report;
use spa_bench::trial::{evaluate, Method, TrialConfig};
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;

#[derive(Serialize)]
struct Point {
    confidence: f64,
    widths: Vec<(String, f64)>,
}

fn main() {
    report::header(
        "Fig. 14",
        "Mean normalized CI width vs confidence (F = 0.5, ferret L1 MPKI)",
    );
    let pop = population(PopulationKey::standard(
        Benchmark::Ferret,
        spa_bench::population_size(),
    ));
    let samples = pop.metric(Metric::L1Mpki);
    let methods = [
        Method::Spa,
        Method::Bootstrap,
        Method::RankTest,
        Method::ZScore,
    ];

    let confidences = [0.90, 0.95, 0.99, 0.995, 0.999];
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &c in &confidences {
        let cfg = TrialConfig {
            trials: 100,
            samples: 22,
            confidence: c,
            proportion: 0.5,
            resamples: spa_bench::bootstrap_resamples(),
            seed: 0xF1614,
        };
        let (_, evals) = evaluate(&samples, &methods, &cfg);
        let mut cells = vec![format!("{:.1}%", c * 100.0)];
        let mut widths = Vec::new();
        for e in &evals {
            // At very high confidence and 22 samples SPA/rank may hit the
            // sample extremes; report what was achieved.
            cells.push(if e.mean_norm_width.is_finite() {
                format!("{:.4}", e.mean_norm_width)
            } else {
                "unbounded".into()
            });
            widths.push((e.method.name().to_string(), e.mean_norm_width));
        }
        rows.push(cells);
        points.push(Point {
            confidence: c,
            widths,
        });
    }
    let mut columns = vec!["confidence"];
    columns.extend(methods.iter().map(|m| m.name()));
    report::table(&columns, &rows);
    println!("\n  (100 trials per point, as in the paper)");
    report::write_json("fig14_width_vs_confidence", &points);
}
