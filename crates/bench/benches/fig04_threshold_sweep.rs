//! Fig. 4: per-threshold SMC confidence for the L2-doubling speedup
//! study (512 kB → 1 MB), F = C = 0.9, 22 samples.
//!
//! Each point is the positive-direction Clopper–Pearson confidence of
//! the hypothesis "speedup ≥ threshold in at least F of executions".
//! Points above C are significant positives, points below 1 − C are
//! significant negatives, and the band between is inconclusive — the
//! confidence interval spans from the last positive to the first
//! negative threshold.

use spa_bench::population::{
    population, speedup_samples, NoiseModel, PopulationKey, SystemVariant,
};
use spa_bench::report;
use spa_core::clopper_pearson::Assertion;
use spa_core::property::Direction;
use spa_core::spa::Spa;
use spa_sim::workload::parsec::Benchmark;

fn main() {
    report::header(
        "Fig. 4",
        "SMC hypothesis-test confidence vs speedup threshold (L2 512kB -> 1MB)",
    );
    let n = spa_bench::population_size();
    let base = population(PopulationKey {
        benchmark: Benchmark::Ferret,
        system: SystemVariant::L2Small,
        noise: NoiseModel::Paper,
        count: n,
        seed_start: 0,
    });
    let improved = population(PopulationKey {
        benchmark: Benchmark::Ferret,
        system: SystemVariant::L2Large,
        noise: NoiseModel::Paper,
        count: n,
        seed_start: 10_000,
    });
    let speedups = speedup_samples(&base, &improved);

    // The figure uses one batch of 22 samples (Eq. 8 minimum).
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .expect("valid C/F");
    let sample: Vec<f64> = speedups
        .iter()
        .take(spa.required_samples() as usize)
        .copied()
        .collect();
    println!(
        "\n  using the first {} speedup samples (Eq. 8 minimum for C=F=0.9)",
        sample.len()
    );

    let lo = sample.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let grain = 0.01; // the paper's user-chosen granularity
    let start = (lo / grain).floor() * grain - grain;
    let steps = (((hi - start) / grain).ceil() as usize) + 2;
    let thresholds: Vec<f64> = (0..steps).map(|i| start + i as f64 * grain).collect();

    let sweep_start = std::time::Instant::now();
    let points = spa
        .sweep(&sample, Direction::AtLeast, &thresholds)
        .expect("sweep succeeds");
    let sweep_elapsed = sweep_start.elapsed();
    println!(
        "\n  swept {} thresholds in {:.3} ms ({:.0} thresholds/sec via the indexed CI engine)",
        thresholds.len(),
        sweep_elapsed.as_secs_f64() * 1e3,
        thresholds.len() as f64 / sweep_elapsed.as_secs_f64().max(1e-9),
    );

    println!("\n  threshold   C_CP(positive)   verdict");
    for p in &points {
        let verdict = match p.verdict {
            Some(Assertion::Positive) => "positive",
            Some(Assertion::Negative) => "negative",
            None => "none",
        };
        let marker = "#".repeat((p.positive_confidence * 40.0).round() as usize);
        println!(
            "  {:>8.2}   {:>8.4} {:8}  {}",
            p.threshold, p.positive_confidence, verdict, marker
        );
    }

    let ci = spa
        .confidence_interval(&sample, Direction::AtLeast)
        .expect("enough samples");
    println!(
        "\n  resulting SPA confidence interval for the speedup: [{:.3}, {:.3}]",
        ci.lower(),
        ci.upper()
    );
    println!("  (the paper's Fig. 4 example finds [1.41, 1.48] on its data)");
    report::write_json("fig04_threshold_sweep", &points);
}
