//! PR 8 bench: the batch-of-machines population engine vs the
//! sequential per-seed loop.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-bench --bench pr8_batch`. Emits
//! `BENCH_pr8.json` at the workspace root; the measurement itself lives
//! in [`spa_bench::batch_bench`] so the test suite's quick smoke run and
//! this full run share one code path (including the byte-identity
//! cross-check that runs before any timing).

use spa_bench::batch_bench;

fn main() {
    let report = batch_bench::measure(64, 3);
    let path = batch_bench::default_path();
    batch_bench::write_json(&report, &path).expect("write BENCH_pr8.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
