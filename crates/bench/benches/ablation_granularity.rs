//! Ablation: exact order-statistic CI vs the paper's granularity search
//! (§4.2) at several step sizes — width and threshold-test counts.

use spa_bench::population::{population, PopulationKey};
use spa_bench::report;
use spa_core::ci::{ci_exact, ci_granular};
use spa_core::property::Direction;
use spa_core::smc::SmcEngine;
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;

fn main() {
    report::header("Ablation", "Exact CI vs granularity-search CI");
    let pop = population(PopulationKey::standard(
        Benchmark::Ferret,
        spa_bench::population_size(),
    ));
    let samples: Vec<f64> = pop.metric(Metric::L1Mpki).into_iter().take(22).collect();
    let engine = SmcEngine::new(0.9, 0.9).expect("valid C/F");

    let exact = ci_exact(&engine, &samples, Direction::AtMost).expect("enough samples");
    let spread = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - samples.iter().copied().fold(f64::INFINITY, f64::min);

    let mut rows = vec![vec![
        "exact (order statistics)".to_string(),
        format!("[{:.4}, {:.4}]", exact.lower(), exact.upper()),
        format!("{:.4}", exact.width()),
        format!("{}", samples.len()),
    ]];
    for divisor in [10.0, 50.0, 250.0] {
        let grain = spread / divisor;
        let ci = ci_granular(&engine, &samples, Direction::AtMost, grain).expect("enough samples");
        let tests = (spread / grain).ceil() as usize + 3;
        rows.push(vec![
            format!("grain = range/{divisor}"),
            format!("[{:.4}, {:.4}]", ci.lower(), ci.upper()),
            format!("{:.4}", ci.width()),
            format!("~{tests}"),
        ]);
    }
    report::table(&["search", "interval", "width", "threshold tests"], &rows);
    println!("\n  Finer granularity converges on the exact interval at the cost of");
    println!("  more hypothesis tests; the exact search needs only one per distinct");
    println!("  sample value.");
    report::write_json("ablation_granularity", &rows);
}
