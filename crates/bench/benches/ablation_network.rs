//! Ablation: Table 2's crossbar vs a 2-D mesh NoC — another
//! design-comparison exercise analyzed with SPA itself.
//!
//! The mesh pays per-hop store-and-forward latency, so memory-bound
//! benchmarks slow down; the crossbar should win with a CI strictly
//! above 1 on those, while compute-bound benchmarks barely move.

use spa_bench::report;
use spa_core::property::Direction;
use spa_core::spa::Spa;
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

fn main() {
    report::header("Ablation", "Crossbar (Table 2) vs 2-D mesh NoC");
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .expect("valid C/F");
    let n = spa.required_samples();

    let mut rows = Vec::new();
    for bench in [
        Benchmark::Canneal,
        Benchmark::Ferret,
        Benchmark::Blackscholes,
    ] {
        let spec = bench.workload_scaled(0.5);
        let xbar = Machine::new(SystemConfig::table2(), &spec).expect("valid machine");
        let mesh = Machine::new(SystemConfig::table2().with_mesh(), &spec).expect("valid machine");
        let speedups: Vec<f64> = (0..n)
            .map(|seed| {
                let m = mesh.run(seed).expect("run").metrics.runtime_seconds;
                let x = xbar.run(seed).expect("run").metrics.runtime_seconds;
                m / x // > 1 means the crossbar wins
            })
            .collect();
        let ci = spa
            .confidence_interval(&speedups, Direction::AtLeast)
            .expect("enough samples");
        rows.push(vec![
            bench.name().to_string(),
            format!("[{:.4}, {:.4}]", ci.lower(), ci.upper()),
            if ci.lower() > 1.0 {
                "crossbar wins".into()
            } else if ci.upper() < 1.0 {
                "mesh wins".into()
            } else {
                "inconclusive".into()
            },
        ]);
    }
    report::table(
        &["benchmark", "crossbar speedup 90% CI (F = 0.9)", "verdict"],
        &rows,
    );
    report::write_json("ablation_network", &rows);
}
