//! Ablation: Clopper–Pearson sequential SMC (the paper's choice,
//! Algorithm 1) vs Wald's SPRT (the alternative its §3.3 cites).
//!
//! Expected trade: SPRT uses slightly fewer samples when the true
//! satisfaction probability is far from F; exactly at p = F the CP loop
//! honestly refuses to converge (the paper's minimal assumption is
//! p ≠ F) while SPRT forces an arbitrary verdict.

use spa_bench::population::{population, PopulationKey};
use spa_bench::report;
use spa_core::property::{Direction, MetricProperty};
use spa_core::smc::SmcEngine;
use spa_core::sprt::Sprt;
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;
use spa_stats::descriptive::{quantile, QuantileMethod};

fn main() {
    report::header("Ablation", "Clopper-Pearson sequential SMC vs Wald SPRT");
    let pop = population(PopulationKey::standard(
        Benchmark::Ferret,
        spa_bench::population_size(),
    ));
    let samples = pop.metric(Metric::RuntimeSeconds);

    let engine = SmcEngine::new(0.9, 0.9).expect("valid C/F");
    let sprt = Sprt::new(0.9, 0.05, 0.1, 0.1).expect("valid SPRT");

    // Thresholds at population quantiles put the true satisfaction
    // probability of "runtime <= threshold" exactly where we want it.
    let mut rows = Vec::new();
    for &q in &[0.999, 0.98, 0.9, 0.7, 0.3] {
        let threshold = quantile(&samples, q, QuantileMethod::Linear).expect("non-empty");
        let property = MetricProperty::new(Direction::AtMost, threshold);
        // Cycle the population so both engines can draw "fresh" samples
        // beyond 500 if they need them.
        let outcomes = samples
            .iter()
            .cycle()
            .take(20_000)
            .map(|&x| property.satisfies(x));

        let cp = engine.run_sequential(outcomes.clone());
        let sp = sprt.run(outcomes);
        rows.push(vec![
            format!("true p = {q}"),
            match &cp {
                Ok(o) => format!("{} in {}", o.assertion, o.samples_used),
                Err(_) => "no decision in 20k".into(),
            },
            match &sp {
                Ok(o) => format!("{} in {}", o.assertion, o.samples_used),
                Err(_) => "no decision in 20k".into(),
            },
        ]);
    }
    report::table(
        &[
            "satisfaction probability",
            "CP sequential (Alg. 1)",
            "Wald SPRT",
        ],
        &rows,
    );
    println!("\n  Away from F = 0.9 both engines decide quickly, SPRT slightly faster.");
    println!("  Exactly AT p = F (the indifference point) neither verdict is");
    println!("  meaningful: CP honestly fails to converge (its §3.3 assumption is");
    println!("  p != F), while SPRT still emits a verdict — an arbitrary one.");
    report::write_json("ablation_sprt", &rows);
}
