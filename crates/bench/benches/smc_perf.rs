//! Criterion micro-benchmarks for the analysis layer: Clopper–Pearson
//! confidence, exact CI construction, the baselines, and raw simulator
//! throughput. These quantify the paper's remark that "the cost of
//! running experiments dominates the cost of statistical analysis".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use spa_baselines::bootstrap::bca_ci;
use spa_baselines::rank::rank_ci_normal;
use spa_baselines::zscore::z_ci;
use spa_core::ci::{ci_exact, sweep};
use spa_core::clopper_pearson::{confidence, positive_confidence};
use spa_core::property::{Direction, MetricProperty};
use spa_core::smc::SmcEngine;
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

fn samples_22() -> Vec<f64> {
    (0..22)
        .map(|i| 1.0 + 0.013 * (i as f64) + 0.37 * ((i * i) as f64 % 7.0))
        .collect()
}

fn bench_clopper_pearson(c: &mut Criterion) {
    c.bench_function("clopper_pearson_confidence_m20_n22", |b| {
        b.iter(|| confidence(black_box(20), black_box(22), black_box(0.9)).unwrap())
    });
}

fn bench_ci_methods(c: &mut Criterion) {
    let xs = samples_22();
    let engine = SmcEngine::new(0.9, 0.5).unwrap();
    let mut group = c.benchmark_group("ci_construction_22_samples");
    group.bench_function("spa_exact", |b| {
        b.iter(|| ci_exact(&engine, black_box(&xs), Direction::AtMost).unwrap())
    });
    group.bench_function("bootstrap_bca_500", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| bca_ci(black_box(&xs), 0.5, 0.9, 500, &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rank_normal", |b| {
        b.iter(|| rank_ci_normal(black_box(&xs), 0.5, 0.9).unwrap())
    });
    group.bench_function("zscore", |b| b.iter(|| z_ci(black_box(&xs), 0.9).unwrap()));
    group.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    // The indexed CI engine against the per-threshold recomputation it
    // replaced, on a dense 1000-point grid over 22 samples.
    let xs = samples_22();
    let engine = SmcEngine::new(0.9, 0.9).unwrap();
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let grain = (hi - lo) / 998.0;
    let thresholds: Vec<f64> = (0..=1000)
        .map(|i| (lo - grain) + i as f64 * grain)
        .collect();
    let mut group = c.benchmark_group("threshold_sweep_1000_points");
    group.bench_function("indexed_engine", |b| {
        b.iter(|| sweep(&engine, black_box(&xs), Direction::AtLeast, &thresholds).unwrap())
    });
    group.bench_function("per_threshold_recompute", |b| {
        b.iter(|| {
            let n = xs.len() as u64;
            thresholds
                .iter()
                .map(|&v| {
                    let m =
                        MetricProperty::new(Direction::AtLeast, v).count_satisfying(black_box(&xs));
                    (
                        positive_confidence(m, n, engine.proportion()).unwrap(),
                        engine.run_counts(m, n).unwrap().assertion,
                    )
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let spec = Benchmark::Ferret.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).unwrap();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("ferret_quarter_scale_run", |b| {
        b.iter(|| {
            seed += 1;
            machine.run(black_box(seed)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_clopper_pearson,
    bench_ci_methods,
    bench_threshold_sweep,
    bench_simulator
);
criterion_main!(benches);
