//! PR 10 bench: the event-driven simulator core vs the pre-refactor
//! quantum-stepped loop.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-bench --bench pr10_event_core`. Emits
//! `BENCH_pr10.json` at the workspace root; the measurement itself
//! lives in [`spa_bench::event_bench`] so the test suite's quick smoke
//! run and this full run share one code path (including the per-seed
//! equality cross-check that runs before any timing).

use spa_bench::event_bench;

fn main() {
    let report = event_bench::measure(64, 3);
    let path = event_bench::default_path();
    event_bench::write_json(&report, &path).expect("write BENCH_pr10.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
