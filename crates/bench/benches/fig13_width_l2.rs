//! Fig. 13: normalized CI width across benchmarks, L2 miss probability,
//! F = 0.9.

use spa_bench::experiment::eval_across_benchmarks;
use spa_bench::trial::{Method, TrialConfig};
use spa_sim::metrics::Metric;

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.9,
        spa_bench::bootstrap_resamples(),
    );
    eval_across_benchmarks(
        "fig13_width_l2",
        "Normalized CI width across benchmarks, L2 miss probability, F = 0.9",
        Metric::L2MissRate,
        &[Method::Spa, Method::Bootstrap],
        &cfg,
    );
}
