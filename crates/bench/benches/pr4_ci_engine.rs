//! PR 4 bench: the indexed CI-construction engine vs the pre-engine
//! linear scans on a dense Fig. 4-style threshold sweep.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-bench --bench pr4_ci_engine`. Emits
//! `BENCH_pr4.json` at the workspace root; the measurement itself lives
//! in [`spa_bench::ci_bench`] so the test suite's quick smoke run and
//! this full run share one code path.

use spa_bench::ci_bench;

fn main() {
    let report = ci_bench::measure(60, 400);
    let path = ci_bench::default_path();
    ci_bench::write_json(&report, &path).expect("write BENCH_pr4.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
