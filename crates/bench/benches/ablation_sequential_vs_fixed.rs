//! Ablation: sequential SMC (Algorithm 1) vs fixed-sample SMC
//! (Algorithm 2).
//!
//! Algorithm 1 adaptively stops as soon as the verdict is significant,
//! so it often needs far fewer executions than the fixed batch — the
//! trade-off is that its sample set differs per threshold, which is why
//! SPA's CI construction switched to Algorithm 2 (§4.1).

use spa_bench::population::{population, PopulationKey};
use spa_bench::report;
use spa_core::property::{Direction, MetricProperty};
use spa_core::smc::SmcEngine;
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;
use spa_stats::descriptive::{quantile, QuantileMethod};

fn main() {
    report::header(
        "Ablation",
        "Sequential (Alg. 1) vs fixed-sample (Alg. 2) SMC",
    );
    let pop = population(PopulationKey::standard(
        Benchmark::Ferret,
        spa_bench::population_size(),
    ));
    let samples = pop.metric(Metric::RuntimeSeconds);
    let engine = SmcEngine::new(0.9, 0.9).expect("valid C/F");

    // Sweep property thresholds around the distribution.
    let mut rows = Vec::new();
    for &q in &[0.05, 0.25, 0.5, 0.75, 0.95, 0.995] {
        let threshold = quantile(&samples, q, QuantileMethod::Linear).expect("non-empty");
        let property = MetricProperty::new(Direction::AtMost, threshold);
        let outcomes = samples.iter().map(|&x| property.satisfies(x));

        let seq = engine.run_sequential(outcomes.clone());
        let fixed_22 = engine
            .run_fixed(outcomes.clone().take(22))
            .expect("non-empty");
        rows.push(vec![
            format!("runtime <= q{q}"),
            match &seq {
                Ok(s) => format!("{} ({} samples)", s.assertion, s.samples_used),
                Err(_) => "did not converge in 500".into(),
            },
            match fixed_22.assertion {
                Some(a) => format!("{a}"),
                None => "none".into(),
            },
        ]);
    }
    report::table(
        &[
            "property",
            "Alg. 1 verdict (adaptive N)",
            "Alg. 2 verdict (N = 22)",
        ],
        &rows,
    );
    println!("\n  Alg. 1 spends samples only until significance; Alg. 2 fixes the");
    println!("  sample set so different thresholds stay comparable (CI building).");
    report::write_json("ablation_sequential_vs_fixed", &rows);
}
