//! Fig. 9: normalized CI width for ferret metrics at F = 0.9.
//!
//! Expected shape (paper §6.2.1): SPA's intervals are only slightly
//! wider than bootstrapping's.

use spa_bench::experiment::{eval_across_metrics, FERRET_METRICS};
use spa_bench::trial::{Method, TrialConfig};

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.9,
        spa_bench::bootstrap_resamples(),
    );
    eval_across_metrics(
        "fig09_width_f90",
        "Normalized CI width, ferret metrics, F = 0.9",
        &FERRET_METRICS,
        &[Method::Spa, Method::Bootstrap],
        &cfg,
        false,
    );
}
