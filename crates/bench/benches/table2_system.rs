//! Table 2: simulated system parameters, plus a sanity run per
//! benchmark confirming the configuration executes.

use spa_bench::report;
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

fn main() {
    report::header("Table 2", "Simulated system parameters");
    let c = SystemConfig::table2();
    let rows = vec![
        vec![
            "cores".into(),
            format!("{} out-of-order x86 cores", c.cores),
        ],
        vec![
            "L1 I".into(),
            format!(
                "{}KB/{}-way, {}-cycle ({} sets)",
                c.l1i.capacity_bytes / 1024,
                c.l1i.ways,
                c.l1i.latency,
                c.l1i.sets(c.block_bytes)
            ),
        ],
        vec![
            "L1 D".into(),
            format!(
                "{}KB/{}-way, {}-cycle ({} sets)",
                c.l1d.capacity_bytes / 1024,
                c.l1d.ways,
                c.l1d.latency,
                c.l1d.sets(c.block_bytes)
            ),
        ],
        vec![
            "shared L2".into(),
            format!(
                "inclusive {}MB/{}-way, {}-cycle ({} sets)",
                c.l2.capacity_bytes / (1024 * 1024),
                c.l2.ways,
                c.l2.latency,
                c.l2.sets(c.block_bytes)
            ),
        ],
        vec!["cache block size".into(), format!("{}B", c.block_bytes)],
        vec![
            "memory".into(),
            format!("{}-cycle DRAM + 0-4 cycle injected jitter", c.dram_latency),
        ],
        vec!["coherence protocol".into(), "MESI directory".into()],
        vec![
            "on-chip network".into(),
            format!(
                "crossbar with {}B links (block transfer = {} cycles)",
                c.link_bytes,
                c.block_transfer_cycles()
            ),
        ],
    ];
    report::table(&["parameter", "value"], &rows);

    println!("\n  Sanity execution of every PARSEC workload on this system:");
    let mut sanity = Vec::new();
    for b in Benchmark::ALL {
        let spec = b.workload_scaled(0.25);
        let machine = Machine::new(SystemConfig::table2(), &spec).expect("valid machine");
        let r = machine.run(0).expect("run succeeds");
        sanity.push(vec![
            b.name().to_string(),
            format!("{}", r.metrics.runtime_cycles),
            format!("{:.2}", r.metrics.ipc),
            format!("{:.2}", r.metrics.l1_mpki),
            format!("{:.2}", r.metrics.l2_mpki),
        ]);
    }
    report::table(
        &["benchmark", "cycles", "IPC", "L1 MPKI", "L2 MPKI"],
        &sanity,
    );
    report::write_json("table2_system", &rows);
}
