//! PR 5 bench: the trace-to-verdict pipeline's recording and STL
//! evaluation overhead vs the scalar sampling path.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-bench --bench pr5_pipeline`. Emits
//! `BENCH_pr5.json` at the workspace root; the measurement itself lives
//! in [`spa_bench::pipeline_bench`] so the test suite's quick smoke run
//! and this full run share one code path.

use spa_bench::pipeline_bench;

fn main() {
    let report = pipeline_bench::measure(40, 2000);
    let path = pipeline_bench::default_path();
    pipeline_bench::write_json(&report, &path).expect("write BENCH_pr5.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
