//! Fig. 15: the Fig. 8 experiment redone with every metric rounded to
//! 3 decimal places (§6.4).
//!
//! Expected shape: the rounding floods the samples with duplicates, so
//! BCa bootstrapping fails to produce a CI ("Null") in a large fraction
//! of trials on most metrics, while SPA is unaffected.

use spa_bench::experiment::{eval_across_metrics, FERRET_METRICS};
use spa_bench::trial::{Method, TrialConfig};

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.9,
        spa_bench::bootstrap_resamples(),
    );
    let rows = eval_across_metrics(
        "fig15_bootstrap_failures",
        "Fig. 8 redone with metrics rounded to 3 decimals (duplicate data)",
        &FERRET_METRICS,
        &[Method::Spa, Method::Bootstrap],
        &cfg,
        true,
    );
    println!("\n  bootstrap Null fraction per metric (the figure's red bars):");
    for r in &rows {
        let boot = r
            .methods
            .iter()
            .find(|e| e.method == Method::Bootstrap)
            .unwrap();
        let spa = r.methods.iter().find(|e| e.method == Method::Spa).unwrap();
        println!(
            "    {:<42} bootstrap Null = {:.2}   SPA Null = {:.2}",
            r.label, boot.null_fraction, spa.null_fraction
        );
    }
}
