//! Ablation: variability-injection magnitude (0, 4, 16 cycles) and its
//! effect on population CV — and the *invariance* of SPA's error
//! guarantee to that choice (SMC analyzes whatever distribution it is
//! given; §2.2).

use spa_bench::population::{population, NoiseModel, PopulationKey, SystemVariant};
use spa_bench::report;
use spa_bench::trial::{evaluate, Method, TrialConfig};
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;
use spa_stats::descriptive::coefficient_of_variation;

fn main() {
    report::header("Ablation", "Variability-injection magnitude");
    let n = spa_bench::population_size();
    let trials = spa_bench::trial_count().min(300);
    let mut rows = Vec::new();
    for max in [0u64, 4, 16] {
        let pop = population(PopulationKey {
            benchmark: Benchmark::Ferret,
            system: SystemVariant::Table2,
            noise: NoiseModel::Jitter(max),
            count: n,
            seed_start: 0,
        });
        let samples = pop.metric(Metric::RuntimeSeconds);
        let cv = coefficient_of_variation(&samples);
        let error = if max == 0 {
            // Degenerate population: all values identical; coverage is
            // trivially perfect but uninformative.
            "n/a (degenerate)".to_string()
        } else {
            let cfg = TrialConfig {
                trials,
                samples: 22,
                confidence: 0.9,
                proportion: 0.5,
                resamples: 200,
                seed: 0xAB1A,
            };
            let (_, evals) = evaluate(&samples, &[Method::Spa], &cfg);
            format!("{:.3}", evals[0].error_probability)
        };
        rows.push(vec![format!("0-{max} cycles"), format!("{cv:.5}"), error]);
    }
    report::table(
        &["injected jitter", "runtime CV", "SPA CI error probability"],
        &rows,
    );
    println!("\n  The guarantee holds regardless of the injected magnitude — SMC's");
    println!("  analysis is independent of how variability is injected (§2.2).");
    report::write_json("ablation_jitter", &rows);
}
