//! §6 context: coefficients of variation across ferret metrics and
//! across benchmarks for L1 MPKI (the paper quotes 0.022-0.117 and
//! 0.0002-0.127 respectively on its gem5 populations).

use spa_bench::experiment::FERRET_METRICS;
use spa_bench::population::{population, PopulationKey};
use spa_bench::report;
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;
use spa_stats::descriptive::coefficient_of_variation;

fn main() {
    report::header("Sec. 6", "Coefficient-of-variation ranges");
    let n = spa_bench::population_size();

    println!("\n  ferret, across metrics:");
    let pop = population(PopulationKey::standard(Benchmark::Ferret, n));
    let mut rows = Vec::new();
    for m in FERRET_METRICS {
        let cv = coefficient_of_variation(&pop.metric(m));
        rows.push(vec![m.name().to_string(), format!("{cv:.5}")]);
    }
    report::table(&["metric", "CV"], &rows);

    println!("\n  L1 MPKI, across benchmarks:");
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let pop = population(PopulationKey::standard(b, n));
        let cv = coefficient_of_variation(&pop.metric(Metric::L1Mpki));
        rows.push(vec![b.name().to_string(), format!("{cv:.5}")]);
    }
    report::table(&["benchmark", "CV"], &rows);
    report::write_json("sec6_cv_ranges", &rows);
}
