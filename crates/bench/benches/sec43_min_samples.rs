//! §4.3: minimum samples required for SPA convergence (Eq. 6-8),
//! including the published "22 samples at C = F = 0.9" figure.

use spa_bench::report;
use spa_core::min_samples::{min_samples, n_negative, n_positive};

fn main() {
    report::header("Sec. 4.3", "Minimum samples for convergence (Eq. 6-8)");
    let mut rows = Vec::new();
    for &c in &[0.9, 0.95, 0.99, 0.999] {
        for &f in &[0.5, 0.8, 0.9, 0.95, 0.99] {
            rows.push(vec![
                format!("{c}"),
                format!("{f}"),
                n_positive(c, f).expect("valid C/F").to_string(),
                n_negative(c, f).expect("valid C/F").to_string(),
                min_samples(c, f).expect("valid C/F").to_string(),
            ]);
        }
    }
    report::table(
        &["C", "F", "N+ (Eq. 6)", "N- (Eq. 7)", "min samples (Eq. 8)"],
        &rows,
    );
    let headline = min_samples(0.9, 0.9).expect("valid C/F");
    println!(
        "\n  paper's §4.3 example: C = 0.9, F = 0.9 requires {headline} samples (N+ = 22, N- = 1)"
    );
    assert_eq!(headline, 22);
    report::write_json("sec43_min_samples", &rows);
}
