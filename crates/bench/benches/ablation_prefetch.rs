//! Ablation: next-line L2 prefetcher (an extension beyond Table 2,
//! which lists no prefetcher). Quantifies its effect per benchmark and
//! confirms SPA's statistical machinery applies unchanged to the
//! modified design — comparing two designs is precisely SPA's job.

use spa_bench::report;
use spa_core::property::Direction;
use spa_core::spa::Spa;
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

fn main() {
    report::header("Ablation", "Next-line L2 prefetcher (off vs on)");
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .build()
        .expect("valid C/F");
    let n = spa.required_samples();

    let mut rows = Vec::new();
    for bench in [
        Benchmark::Dedup,        // streaming: prefetch-friendly
        Benchmark::Canneal,      // random access: prefetch-hostile
        Benchmark::Ferret,       // mixed
        Benchmark::Blackscholes, // small working set: indifferent
    ] {
        let spec = bench.workload_scaled(0.5);
        let base = Machine::new(SystemConfig::table2(), &spec).expect("valid machine");
        let pf =
            Machine::new(SystemConfig::table2().with_prefetch(), &spec).expect("valid machine");
        // Common random numbers per pair.
        let speedups: Vec<f64> = (0..n)
            .map(|seed| {
                let b = base.run(seed).expect("run").metrics;
                let p = pf.run(seed).expect("run").metrics;
                b.runtime_seconds / p.runtime_seconds
            })
            .collect();
        let ci = spa
            .confidence_interval(&speedups, Direction::AtLeast)
            .expect("enough samples");
        let mean: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
        rows.push(vec![
            bench.name().to_string(),
            format!("{mean:.4}"),
            format!("[{:.4}, {:.4}]", ci.lower(), ci.upper()),
            if ci.lower() > 1.0 {
                "prefetcher wins".into()
            } else if ci.upper() < 1.0 {
                "prefetcher hurts".into()
            } else {
                "inconclusive".into()
            },
        ]);
    }
    report::table(
        &[
            "benchmark",
            "mean speedup",
            "SPA 90% CI (F = 0.9)",
            "verdict",
        ],
        &rows,
    );
    report::write_json("ablation_prefetch", &rows);
}
