//! PR 3 bench smoke: sampling throughput and CI-construction latency.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-bench --bench pr3_observability`. Emits
//! `BENCH_pr3.json` at the workspace root; the measurement itself lives
//! in [`spa_bench::obs_bench`] so the test suite's quick smoke run and
//! this full run share one code path.

use spa_bench::obs_bench;

fn main() {
    let report = obs_bench::measure(100);
    let path = obs_bench::default_path();
    obs_bench::write_json(&report, &path).expect("write BENCH_pr3.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
