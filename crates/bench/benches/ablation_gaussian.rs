//! Ablation: is the Z-score baseline's failure just a sloppy quantile?
//!
//! Replacing the normal quantile with Student's t (the textbook
//! small-sample correction) widens the interval by t/z ≈ 4.6 % at
//! n = 22 — but both intervals target the *mean* under a Gaussian
//! assumption, so on skewed metric distributions the t correction
//! cannot repair the error probability. This isolates the paper's point:
//! the assumption is the problem, not the arithmetic.

use spa_bench::experiment::{eval_across_metrics, FERRET_METRICS};
use spa_bench::trial::{Method, TrialConfig};

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.5,
        spa_bench::bootstrap_resamples(),
    );
    let rows = eval_across_metrics(
        "ablation_gaussian",
        "Gaussian-assumption baselines: Z vs Student-t (F = 0.5)",
        &FERRET_METRICS,
        &[Method::Spa, Method::ZScore, Method::TScore],
        &cfg,
        false,
    );
    println!("\n  t-score / Z-score width ratio (expected ~1.046 at n = 22):");
    for r in &rows {
        let z = r
            .methods
            .iter()
            .find(|e| e.method == Method::ZScore)
            .unwrap();
        let t = r
            .methods
            .iter()
            .find(|e| e.method == Method::TScore)
            .unwrap();
        println!(
            "    {:<42} {:.4}",
            r.label,
            t.mean_norm_width / z.mean_norm_width
        );
    }
}
