//! Fig. 2: 500 simulated ferret runtimes with variability injection
//! (uniform 0–4 cycle DRAM jitter, the §5.2 methodology).

use spa_bench::population::{population, PopulationKey};
use spa_bench::report;
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;
use spa_stats::descriptive::{coefficient_of_variation, quantile, QuantileMethod};
use spa_stats::histogram::Histogram;

fn main() {
    report::header(
        "Fig. 2",
        "500 simulated ferret runtimes with DRAM-jitter variability",
    );
    let pop = population(PopulationKey::standard(
        Benchmark::Ferret,
        spa_bench::population_size(),
    ));
    let rt = pop.metric(Metric::RuntimeSeconds);

    let hist = Histogram::from_data(&rt, 25).expect("non-empty population");
    println!("\n{}", hist.render_ascii(50));

    let mut rows = Vec::new();
    for f in [0.1, 0.5, 0.9] {
        let q = quantile(&rt, f, QuantileMethod::LowerRank).expect("non-empty");
        rows.push(vec![format!("F = {f}"), format!("{q:.6} s")]);
    }
    report::table(&["proportion", "runtime"], &rows);
    println!(
        "\n  coefficient of variation: {:.4} (distinct values: {}/{})",
        coefficient_of_variation(&rt),
        {
            let mut s = rt.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            s.dedup();
            s.len()
        },
        rt.len()
    );
    report::write_json("fig02_sim_distribution", &rt);
}
