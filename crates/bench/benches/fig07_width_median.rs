//! Fig. 7: normalized CI width for ferret metrics at F = 0.5.
//!
//! Expected shape (paper §6.1): the Z-score CI is 2.3-4.3x wider than
//! SPA's; SPA is comparable to bootstrapping and rank testing.

use spa_bench::experiment::{eval_across_metrics, FERRET_METRICS};
use spa_bench::trial::{Method, TrialConfig};

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.5,
        spa_bench::bootstrap_resamples(),
    );
    let rows = eval_across_metrics(
        "fig07_width_median",
        "Normalized CI width, ferret metrics, F = 0.5",
        &FERRET_METRICS,
        &[
            Method::Spa,
            Method::Bootstrap,
            Method::RankTest,
            Method::ZScore,
        ],
        &cfg,
        false,
    );
    // The headline ratio the paper quotes: Z-score vs SPA width.
    println!("\n  Z-score / SPA width ratios:");
    for r in &rows {
        let spa = r.methods.iter().find(|e| e.method == Method::Spa).unwrap();
        let z = r
            .methods
            .iter()
            .find(|e| e.method == Method::ZScore)
            .unwrap();
        println!(
            "    {:<40} {:.2}x",
            r.label,
            z.mean_norm_width / spa.mean_norm_width
        );
    }
}
