//! Fig. 5: one-trial case study comparing the four CI constructions on
//! the same 22-sample draw of the speedup data, against the population
//! ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spa_baselines::bootstrap::bca_ci;
use spa_baselines::rank::rank_ci_normal;
use spa_baselines::zscore::z_ci;
use spa_bench::population::{
    population, speedup_samples, NoiseModel, PopulationKey, SystemVariant,
};
use spa_bench::report;
use spa_core::property::Direction;
use spa_core::spa::Spa;
use spa_sim::workload::parsec::Benchmark;
use spa_stats::descriptive::{quantile, QuantileMethod};

fn main() {
    report::header(
        "Fig. 5",
        "CIs constructed by different techniques on one 22-sample draw",
    );
    let n = spa_bench::population_size();
    let base = population(PopulationKey {
        benchmark: Benchmark::Ferret,
        system: SystemVariant::L2Small,
        noise: NoiseModel::Paper,
        count: n,
        seed_start: 0,
    });
    let improved = population(PopulationKey {
        benchmark: Benchmark::Ferret,
        system: SystemVariant::L2Large,
        noise: NoiseModel::Paper,
        count: n,
        seed_start: 10_000,
    });
    let speedups = speedup_samples(&base, &improved);
    // SPA targets the F = 0.9 proportion with Direction::AtLeast, i.e.
    // the speedup achieved by at least 90 % of paired executions — the
    // 0.1-quantile of the population.
    let f = 0.9;
    let c = 0.9;
    let ground_truth = quantile(&speedups, 1.0 - f, QuantileMethod::LowerRank).expect("non-empty");
    let sample: Vec<f64> = speedups.iter().take(22).copied().collect();

    let spa = Spa::builder()
        .confidence(c)
        .proportion(f)
        .build()
        .expect("valid C/F");
    let ci_start = std::time::Instant::now();
    let spa_ci = spa
        .confidence_interval(&sample, Direction::AtLeast)
        .expect("enough samples");
    let ci_elapsed = ci_start.elapsed();

    let mut rng = StdRng::seed_from_u64(5);
    let boot = bca_ci(
        &sample,
        1.0 - f,
        c,
        spa_bench::bootstrap_resamples(),
        &mut rng,
    );
    let rank = rank_ci_normal(&sample, 1.0 - f, c);
    let z = z_ci(&sample, c);

    println!("\n  population ground truth (0.1-quantile of speedup): {ground_truth:.4}\n");
    fn ci_row(ground_truth: f64, name: &str, lo: f64, hi: f64) -> Vec<String> {
        let covers = ground_truth >= lo && ground_truth <= hi;
        vec![
            name.to_string(),
            format!("[{lo:.4}, {hi:.4}]"),
            format!("{:.4}", hi - lo),
            if covers { "yes".into() } else { "NO".into() },
        ]
    }
    fn fail_row(name: &str, e: impl std::fmt::Display) -> Vec<String> {
        vec![name.into(), format!("failed: {e}"), "-".into(), "-".into()]
    }
    let mut rows = vec![ci_row(ground_truth, "SPA", spa_ci.lower(), spa_ci.upper())];
    rows.push(match boot {
        Ok(b) => ci_row(ground_truth, "Bootstrapping (BCa)", b.lower(), b.upper()),
        Err(e) => fail_row("Bootstrapping (BCa)", e),
    });
    rows.push(match rank {
        Ok(r) => ci_row(ground_truth, "Rank testing", r.lower(), r.upper()),
        Err(e) => fail_row("Rank testing", e),
    });
    rows.push(match z {
        Ok(zi) => ci_row(ground_truth, "Z-score", zi.lower(), zi.upper()),
        Err(e) => fail_row("Z-score", e),
    });
    report::table(&["method", "interval", "width", "covers truth"], &rows);
    println!(
        "\n  SPA interval constructed in {:.1} us by the indexed CI engine",
        ci_elapsed.as_secs_f64() * 1e6
    );
    println!("  note: a single trial is a case study, not an accuracy claim (§5.4);");
    println!("  the 1000-trial evaluation is Figs. 6-13.");
    report::write_json("fig05_ci_case_study", &rows);
}
