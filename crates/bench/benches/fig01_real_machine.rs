//! Fig. 1: 1000 runtimes of the ferret benchmark on a "real machine".
//!
//! The paper's population comes from bare-metal hardware; we substitute
//! the OS-noise variability model (colocated-process interference in a
//! fraction of runs), which produces the same qualitative shape: a
//! dominant fast mode holding ~80 % of executions and a slow spread —
//! clearly non-Gaussian, defeating any Gaussian-assumption analysis.
//! The dashed proportion lines of the figure are reported as the
//! F-quantiles below the histogram.

use spa_bench::population::{population, NoiseModel, PopulationKey, SystemVariant};
use spa_bench::report;
use spa_sim::metrics::Metric;
use spa_sim::workload::parsec::Benchmark;
use spa_stats::descriptive::{coefficient_of_variation, quantile, QuantileMethod};
use spa_stats::histogram::Histogram;

fn main() {
    report::header(
        "Fig. 1",
        "1000 ferret runtimes on the (simulated) real machine",
    );
    let n = spa_bench::population_size().max(1000);
    let pop = population(PopulationKey {
        benchmark: Benchmark::Ferret,
        system: SystemVariant::Table2,
        noise: NoiseModel::RealMachine,
        count: n,
        seed_start: 0,
    });
    let rt = pop.metric(Metric::RuntimeSeconds);

    let hist = Histogram::from_data(&rt, 25).expect("non-empty population");
    println!("\n{}", hist.render_ascii(50));

    println!("  proportion values (the figure's dashed lines):");
    let mut rows = Vec::new();
    for f in [0.5, 0.8, 0.9, 0.95] {
        let q = quantile(&rt, f, QuantileMethod::LowerRank).expect("non-empty");
        rows.push(vec![format!("F = {f}"), format!("{q:.6} s")]);
    }
    report::table(&["proportion", "runtime"], &rows);

    let modes = hist.count_modes((n / 100) as u64);
    let cv = coefficient_of_variation(&rt);
    println!("\n  modes detected: {modes} (paper's figure is bi-modal)");
    println!("  coefficient of variation: {cv:.4}");
    assert!(modes >= 2, "real-machine population should be multi-modal");
    report::write_json("fig01_real_machine", &rt);
}
