//! Table 1: the nine property templates, each evaluated with SMC on
//! real simulator executions.
//!
//! For every row we build the paper's example property, evaluate it on
//! a population of traced ferret executions, and run the fixed-sample
//! SMC test (Algorithm 2) on the outcomes — demonstrating that each
//! template maps onto the `φ(σ)` booleans the engine consumes.

use spa_bench::report;
use spa_core::smc::SmcEngine;
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;
use spa_stl::ast::CmpOp;
use spa_stl::templates::Template;

fn main() {
    report::header("Table 1", "Properties one can evaluate with SMC");

    // Traced executions are slower; a small population suffices to
    // demonstrate every template.
    let count = 40u64;
    let spec = Benchmark::Ferret.workload_scaled(0.5);
    let config = SystemConfig::table2().with_trace();
    let machine = Machine::new(config, &spec).expect("valid machine");
    let runs: Vec<_> = (0..count)
        .map(|seed| {
            machine
                .run(seed)
                .expect("simulation failed")
                .stl_data
                .expect("trace collection enabled")
        })
        .collect();

    // Calibrate thresholds from the first run so properties are
    // non-trivial (mix of true/false across the population).
    let rt = runs[0].metric("runtime").unwrap();
    let ipc = runs[0].metric("ipc").unwrap();
    let mll = runs[0].metric("max_load_latency").unwrap();

    let properties: Vec<(&str, Template)> = vec![
        (
            "1: metric > threshold        (performance > A)",
            Template::metric_threshold("ipc", CmpOp::Gt, ipc * 0.98),
        ),
        (
            "2: t1 > metric > t2          (A > runtime > B)",
            Template::metric_between("runtime", rt * 0.95, rt * 1.05).unwrap(),
        ),
        (
            "3: %time in state < A        (%time all cores busy)",
            Template::TimeInState {
                signal: "active_threads".into(),
                state_op: CmpOp::Ge,
                state_value: 4.0,
                time_op: CmpOp::Lt,
                time_fraction: 0.99,
            },
        ),
        (
            "4: avg cycles/event > A      (between TLB misses)",
            Template::AvgCyclesPerEvent {
                event: "tlb_miss".into(),
                op: CmpOp::Gt,
                threshold: 50.0,
            },
        ),
        (
            "5: m1 > A -> m2 > B          (power -> performance)",
            Template::metric_implication("l2_mpki", CmpOp::Gt, 0.0, "ipc", CmpOp::Gt, ipc * 0.9),
        ),
        (
            "6: event -> Prob[event2 in C] (second L2 miss soon)",
            Template::EventWithinWindow {
                trigger: "l2_miss".into(),
                response: "l2_miss".into(),
                window: 2_000,
                prob_op: CmpOp::Gt,
                prob: 0.5,
            },
        ),
        (
            "7: lat1 > A -> lat2 > B      (service-time coupling)",
            Template::latency_implication(
                "max_load_latency",
                CmpOp::Gt,
                mll * 0.5,
                "avg_load_latency",
                CmpOp::Gt,
                1.0,
            ),
        ),
        (
            "8: enter -> stay until ev.   (contended until miss)",
            Template::StayInStateUntil {
                enter: "lock_contention".into(),
                state_signal: "active_threads".into(),
                state_op: CmpOp::Ge,
                state_value: 1.0,
                until_event: "l2_miss".into(),
                prob_op: CmpOp::Ge,
                prob: 0.5,
            },
        ),
        (
            "9: Prob[ev | Prob[state]>A]  (TLB miss while busy)",
            Template::ConditionalEventProb {
                event: "tlb_miss".into(),
                state_signal: "active_threads".into(),
                state_op: CmpOp::Ge,
                state_value: 2.0,
                inner_op: CmpOp::Gt,
                inner_prob: 0.1,
                outer_op: CmpOp::Gt,
                outer_prob: 0.2,
            },
        ),
    ];

    let engine = SmcEngine::new(0.9, 0.8).expect("valid C/F");
    let mut rows = Vec::new();
    for (label, template) in &properties {
        let outcomes: Vec<bool> = runs
            .iter()
            .map(|r| template.evaluate(r).expect("property evaluates"))
            .collect();
        let satisfied = outcomes.iter().filter(|&&b| b).count();
        let test = engine
            .run_fixed(outcomes.iter().copied())
            .expect("non-empty outcomes");
        rows.push(vec![
            label.to_string(),
            format!("{satisfied}/{count}"),
            match test.assertion {
                Some(a) => a.to_string(),
                None => "none (inconclusive)".into(),
            },
            format!("{:.3}", test.achieved_confidence),
        ]);
    }
    report::table(
        &[
            "property (Table 1 row)",
            "satisfied",
            "SMC verdict (F=0.8,C=0.9)",
            "C_CP",
        ],
        &rows,
    );
    report::write_json("table1_properties", &rows);
}
