//! PR 7 bench: anytime-valid samples-to-decision vs the fixed-`N`
//! budget, plus per-update confidence-sequence overhead.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-bench --bench pr7_anytime`. Emits
//! `BENCH_pr7.json` at the workspace root; the measurement itself lives
//! in [`spa_bench::seq_bench`] so the test suite's quick smoke run and
//! this full run share one code path.

use spa_bench::seq_bench;

fn main() {
    let report = seq_bench::measure(2000);
    let path = seq_bench::default_path();
    seq_bench::write_json(&report, &path).expect("write BENCH_pr7.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
