//! Fig. 8: CI error probability for ferret metrics at F = 0.9, SPA vs
//! bootstrapping (the only methods applicable off the median), with
//! bootstrap "Null" fractions.
//!
//! Expected shape (paper §6.2.1): SPA meets the 0.1 threshold on every
//! metric; bootstrapping frequently exceeds it and returns Null on the
//! integer-valued Max Load Latency metric.

use spa_bench::experiment::{eval_across_metrics, FERRET_METRICS};
use spa_bench::trial::{Method, TrialConfig};

fn main() {
    let cfg = TrialConfig::paper(
        spa_bench::trial_count(),
        0.9,
        0.9,
        spa_bench::bootstrap_resamples(),
    );
    eval_across_metrics(
        "fig08_error_f90",
        "CI error probability, ferret metrics, F = 0.9",
        &FERRET_METRICS,
        &[Method::Spa, Method::Bootstrap],
        &cfg,
        false,
    );
}
