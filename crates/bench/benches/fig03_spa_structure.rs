//! Fig. 3: the SPA structural diagram — inputs, the SPA wrapper
//! controlling the SMC engine and the simulator, and the CI output —
//! rendered with the concrete types of this implementation and verified
//! live by running the exact flow once.

use spa_bench::report;
use spa_core::spa::{Direction, Spa};
use spa_sim::config::SystemConfig;
use spa_sim::machine::Machine;
use spa_sim::workload::parsec::Benchmark;

fn main() {
    report::header("Fig. 3", "SPA structural diagram (live)");
    println!(
        r#"
   metric, C, F, batch b ────────────┐            (user inputs)
                                     ▼
                          ┌─────────────────────┐
                          │     SPA wrapper     │   spa_core::spa::Spa
                          └──────────┬──────────┘
             required_samples (Eq.8) │ seeds, batched b-wide
                  ┌──────────────────┼───────────────────┐
                  ▼                                      ▼
        ┌──────────────────┐                  ┌───────────────────┐
        │    SMC engine    │                  │     simulator     │
        │ Alg. 2 per       │◄──  metric  ─────│ spa_sim::Machine  │
        │ threshold (§4.2) │     samples      │ (Table 2 + noise) │
        └────────┬─────────┘                  └───────────────────┘
                 ▼
      confidence interval [V_lower, V_upper]             (output)
"#
    );

    // Run the diagram once, for real.
    let spec = Benchmark::Ferret.workload_scaled(0.25);
    let machine = Machine::new(SystemConfig::table2(), &spec).expect("valid machine");
    let spa = Spa::builder()
        .confidence(0.9)
        .proportion(0.9)
        .batch_size(4)
        .build()
        .expect("valid C/F");
    let report_out = spa
        .run(
            &|seed: u64| {
                machine
                    .run(seed)
                    .expect("simulation failed")
                    .metrics
                    .runtime_seconds
            },
            0,
            Direction::AtMost,
        )
        .expect("SPA run succeeds");
    println!(
        "  live run: {} executions -> runtime CI {}",
        report_out.samples.len(),
        report_out.interval
    );
    report::write_json("fig03_spa_structure", &report_out.samples);
}
