//! Property tests on the trial engine's aggregate invariants.

use proptest::prelude::*;

use spa_bench::trial::{evaluate, Method, TrialConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn evaluation_outputs_are_well_formed(
        pop in proptest::collection::vec(0.5_f64..100.0, 40..120),
        proportion in 0.3_f64..0.9,
        seed in 0_u64..1000,
    ) {
        let cfg = TrialConfig {
            trials: 40,
            samples: 22,
            confidence: 0.9,
            proportion,
            resamples: 60,
            seed,
        };
        let methods = [Method::Spa, Method::Bootstrap, Method::RankTest,
                       Method::ZScore, Method::TScore];
        let (gt, evals) = evaluate(&pop, &methods, &cfg);
        // Ground truth is a population element (lower-rank quantile).
        prop_assert!(pop.contains(&gt));
        prop_assert_eq!(evals.len(), methods.len());
        for e in &evals {
            prop_assert!((0.0..=1.0).contains(&e.null_fraction), "{:?}", e);
            if e.null_fraction < 1.0 {
                prop_assert!((0.0..=1.0).contains(&e.error_probability), "{:?}", e);
                prop_assert!(e.mean_width >= 0.0, "{:?}", e);
                prop_assert!(e.mean_norm_width >= 0.0, "{:?}", e);
            }
            // SPA never fails to produce an interval.
            if e.method == Method::Spa {
                prop_assert_eq!(e.null_fraction, 0.0);
            }
        }
    }

    #[test]
    fn same_seed_same_results(
        pop in proptest::collection::vec(0.5_f64..100.0, 40..80),
        seed in 0_u64..1000,
    ) {
        let cfg = TrialConfig {
            trials: 20,
            samples: 22,
            confidence: 0.9,
            proportion: 0.5,
            resamples: 40,
            seed,
        };
        let a = evaluate(&pop, &[Method::Spa, Method::Bootstrap], &cfg);
        let b = evaluate(&pop, &[Method::Spa, Method::Bootstrap], &cfg);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }
}
