//! Quick run of the PR 3 perf baseline: checks the measured numbers are
//! sane and refreshes `BENCH_pr3.json` at the workspace root, so the
//! perf trajectory file exists after any `cargo test` (the bench binary
//! and the CI bench-smoke job produce the same file at higher iteration
//! counts).

use spa_bench::obs_bench;

#[test]
fn pr3_baseline_measures_and_writes_bench_json() {
    let report = obs_bench::measure(20);
    assert!(report.samples >= 22, "Eq. 8 floor: {}", report.samples);
    assert!(
        report.samples_per_sec > 0.0 && report.sampling_elapsed_ms > 0.0,
        "throughput must be measurable: {report:?}"
    );
    assert!(
        report.ci_construction_ns_bare > 0 && report.ci_construction_ns_noop_subscriber > 0,
        "CI-construction latency must be measurable: {report:?}"
    );
    // Warmup (3) + timed iterations (20), minus any out-of-range.
    let observed = 23 - report.ci_latency_underflow - report.ci_latency_overflow;
    assert!(
        report.ci_latency_mean_ns.is_some() || observed == 0,
        "{report:?}"
    );

    let path = obs_bench::default_path();
    obs_bench::write_json(&report, &path).expect("write BENCH_pr3.json");
    let back: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back")).expect("json");
    assert_eq!(back["bench"], "pr3_observability");
    assert!(back["samples_per_sec"].as_f64().expect("field") > 0.0);
    assert!(back["ci_construction_ns_bare"].as_u64().expect("field") > 0);
}
