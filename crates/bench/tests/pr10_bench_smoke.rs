//! Quick run of the PR 10 event-core-vs-quantum measurement: checks
//! the numbers are sane and refreshes `BENCH_pr10.json` at the
//! workspace root, so the perf file exists after any `cargo test`. The
//! bench binary and the CI bench-smoke job produce the same file at
//! higher iteration counts — and CI enforces the ≥1.3× floor on that
//! run, where the machine is idle; here only positivity and the
//! per-seed equality cross-check (inside `measure`) guard against
//! regressions without flaking under parallel test load.

use spa_bench::event_bench;

#[test]
fn pr10_event_core_measures_and_writes_bench_json() {
    let report = event_bench::measure(8, 1);
    assert_eq!(report.bench, "pr10_event_core");
    assert_eq!(report.samples, 8);
    assert!(report.quantum_total_ms > 0.0);
    assert!(report.event_total_ms > 0.0);
    assert!(report.quantum_samples_per_sec > 0.0);
    assert!(report.event_samples_per_sec > 0.0);
    assert!(report.speedup > 0.0);

    let path = event_bench::default_path();
    event_bench::write_json(&report, &path).expect("write BENCH_pr10.json");
    let back: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back")).expect("json");
    assert_eq!(back["bench"], "pr10_event_core");
    assert!(back["speedup"].as_f64().expect("field") > 0.0);
}
