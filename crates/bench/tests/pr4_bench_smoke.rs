//! Quick run of the PR 4 engine-vs-naive measurement: checks the
//! numbers are sane (including that the indexed engine actually beats
//! the naive scan) and refreshes `BENCH_pr4.json` at the workspace
//! root, so the perf file exists after any `cargo test`. The bench
//! binary and the CI bench-smoke job produce the same file at higher
//! iteration counts — and CI enforces the ≥ 5× sweep-speedup floor on
//! that run, where the machine is idle; here a conservative > 1× guards
//! against regressions without flaking under parallel test load.

use spa_bench::ci_bench;

#[test]
fn pr4_engine_measures_and_writes_bench_json() {
    let report = ci_bench::measure(5, 20);
    assert_eq!(report.samples, 22, "Eq. 8 minimum sample");
    assert!(report.grid_points > 1000, "dense sweep: {report:?}");
    assert!(
        report.naive_thresholds_per_sec > 0.0 && report.indexed_thresholds_per_sec > 0.0,
        "throughputs must be measurable: {report:?}"
    );
    assert!(
        report.sweep_speedup > 1.0,
        "indexed sweep should beat the naive scan: {report:?}"
    );
    assert!(
        report.naive_ci_exact_ns > 0 && report.indexed_ci_exact_ns > 0,
        "CI latencies must be measurable: {report:?}"
    );
    // Every grid threshold is answered through the index, and nearly
    // all of them (all but the distinct success counts) hit the
    // Clopper–Pearson memo.
    assert_eq!(report.index_hits_per_sweep, report.grid_points);
    assert!(
        report.cp_cache_hits_per_sweep >= report.grid_points - 2 * (report.samples + 1),
        "memo should serve almost every threshold: {report:?}"
    );

    let path = ci_bench::default_path();
    ci_bench::write_json(&report, &path).expect("write BENCH_pr4.json");
    let back: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back")).expect("json");
    assert_eq!(back["bench"], "pr4_ci_engine");
    assert!(back["sweep_speedup"].as_f64().expect("field") > 1.0);
    assert!(back["indexed_thresholds_per_sec"].as_f64().expect("field") > 0.0);
}
