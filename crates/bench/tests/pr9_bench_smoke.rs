//! Quick run of the PR 9 band-vs-repeated measurement: checks the
//! numbers are sane (including that one DKW band answering k quantile
//! queries beats k repeated per-quantile SPA searches from k >= 2) and
//! refreshes `BENCH_pr9.json` at the workspace root, so the perf file
//! exists after any `cargo test`. The bench binary and the CI
//! bench-smoke job produce the same file at higher iteration counts —
//! and CI enforces the ≥ 2× floor at k = 4 on that run, where the
//! machine is idle; here a conservative > 1× at k = 4 guards against
//! regressions without flaking under parallel test load.
//!
//! This file holds exactly one test so the counter-delta assertions
//! never race another test bumping `core.band.*` in the same process.

use spa_bench::band_bench;

#[test]
fn pr9_band_measures_and_writes_bench_json() {
    let report = band_bench::measure(3);
    assert_eq!(report.samples, 64);
    assert_eq!(report.confidence, 0.9);
    let ks: Vec<u64> = report.points.iter().map(|p| p.k).collect();
    assert_eq!(ks, vec![1, 2, 4, 8]);
    for p in &report.points {
        assert!(
            p.band_ns > 0 && p.repeated_ns > 0,
            "latencies must be measurable: {report:?}"
        );
    }
    let at4 = report
        .points
        .iter()
        .find(|p| p.k == 4)
        .expect("k = 4 point");
    assert!(
        at4.speedup > 1.0,
        "one band should beat 4 repeated searches: {report:?}"
    );
    // One pass builds exactly one band and answers the largest grid.
    assert_eq!(report.band_builds_per_pass, 1);
    assert_eq!(report.quantile_queries_per_pass, 8);

    let path = band_bench::default_path();
    band_bench::write_json(&report, &path).expect("write BENCH_pr9.json");
    let back: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back")).expect("json");
    assert_eq!(back["bench"], "pr9_band");
    assert_eq!(back["points"].as_array().expect("points").len(), 4);
    assert!(back["points"][2]["speedup"].as_f64().expect("field") > 1.0);
}
