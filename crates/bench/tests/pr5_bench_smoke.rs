//! Quick run of the PR 5 pipeline-overhead measurement: checks the
//! numbers are sane and refreshes `BENCH_pr5.json` at the workspace
//! root, so the perf file exists after any `cargo test`. The bench
//! binary and the CI bench-smoke job produce the same file at higher
//! iteration counts. No speedup floor here — the traced path is
//! *expected* to cost more than the scalar path; the guard is that the
//! overhead stays a small multiple, not that it wins.

use spa_bench::pipeline_bench;

#[test]
fn pr5_pipeline_measures_and_writes_bench_json() {
    let report = pipeline_bench::measure(5, 50);
    assert!(
        report.scalar_sample_ns > 0 && report.traced_sample_ns > 0,
        "sample costs must be measurable: {report:?}"
    );
    assert!(
        report.stl_eval_boolean_ns > 0 && report.stl_eval_robustness_ns > 0,
        "STL evaluation costs must be measurable: {report:?}"
    );
    assert!(
        report.trace_overhead_ratio > 0.0,
        "overhead ratio must be positive: {report:?}"
    );
    // The per-trace STL evaluation is far cheaper than a simulation:
    // recording traces pays once per run, evaluating them is almost free.
    assert!(
        report.stl_eval_boolean_ns < report.traced_sample_ns,
        "STL evaluation should be cheaper than a traced run: {report:?}"
    );
    // The formula is stored in canonical (parsed Display) form.
    assert!(report.formula.contains("ipc"), "{report:?}");

    let path = pipeline_bench::default_path();
    pipeline_bench::write_json(&report, &path).expect("write BENCH_pr5.json");
    let back: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back")).expect("json");
    assert_eq!(back["bench"], "pr5_pipeline");
    assert!(back["trace_overhead_ratio"].as_f64().expect("field") > 0.0);
    assert!(back["traced_samples_per_sec"].as_f64().expect("field") > 0.0);
}
