#![warn(missing_docs)]

//! # spa-cli — the standalone SPA tool
//!
//! The paper distributes SPA in two forms: integrated with gem5, and "a
//! standalone SPA for result analysis" on PyPI. This crate is the
//! standalone form for this reproduction — a `spa` binary that analyzes
//! measurement files (from any simulator or real hardware) and can also
//! drive the bundled simulator to produce populations.
//!
//! ```console
//! $ spa analyze runtimes.txt --confidence 0.9 --proportion 0.9
//! $ spa hypothesis runtimes.txt --threshold 1.1 --direction at-least
//! $ spa min-samples --confidence 0.95 --proportion 0.9
//! $ spa simulate --benchmark ferret --runs 50 --out ferret.csv
//! $ spa check --benchmark ferret --property "G[0,end](ipc > 0.8)"
//! $ spa sweep runtimes.txt --from 1.0 --to 1.5 --step 0.01
//! ```
//!
//! The library half exposes the argument parsing and command execution
//! so that everything is unit-testable; `main.rs` is a thin shell.

pub mod args;
pub mod commands;
pub mod data;

mod error;

pub use error::CliError;

/// Convenience alias used by fallible functions in this crate.
pub type Result<T> = std::result::Result<T, CliError>;

/// Entry point shared by `main` and the tests: parses `argv` (without
/// the program name) and runs the selected command, returning the text
/// to print.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, malformed flags, broken
/// input files, or statistical failures.
pub fn run(argv: &[String]) -> Result<String> {
    let (trace, argv) = args::split_trace(argv);
    if trace {
        // Human-readable span log on stderr for the whole invocation;
        // stdout still carries only the command's result.
        spa_obs::set_subscriber(std::sync::Arc::new(spa_obs::StderrSubscriber));
    }
    let command = args::parse(&argv)?;
    commands::execute(command)
}

/// The usage text shown for `spa help` and argument errors.
pub const USAGE: &str = "\
spa — SMC for Processor Analysis (statistically rigorous evaluation)

USAGE:
  spa analyze <file> [--column N] [--confidence C] [--proportion F]
              [--direction at-most|at-least] [--all-methods] [--json]
              [--band] [--quantile Q]... [--cvar A]
  spa hypothesis <file> --threshold T [--column N] [--confidence C]
              [--proportion F] [--direction at-most|at-least]
  spa sweep <file> --from A --to B --step S [--column N]
              [--confidence C] [--proportion F] [--direction ...]
  spa min-samples [--confidence C] [--proportion F]
  spa simulate --benchmark NAME [--runs N] [--seed-start S]
              [--l2-kb KB] [--noise paper|jitter:N|real-machine]
              [--jobs N] [--out FILE] [--retries N] [--timeout SECS]
              [--fault crash=P,timeout=P,nan=P] [--json]
  spa check   --benchmark NAME (--property FORMULA [--robustness]
              | --band | --quantile Q ... | --cvar A)
              [--runs N] [--seed-start S] [--l2-kb KB]
              [--noise paper|jitter:N|real-machine] [--jobs N]
              [--retries N] [--confidence C] [--proportion F] [--json]
  spa serve   [--addr HOST:PORT] [--workers N] [--queue-depth N]
              [--threads N] [--state-dir DIR] [--deadline MS]
  spa submit  --benchmark NAME [--addr HOST:PORT] [--threshold T]
              [--property FORMULA] [--robustness]
              [--band] [--quantile Q]... [--cvar A]
              [--stream] [--boundary betting|hoeffding] [--width W]
              [--max-samples N]
              [--system table2|l2-small|l2-large] [--metric KEY]
              [--noise paper|jitter:N|real-machine] [--confidence C]
              [--proportion F] [--direction at-most|at-least]
              [--seed-start S] [--round-size N] [--max-rounds N]
              [--retries N] [--deadline MS] [--json]
  spa watch   JOB [--addr HOST:PORT] [--width W] [--confidence C]
              [--json]
  spa status   [--addr HOST:PORT]
  spa metrics  [--addr HOST:PORT] [--json]
  spa shutdown [--addr HOST:PORT]
  spa help

Defaults: --confidence 0.9 --proportion 0.9 --direction at-most --column 0;
--jobs (alias --threads) defaults to the machine's available parallelism
and --addr to 127.0.0.1:7411. Simulate and check fan seeded executions
across --jobs worker threads; the output is byte-identical for every
job count, so parallelism never changes a result.
A global --trace flag (valid with any command, any position) logs
tracing spans to stderr as they close. Metrics fetches a running
server's live snapshot: engine counters, queue depth, cache hit/miss
counts, and the job-latency histogram.
Serve runs the long-lived evaluation service: submissions are scheduled
on a bounded queue, identical jobs are answered from a content-addressed
result cache, and hypothesis jobs parallelize with bias-free fixed-size
rounds. With --state-dir the server journals completed results to disk
and answers them from cache after a crash or restart; --deadline sets a
default per-job time budget in milliseconds (submit's --deadline
overrides it per job). Submit without --threshold requests a confidence
interval; with --threshold it runs one sequential hypothesis test; with
--property it checks an STL formula against recorded traces. Adding
--stream to a --threshold submission runs it as an anytime-valid
streaming job: a time-uniform confidence sequence for the satisfaction
proportion that shrinks live, stops early once --width is reached, and
checkpoints every round so a killed server resumes it without bias.
Watch attaches to a running job's event stream by id and prints each
interval snapshot; its --width detaches once the live interval is
narrow enough (still valid — the sequence is anytime), and its
--confidence cross-checks the job's level.
Check runs seeded traced executions and evaluates an STL property per
trace, e.g. `spa check -b ferret --property \"G[0,end](ipc > 0.8)\"`;
traced signals are ipc, l1d_miss_rate, l2_miss_rate, and occupancy.
--runs defaults to the Eq. 8 minimum; --robustness reports quantitative
margins with a confidence interval instead of boolean verdicts.
Band mode (--band, --quantile, --cvar on analyze, check, and submit)
builds one simultaneous DKW confidence band over the whole empirical
CDF and reads every requested quantile CI plus both-tail CVaR bounds
off that single band, e.g.
`spa check -b blackscholes --quantile 0.99 --cvar 0.95`. A bare --band
asks for the median, P90, and P99; --quantile is repeatable; check's
band mode samples the runtime metric and needs no --property.
Simulate retries failed executions up to --retries extra times (default
2), discards runs exceeding the soft --timeout budget, and can inject
faults with --fault for robustness experiments; failure counts are
reported alongside the CSV.
Input files hold one or more whitespace/comma-separated numbers per
line; lines starting with '#' and non-numeric header lines are skipped.
Benchmarks: ferret blackscholes bodytrack canneal dedup facesim
fluidanimate freqmine streamcluster.
";
