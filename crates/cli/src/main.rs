//! Thin shell over [`spa_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match spa_cli::run(&argv) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("spa: {e}");
            if matches!(e, spa_cli::CliError::Usage(_)) {
                eprintln!("\n{}", spa_cli::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
