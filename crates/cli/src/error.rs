use std::fmt;

/// Error type for the CLI layer.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed.
    Usage(String),
    /// An input file could not be read or contained no usable data.
    Input(String),
    /// Reading or writing a specific file failed; names the path so the
    /// user knows which of their arguments is broken.
    File {
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A statistical computation failed.
    Core(spa_core::CoreError),
    /// A baseline method failed (reported, not fatal, unless it was the
    /// only requested method).
    Baseline(spa_baselines::BaselineError),
    /// A simulation failed.
    Sim(spa_sim::SimError),
    /// Talking to the evaluation server failed.
    Server(spa_server::ServerError),
    /// An I/O failure (reading input or writing output).
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Input(msg) => write!(f, "input error: {msg}"),
            CliError::File { path, source } => {
                write!(f, "cannot access `{path}`: {source}")
            }
            CliError::Core(e) => write!(f, "analysis error: {e}"),
            CliError::Baseline(e) => write!(f, "baseline error: {e}"),
            CliError::Sim(e) => write!(f, "simulation error: {e}"),
            CliError::Server(e) => write!(f, "server error: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Core(e) => Some(e),
            CliError::Baseline(e) => Some(e),
            CliError::Sim(e) => Some(e),
            CliError::Server(e) => Some(e),
            CliError::Io(e) => Some(e),
            CliError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<spa_core::CoreError> for CliError {
    fn from(e: spa_core::CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<spa_baselines::BaselineError> for CliError {
    fn from(e: spa_baselines::BaselineError) -> Self {
        CliError::Baseline(e)
    }
}

impl From<spa_sim::SimError> for CliError {
    fn from(e: spa_sim::SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<spa_server::ServerError> for CliError {
    fn from(e: spa_server::ServerError) -> Self {
        CliError::Server(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(CliError::Usage("bad flag".into())
            .to_string()
            .contains("bad flag"));
        assert!(CliError::Input("empty".into())
            .to_string()
            .contains("empty"));
        let io = CliError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(std::error::Error::source(&io).is_some());
        let file = CliError::File {
            path: "runs.csv".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "missing"),
        };
        let s = file.to_string();
        assert!(s.contains("runs.csv") && s.contains("missing"), "{s}");
        assert!(std::error::Error::source(&file).is_some());
    }
}
