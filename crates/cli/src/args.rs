//! Hand-rolled argument parsing (no external dependencies).

use spa_core::property::Direction;
use spa_core::seq::Boundary;
use spa_server::spec::{JobSpec, ModeSpec, NoiseSpec, SystemSpec};
use spa_sim::fault::FaultSpec;
use spa_sim::workload::parsec::Benchmark;

use crate::{CliError, Result};

/// Default address the server commands talk to (`spa serve` binds it,
/// `spa submit`/`status`/`shutdown` connect to it).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";

/// Default for `--jobs` (alias `--threads`): one worker per available
/// hardware thread, falling back to 4 when the parallelism cannot be
/// queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Statistical options common to the analysis commands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatOpts {
    /// Confidence level `C`.
    pub confidence: f64,
    /// Proportion `F`.
    pub proportion: f64,
    /// Property direction.
    pub direction: Direction,
}

impl Default for StatOpts {
    fn default() -> Self {
        Self {
            confidence: 0.9,
            proportion: 0.9,
            direction: Direction::AtMost,
        }
    }
}

/// A whole-CDF band request: which quantile CIs to read off the DKW
/// band and which CVaR level to bracket. Built whenever `--band`,
/// `--quantile`, or `--cvar` appears; a bare `--band` asks for
/// [`DEFAULT_BAND_QUANTILES`].
#[derive(Debug, Clone, PartialEq)]
pub struct BandRequest {
    /// Quantile levels to answer (canonicalized downstream).
    pub quantiles: Vec<f64>,
    /// CVaR level to bracket, when requested.
    pub cvar_alpha: Option<f64>,
}

/// The quantiles a bare `--band` asks for: median, P90, and P99.
pub const DEFAULT_BAND_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Noise model selection for `spa simulate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseArg {
    /// Full-system model (paper default).
    Paper,
    /// Pure DRAM jitter with the given bound.
    Jitter(u64),
    /// The Fig. 1 real-machine model.
    RealMachine,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Construct a confidence interval from a data file.
    Analyze {
        /// Input path.
        file: String,
        /// Column index (0-based).
        column: usize,
        /// Statistical options.
        stat: StatOpts,
        /// Also run the baseline methods.
        all_methods: bool,
        /// Emit the report as JSON instead of text.
        json: bool,
        /// Report a DKW band (quantile CIs + CVaR) instead of the SPA
        /// interval.
        band: Option<BandRequest>,
    },
    /// Single hypothesis test (Table 1 row 1).
    Hypothesis {
        /// Input path.
        file: String,
        /// Column index.
        column: usize,
        /// Property threshold.
        threshold: f64,
        /// Statistical options.
        stat: StatOpts,
    },
    /// Per-threshold verdict table (Fig. 4 style).
    Sweep {
        /// Input path.
        file: String,
        /// Column index.
        column: usize,
        /// First threshold.
        from: f64,
        /// Last threshold.
        to: f64,
        /// Step size.
        step: f64,
        /// Statistical options.
        stat: StatOpts,
    },
    /// Print Eq. 8 minimum sample counts.
    MinSamples {
        /// Statistical options (direction unused).
        stat: StatOpts,
    },
    /// Run the bundled simulator and dump a population.
    Simulate {
        /// Benchmark to run.
        benchmark: Benchmark,
        /// Number of executions.
        runs: u64,
        /// First seed.
        seed_start: u64,
        /// L2 capacity in KiB (default: Table 2's 3072).
        l2_kib: u64,
        /// Variability model.
        noise: NoiseArg,
        /// Worker threads.
        threads: usize,
        /// Output CSV path (stdout when `None`).
        out: Option<String>,
        /// Extra attempts per seed after a failed execution.
        retries: u32,
        /// Soft per-execution time budget in seconds.
        timeout: Option<f64>,
        /// Injected-fault probabilities (all zero by default).
        fault: FaultSpec,
        /// Emit the population as JSON instead of CSV.
        json: bool,
    },
    /// Check an STL property against recorded simulator traces.
    Check {
        /// Benchmark to run.
        benchmark: Benchmark,
        /// The STL formula source text (`None`: band mode).
        property: Option<String>,
        /// A DKW band request over the runtime metric — the
        /// property-free form of `check`.
        band: Option<BandRequest>,
        /// Report quantitative robustness instead of boolean verdicts.
        robustness: bool,
        /// Number of executions (`None`: the Eq. 8 minimum).
        runs: Option<u64>,
        /// First seed.
        seed_start: u64,
        /// L2 capacity in KiB (default: Table 2's 3072).
        l2_kib: u64,
        /// Variability model.
        noise: NoiseArg,
        /// Worker threads.
        threads: usize,
        /// Extra attempts per seed after a failed execution.
        retries: u32,
        /// Statistical options (direction unused).
        stat: StatOpts,
        /// Emit the report as JSON instead of text.
        json: bool,
    },
    /// Run the long-lived evaluation service.
    Serve {
        /// Bind address (port 0 picks an ephemeral port).
        addr: String,
        /// Concurrent jobs.
        workers: usize,
        /// Bounded queue depth.
        queue_depth: usize,
        /// Sampling threads within one job.
        threads: usize,
        /// Directory for the durable result store (`None`: in-memory only).
        state_dir: Option<String>,
        /// Default per-job deadline in milliseconds (`None`: unlimited).
        deadline_ms: Option<u64>,
    },
    /// Submit a job to a running server and stream its result.
    Submit {
        /// Server address.
        addr: String,
        /// The job to run.
        spec: JobSpec,
        /// Emit the raw JSON report instead of text.
        json: bool,
    },
    /// Attach to a running job's live interval stream.
    Watch {
        /// Server address.
        addr: String,
        /// Job id to watch.
        job: u64,
        /// Detach once the interval width is at or below this (the
        /// anytime guarantee makes that interval already valid).
        width: Option<f64>,
        /// Expected confidence level; a mismatch with the job's actual
        /// level is an error, not a silent reinterpretation.
        confidence: Option<f64>,
        /// Emit raw JSON events instead of text.
        json: bool,
    },
    /// Query a running server's counters.
    Status {
        /// Server address.
        addr: String,
    },
    /// Query a running server's live metrics snapshot.
    Metrics {
        /// Server address.
        addr: String,
        /// Emit the raw JSON snapshot instead of text.
        json: bool,
    },
    /// Ask a running server to drain and exit.
    Shutdown {
        /// Server address.
        addr: String,
    },
    /// Print usage.
    Help,
}

fn parse_flag_value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a String>) -> Result<&'a str> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("flag {flag} needs a value")))
}

fn parse_f64(flag: &str, v: &str) -> Result<f64> {
    v.parse::<f64>()
        .map_err(|_| CliError::Usage(format!("flag {flag}: `{v}` is not a number")))
}

fn parse_u64(flag: &str, v: &str) -> Result<u64> {
    v.parse::<u64>()
        .map_err(|_| CliError::Usage(format!("flag {flag}: `{v}` is not an integer")))
}

fn parse_direction(v: &str) -> Result<Direction> {
    match v {
        "at-most" | "atmost" | "le" => Ok(Direction::AtMost),
        "at-least" | "atleast" | "ge" => Ok(Direction::AtLeast),
        other => Err(CliError::Usage(format!(
            "unknown direction `{other}` (use at-most or at-least)"
        ))),
    }
}

fn parse_fault(v: &str) -> Result<FaultSpec> {
    let mut spec = FaultSpec::none();
    for part in v.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((key, prob)) = part.split_once('=') else {
            return Err(CliError::Usage(format!(
                "--fault: `{part}` is not of the form kind=probability"
            )));
        };
        let p = parse_f64("--fault", prob)?;
        match key {
            "crash" => spec.crash_prob = p,
            "timeout" => spec.timeout_prob = p,
            "nan" => spec.nan_prob = p,
            other => {
                return Err(CliError::Usage(format!(
                    "--fault: unknown fault kind `{other}` (use crash, timeout, or nan)"
                )))
            }
        }
    }
    spec.validate()
        .map_err(|e| CliError::Usage(format!("--fault: {e}")))?;
    Ok(spec)
}

fn parse_system(v: &str) -> Result<SystemSpec> {
    match v {
        "table2" => Ok(SystemSpec::Table2),
        "l2-small" | "l2_small" => Ok(SystemSpec::L2Small),
        "l2-large" | "l2_large" => Ok(SystemSpec::L2Large),
        other => Err(CliError::Usage(format!(
            "unknown system `{other}` (use table2, l2-small, or l2-large)"
        ))),
    }
}

fn parse_noise(v: &str) -> Result<NoiseArg> {
    if v == "paper" {
        return Ok(NoiseArg::Paper);
    }
    if v == "real-machine" {
        return Ok(NoiseArg::RealMachine);
    }
    if let Some(rest) = v.strip_prefix("jitter:") {
        return Ok(NoiseArg::Jitter(parse_u64("--noise", rest)?));
    }
    Err(CliError::Usage(format!(
        "unknown noise model `{v}` (use paper, jitter:N, or real-machine)"
    )))
}

/// Strips the global `--trace` flag from `argv`, returning whether it
/// was present plus the remaining arguments.
///
/// `--trace` is positionless — valid before or after the command word —
/// so it is peeled off before command parsing. It installs the
/// stderr span subscriber ([`spa_obs::StderrSubscriber`]) for the whole
/// invocation, whichever command runs.
pub fn split_trace(argv: &[String]) -> (bool, Vec<String>) {
    let mut trace = false;
    let rest = argv
        .iter()
        .filter(|arg| {
            if arg.as_str() == "--trace" {
                trace = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (trace, rest)
}

/// Parses `argv` (program name already stripped).
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the first problem.
pub fn parse(argv: &[String]) -> Result<Command> {
    let mut it = argv.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };

    // Shared option accumulation.
    let mut stat = StatOpts::default();
    let mut file: Option<String> = None;
    let mut column = 0usize;
    let mut all_methods = false;
    let mut threshold: Option<f64> = None;
    let mut from: Option<f64> = None;
    let mut to: Option<f64> = None;
    let mut step: Option<f64> = None;
    let mut benchmark: Option<Benchmark> = None;
    let mut runs: Option<u64> = None;
    let mut property: Option<String> = None;
    let mut robustness = false;
    let mut seed_start = 0u64;
    let mut l2_kib = 3072u64;
    let mut noise = NoiseArg::Paper;
    let mut threads = default_threads();
    let mut out: Option<String> = None;
    let mut retries = 2u32;
    let mut timeout: Option<f64> = None;
    let mut fault = FaultSpec::none();
    let mut json = false;
    let mut addr = DEFAULT_ADDR.to_string();
    let mut workers = 2usize;
    let mut queue_depth = 16usize;
    let mut system = SystemSpec::Table2;
    let mut metric = "runtime".to_string();
    let mut max_rounds = 1024u64;
    let mut round_size = 8u64;
    let mut state_dir: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut stream = false;
    let mut boundary = Boundary::Betting;
    let mut width: Option<f64> = None;
    let mut max_samples = 4096u64;
    let mut confidence_set = false;
    let mut band = false;
    let mut quantiles: Vec<f64> = Vec::new();
    let mut cvar: Option<f64> = None;

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--confidence" | "-c" => {
                stat.confidence = parse_f64(arg, parse_flag_value(arg, &mut it)?)?;
                confidence_set = true;
            }
            "--proportion" | "-f" => {
                stat.proportion = parse_f64(arg, parse_flag_value(arg, &mut it)?)?;
            }
            "--direction" | "-d" => {
                stat.direction = parse_direction(parse_flag_value(arg, &mut it)?)?;
            }
            "--column" => {
                column = parse_u64(arg, parse_flag_value(arg, &mut it)?)? as usize;
            }
            "--all-methods" => all_methods = true,
            "--threshold" | "-t" => {
                threshold = Some(parse_f64(arg, parse_flag_value(arg, &mut it)?)?);
            }
            "--from" => from = Some(parse_f64(arg, parse_flag_value(arg, &mut it)?)?),
            "--to" => to = Some(parse_f64(arg, parse_flag_value(arg, &mut it)?)?),
            "--step" => step = Some(parse_f64(arg, parse_flag_value(arg, &mut it)?)?),
            "--benchmark" | "-b" => {
                let name = parse_flag_value(arg, &mut it)?;
                benchmark = Some(
                    Benchmark::from_name(name)
                        .ok_or_else(|| CliError::Usage(format!("unknown benchmark `{name}`")))?,
                );
            }
            "--runs" | "-n" => runs = Some(parse_u64(arg, parse_flag_value(arg, &mut it)?)?),
            "--property" | "-p" => {
                property = Some(parse_flag_value(arg, &mut it)?.to_owned());
            }
            "--robustness" => robustness = true,
            "--seed-start" => {
                seed_start = parse_u64(arg, parse_flag_value(arg, &mut it)?)?;
            }
            "--l2-kb" => l2_kib = parse_u64(arg, parse_flag_value(arg, &mut it)?)?,
            "--noise" => noise = parse_noise(parse_flag_value(arg, &mut it)?)?,
            "--jobs" | "-j" | "--threads" => {
                threads = parse_u64(arg, parse_flag_value(arg, &mut it)?)?.max(1) as usize;
            }
            "--out" | "-o" => out = Some(parse_flag_value(arg, &mut it)?.to_owned()),
            "--retries" => {
                retries = u32::try_from(parse_u64(arg, parse_flag_value(arg, &mut it)?)?)
                    .map_err(|_| CliError::Usage("flag --retries: value is too large".into()))?;
            }
            "--timeout" => {
                let secs = parse_f64(arg, parse_flag_value(arg, &mut it)?)?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(CliError::Usage(format!(
                        "flag --timeout: `{secs}` is not a positive number of seconds"
                    )));
                }
                timeout = Some(secs);
            }
            "--fault" => fault = parse_fault(parse_flag_value(arg, &mut it)?)?,
            "--json" => json = true,
            "--addr" | "-a" => addr = parse_flag_value(arg, &mut it)?.to_owned(),
            "--workers" => {
                workers = parse_u64(arg, parse_flag_value(arg, &mut it)?)?.max(1) as usize;
            }
            "--queue-depth" => {
                queue_depth = parse_u64(arg, parse_flag_value(arg, &mut it)?)?.max(1) as usize;
            }
            "--system" => system = parse_system(parse_flag_value(arg, &mut it)?)?,
            "--metric" | "-m" => metric = parse_flag_value(arg, &mut it)?.to_owned(),
            "--max-rounds" => {
                max_rounds = parse_u64(arg, parse_flag_value(arg, &mut it)?)?;
            }
            "--round-size" => {
                round_size = parse_u64(arg, parse_flag_value(arg, &mut it)?)?;
            }
            "--state-dir" => {
                state_dir = Some(parse_flag_value(arg, &mut it)?.to_owned());
            }
            "--deadline" => {
                deadline_ms = Some(parse_u64(arg, parse_flag_value(arg, &mut it)?)?);
            }
            "--stream" => stream = true,
            "--boundary" => {
                boundary = parse_flag_value(arg, &mut it)?
                    .parse::<Boundary>()
                    .map_err(|e| CliError::Usage(format!("flag --boundary: {e}")))?;
            }
            "--width" | "-w" => {
                width = Some(parse_f64(arg, parse_flag_value(arg, &mut it)?)?);
            }
            "--max-samples" => {
                max_samples = parse_u64(arg, parse_flag_value(arg, &mut it)?)?;
            }
            "--band" => band = true,
            "--quantile" | "-q" => {
                quantiles.push(parse_f64(arg, parse_flag_value(arg, &mut it)?)?);
            }
            "--cvar" => {
                cvar = Some(parse_f64(arg, parse_flag_value(arg, &mut it)?)?);
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag `{other}`")));
            }
            positional => {
                if file.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected extra argument `{positional}`"
                    )));
                }
                file = Some(positional.to_owned());
            }
        }
    }

    let need_file = |file: Option<String>| {
        file.ok_or_else(|| CliError::Usage("this command needs an input file".into()))
    };

    // `--quantile` or `--cvar` implies a band request; a bare `--band`
    // asks for the default quantile set. Value validation (strictly
    // inside (0, 1)) happens downstream with typed errors.
    let band_request = if band || !quantiles.is_empty() || cvar.is_some() {
        let quantiles = if quantiles.is_empty() && cvar.is_none() {
            DEFAULT_BAND_QUANTILES.to_vec()
        } else {
            quantiles
        };
        Some(BandRequest {
            quantiles,
            cvar_alpha: cvar,
        })
    } else {
        None
    };

    match cmd.as_str() {
        "analyze" => Ok(Command::Analyze {
            file: need_file(file)?,
            column,
            stat,
            all_methods,
            json,
            band: band_request,
        }),
        "hypothesis" => Ok(Command::Hypothesis {
            file: need_file(file)?,
            column,
            threshold: threshold
                .ok_or_else(|| CliError::Usage("hypothesis needs --threshold".into()))?,
            stat,
        }),
        "sweep" => {
            let (from, to, step) = match (from, to, step) {
                (Some(a), Some(b), Some(s)) if s > 0.0 && b >= a => (a, b, s),
                _ => {
                    return Err(CliError::Usage(
                        "sweep needs --from A --to B --step S with S > 0 and B >= A".into(),
                    ))
                }
            };
            Ok(Command::Sweep {
                file: need_file(file)?,
                column,
                from,
                to,
                step,
                stat,
            })
        }
        "min-samples" => Ok(Command::MinSamples { stat }),
        "simulate" => Ok(Command::Simulate {
            benchmark: benchmark
                .ok_or_else(|| CliError::Usage("simulate needs --benchmark".into()))?,
            runs: runs.unwrap_or(22),
            seed_start,
            l2_kib,
            noise,
            threads,
            out,
            retries,
            timeout,
            fault,
            json,
        }),
        "check" => {
            if property.is_some() && band_request.is_some() {
                return Err(CliError::Usage(
                    "check takes --property or a band request (--band/--quantile/--cvar), \
                     not both"
                        .into(),
                ));
            }
            if property.is_none() && band_request.is_none() {
                return Err(CliError::Usage(
                    "check needs --property or a band request (--band/--quantile/--cvar)".into(),
                ));
            }
            Ok(Command::Check {
                benchmark: benchmark
                    .ok_or_else(|| CliError::Usage("check needs --benchmark".into()))?,
                property,
                band: band_request,
                robustness,
                runs,
                seed_start,
                l2_kib,
                noise,
                threads,
                retries,
                stat,
                json,
            })
        }
        "serve" => Ok(Command::Serve {
            addr,
            workers,
            queue_depth,
            threads,
            state_dir,
            deadline_ms,
        }),
        "submit" => {
            let benchmark =
                benchmark.ok_or_else(|| CliError::Usage("submit needs --benchmark".into()))?;
            let mode = if let Some(req) = band_request {
                if property.is_some() || threshold.is_some() || stream {
                    return Err(CliError::Usage(
                        "submit band mode (--band/--quantile/--cvar) excludes --property, \
                         --threshold, and --stream"
                            .into(),
                    ));
                }
                ModeSpec::Band {
                    quantiles: req.quantiles,
                    cvar_alpha: req.cvar_alpha,
                }
            } else {
                match (property, threshold) {
                    (Some(_), Some(_)) => {
                        return Err(CliError::Usage(
                            "submit takes --property or --threshold, not both".into(),
                        ))
                    }
                    (Some(_), None) if stream => {
                        return Err(CliError::Usage(
                            "submit --stream works on a threshold property, not --property".into(),
                        ))
                    }
                    (Some(formula), None) => ModeSpec::Property {
                        formula,
                        robustness,
                    },
                    (None, Some(threshold)) if stream => ModeSpec::Streaming {
                        direction: stat.direction,
                        threshold,
                        boundary,
                        target_width: width,
                        max_samples,
                    },
                    (None, Some(threshold)) => ModeSpec::Hypothesis {
                        direction: stat.direction,
                        threshold,
                        max_rounds,
                    },
                    (None, None) if stream => {
                        return Err(CliError::Usage("submit --stream needs --threshold".into()))
                    }
                    (None, None) => ModeSpec::Interval {
                        direction: stat.direction,
                    },
                }
            };
            let noise = match noise {
                NoiseArg::Paper => NoiseSpec::Paper,
                NoiseArg::RealMachine => NoiseSpec::RealMachine,
                NoiseArg::Jitter(max_cycles) => NoiseSpec::Jitter { max_cycles },
            };
            Ok(Command::Submit {
                addr,
                spec: JobSpec {
                    benchmark: benchmark.name().to_string(),
                    system,
                    noise,
                    metric,
                    mode,
                    confidence: stat.confidence,
                    proportion: stat.proportion,
                    seed_start,
                    round_size,
                    retries,
                    deadline_ms,
                },
                json,
            })
        }
        "watch" => {
            let raw =
                file.ok_or_else(|| CliError::Usage("watch needs a job id argument".into()))?;
            let job = raw
                .parse::<u64>()
                .map_err(|_| CliError::Usage(format!("watch: `{raw}` is not a job id")))?;
            Ok(Command::Watch {
                addr,
                job,
                width,
                confidence: confidence_set.then_some(stat.confidence),
                json,
            })
        }
        "status" => Ok(Command::Status { addr }),
        "metrics" => Ok(Command::Metrics { addr, json }),
        "shutdown" => Ok(Command::Shutdown { addr }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn analyze_defaults() {
        let c = parse(&argv("analyze data.txt")).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                file: "data.txt".into(),
                column: 0,
                stat: StatOpts::default(),
                all_methods: false,
                json: false,
                band: None,
            }
        );
    }

    #[test]
    fn analyze_with_flags() {
        let c = parse(&argv(
            "analyze runs.csv --column 2 -c 0.95 -f 0.5 -d at-least --all-methods",
        ))
        .unwrap();
        match c {
            Command::Analyze {
                file,
                column,
                stat,
                all_methods,
                ..
            } => {
                assert_eq!(file, "runs.csv");
                assert_eq!(column, 2);
                assert_eq!(stat.confidence, 0.95);
                assert_eq!(stat.proportion, 0.5);
                assert_eq!(stat.direction, Direction::AtLeast);
                assert!(all_methods);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hypothesis_requires_threshold() {
        assert!(parse(&argv("hypothesis data.txt")).is_err());
        let c = parse(&argv("hypothesis data.txt -t 1.5")).unwrap();
        match c {
            Command::Hypothesis { threshold, .. } => assert_eq!(threshold, 1.5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sweep_validates_range() {
        assert!(parse(&argv("sweep d --from 2 --to 1 --step 0.1")).is_err());
        assert!(parse(&argv("sweep d --from 1 --to 2 --step 0")).is_err());
        assert!(parse(&argv("sweep d --from 1 --to 2 --step 0.5")).is_ok());
    }

    #[test]
    fn simulate_parsing() {
        let c = parse(&argv(
            "simulate -b ferret -n 10 --seed-start 5 --l2-kb 512 --noise jitter:4 --threads 2 -o x.csv",
        ))
        .unwrap();
        match c {
            Command::Simulate {
                benchmark,
                runs,
                seed_start,
                l2_kib,
                noise,
                threads,
                out,
                retries,
                timeout,
                fault,
                ..
            } => {
                assert_eq!(benchmark, Benchmark::Ferret);
                assert_eq!(runs, 10);
                assert_eq!(seed_start, 5);
                assert_eq!(l2_kib, 512);
                assert_eq!(noise, NoiseArg::Jitter(4));
                assert_eq!(threads, 2);
                assert_eq!(out.as_deref(), Some("x.csv"));
                assert_eq!(retries, 2);
                assert_eq!(timeout, None);
                assert!(fault.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_fault_tolerance_flags() {
        let c = parse(&argv(
            "simulate -b ferret --retries 5 --timeout 2.5 --fault crash=0.1,timeout=0.05,nan=0.02",
        ))
        .unwrap();
        match c {
            Command::Simulate {
                retries,
                timeout,
                fault,
                ..
            } => {
                assert_eq!(retries, 5);
                assert_eq!(timeout, Some(2.5));
                assert_eq!(fault.crash_prob, 0.1);
                assert_eq!(fault.timeout_prob, 0.05);
                assert_eq!(fault.nan_prob, 0.02);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_flag_rejects_bad_forms() {
        assert!(parse(&argv("simulate -b ferret --fault crash")).is_err());
        assert!(parse(&argv("simulate -b ferret --fault crash=oops")).is_err());
        assert!(parse(&argv("simulate -b ferret --fault magic=0.1")).is_err());
        assert!(parse(&argv("simulate -b ferret --fault crash=1.5")).is_err());
        assert!(parse(&argv("simulate -b ferret --fault crash=0.6,nan=0.6")).is_err());
        assert!(parse(&argv("simulate -b ferret --timeout 0")).is_err());
        assert!(parse(&argv("simulate -b ferret --timeout -1")).is_err());
        assert!(parse(&argv("simulate -b ferret --retries nope")).is_err());
    }

    #[test]
    fn fault_flag_single_kind() {
        let spec = parse_fault("crash=0.25").unwrap();
        assert_eq!(spec.crash_prob, 0.25);
        assert_eq!(spec.timeout_prob, 0.0);
        assert_eq!(spec.nan_prob, 0.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("analyze data.txt --bogus")).is_err());
        assert!(parse(&argv("analyze a b")).is_err());
        assert!(parse(&argv("analyze data.txt -c notanumber")).is_err());
        assert!(parse(&argv("analyze data.txt -d sideways")).is_err());
        assert!(parse(&argv("simulate -b raytrace")).is_err());
        assert!(parse(&argv("simulate")).is_err());
        assert!(parse(&argv("analyze data.txt --noise weird")).is_err());
        assert!(parse(&argv("analyze data.txt -c")).is_err());
    }

    #[test]
    fn threads_default_tracks_available_parallelism() {
        let c = parse(&argv("simulate -b ferret")).unwrap();
        match c {
            Command::Simulate { threads, .. } => assert_eq!(threads, default_threads()),
            other => panic!("{other:?}"),
        }
        assert!(default_threads() >= 1);
    }

    #[test]
    fn jobs_is_an_alias_for_threads() {
        for flags in ["--jobs 3", "-j 3", "--threads 3"] {
            let c = parse(&argv(&format!("simulate -b ferret {flags}"))).unwrap();
            match c {
                Command::Simulate { threads, .. } => assert_eq!(threads, 3, "{flags}"),
                other => panic!("{other:?}"),
            }
        }
        assert!(parse(&argv("simulate -b ferret --jobs")).is_err());
        assert!(parse(&argv("simulate -b ferret --jobs zero")).is_err());
        // `--jobs 0` is clamped to one worker, not rejected.
        let c = parse(&argv("simulate -b ferret --jobs 0")).unwrap();
        match c {
            Command::Simulate { threads, .. } => assert_eq!(threads, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_defaults_and_flags() {
        let c = parse(&argv("serve")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: DEFAULT_ADDR.into(),
                workers: 2,
                queue_depth: 16,
                threads: default_threads(),
                state_dir: None,
                deadline_ms: None,
            }
        );
        let c = parse(&argv(
            "serve --addr 127.0.0.1:0 --workers 3 --queue-depth 5 --threads 2 \
             --state-dir /tmp/spa-state --deadline 5000",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 3,
                queue_depth: 5,
                threads: 2,
                state_dir: Some("/tmp/spa-state".into()),
                deadline_ms: Some(5000),
            }
        );
        assert!(parse(&argv("serve --state-dir")).is_err());
        assert!(parse(&argv("serve --deadline soon")).is_err());
    }

    #[test]
    fn submit_builds_interval_spec() {
        let c = parse(&argv(
            "submit -b blackscholes -a 127.0.0.1:9 --system l2-small --noise jitter:4 \
             -m ipc -c 0.95 -f 0.5 --seed-start 7 --round-size 4 --retries 1 --json",
        ))
        .unwrap();
        let Command::Submit { addr, spec, json } = c else {
            panic!("{c:?}");
        };
        assert_eq!(addr, "127.0.0.1:9");
        assert!(json);
        assert_eq!(spec.benchmark, "blackscholes");
        assert_eq!(spec.system, SystemSpec::L2Small);
        assert_eq!(spec.noise, NoiseSpec::Jitter { max_cycles: 4 });
        assert_eq!(spec.metric, "ipc");
        assert_eq!(spec.confidence, 0.95);
        assert_eq!(spec.proportion, 0.5);
        assert_eq!(spec.seed_start, 7);
        assert_eq!(spec.round_size, 4);
        assert_eq!(spec.retries, 1);
        assert_eq!(spec.deadline_ms, None);
        assert_eq!(
            spec.mode,
            ModeSpec::Interval {
                direction: Direction::AtMost
            }
        );
    }

    #[test]
    fn submit_threshold_selects_hypothesis_mode() {
        let c = parse(&argv("submit -b ferret -t 1.5 -d at-least --max-rounds 32")).unwrap();
        let Command::Submit { spec, .. } = c else {
            panic!("{c:?}");
        };
        assert_eq!(
            spec.mode,
            ModeSpec::Hypothesis {
                direction: Direction::AtLeast,
                threshold: 1.5,
                max_rounds: 32,
            }
        );
    }

    #[test]
    fn submit_stream_selects_streaming_mode() {
        let c = parse(&argv(
            "submit -b ferret --stream -t 1.5 --boundary hoeffding --width 0.2 --max-samples 512",
        ))
        .unwrap();
        let Command::Submit { spec, .. } = c else {
            panic!("{c:?}");
        };
        assert_eq!(
            spec.mode,
            ModeSpec::Streaming {
                direction: Direction::AtMost,
                threshold: 1.5,
                boundary: Boundary::Hoeffding,
                target_width: Some(0.2),
                max_samples: 512,
            }
        );
        // Streaming defaults: betting boundary, no width target, 4096 cap.
        let c = parse(&argv("submit -b ferret --stream -t 1.5")).unwrap();
        let Command::Submit { spec, .. } = c else {
            panic!("{c:?}");
        };
        assert_eq!(
            spec.mode,
            ModeSpec::Streaming {
                direction: Direction::AtMost,
                threshold: 1.5,
                boundary: Boundary::Betting,
                target_width: None,
                max_samples: 4096,
            }
        );
        // A stream needs an indicator; a formula is not one.
        assert!(parse(&argv("submit -b ferret --stream")).is_err());
        assert!(parse(&argv("submit -b ferret --stream -p G[0,end](ipc>0.8)")).is_err());
        assert!(parse(&argv(
            "submit -b ferret --stream -t 1.5 --boundary martingale"
        ))
        .is_err());
    }

    #[test]
    fn watch_parses_job_id_and_flags() {
        let c = parse(&argv("watch 7")).unwrap();
        assert_eq!(
            c,
            Command::Watch {
                addr: DEFAULT_ADDR.into(),
                job: 7,
                width: None,
                confidence: None,
                json: false,
            }
        );
        let c = parse(&argv("watch 12 -a 127.0.0.1:9 --width 0.1 -c 0.95 --json")).unwrap();
        assert_eq!(
            c,
            Command::Watch {
                addr: "127.0.0.1:9".into(),
                job: 12,
                width: Some(0.1),
                confidence: Some(0.95),
                json: true,
            }
        );
        assert!(parse(&argv("watch")).is_err());
        assert!(parse(&argv("watch sixty")).is_err());
    }

    #[test]
    fn submit_deadline_flag_sets_the_qos_knob() {
        let c = parse(&argv("submit -b ferret --deadline 250")).unwrap();
        let Command::Submit { spec, .. } = c else {
            panic!("{c:?}");
        };
        assert_eq!(spec.deadline_ms, Some(250));
    }

    #[test]
    fn check_parses_with_defaults_and_flags() {
        let c = parse(&argv("check -b ferret -p G[0,end](ipc>0.8)")).unwrap();
        match c {
            Command::Check {
                benchmark,
                property,
                band,
                robustness,
                runs,
                seed_start,
                l2_kib,
                noise,
                threads,
                retries,
                stat,
                json,
            } => {
                assert_eq!(benchmark, Benchmark::Ferret);
                assert_eq!(property.as_deref(), Some("G[0,end](ipc>0.8)"));
                assert_eq!(band, None);
                assert!(!robustness);
                assert_eq!(runs, None);
                assert_eq!(seed_start, 0);
                assert_eq!(l2_kib, 3072);
                assert_eq!(noise, NoiseArg::Paper);
                assert_eq!(threads, default_threads());
                assert_eq!(retries, 2);
                assert_eq!(stat, StatOpts::default());
                assert!(!json);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&argv(
            "check -b blackscholes --property F[0,100](occupancy>=1) --robustness \
             -n 8 --seed-start 42 --noise jitter:2 --threads 3 -c 0.95 -f 0.5 --json",
        ))
        .unwrap();
        match c {
            Command::Check {
                property,
                robustness,
                runs,
                seed_start,
                noise,
                threads,
                stat,
                json,
                ..
            } => {
                assert_eq!(property.as_deref(), Some("F[0,100](occupancy>=1)"));
                assert!(robustness);
                assert_eq!(runs, Some(8));
                assert_eq!(seed_start, 42);
                assert_eq!(noise, NoiseArg::Jitter(2));
                assert_eq!(threads, 3);
                assert_eq!(stat.confidence, 0.95);
                assert_eq!(stat.proportion, 0.5);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn check_requires_benchmark_and_property() {
        assert!(parse(&argv("check -p G[0,end](ipc>0.8)")).is_err());
        assert!(parse(&argv("check -b ferret")).is_err());
    }

    #[test]
    fn check_band_request_replaces_the_property() {
        let c = parse(&argv("check -b blackscholes --quantile 0.99 --cvar 0.95")).unwrap();
        match c {
            Command::Check { property, band, .. } => {
                assert_eq!(property, None);
                assert_eq!(
                    band,
                    Some(BandRequest {
                        quantiles: vec![0.99],
                        cvar_alpha: Some(0.95),
                    })
                );
            }
            other => panic!("{other:?}"),
        }
        // A bare --band asks for the default quantile set.
        let c = parse(&argv("check -b ferret --band")).unwrap();
        match c {
            Command::Check { band, .. } => {
                assert_eq!(
                    band,
                    Some(BandRequest {
                        quantiles: DEFAULT_BAND_QUANTILES.to_vec(),
                        cvar_alpha: None,
                    })
                );
            }
            other => panic!("{other:?}"),
        }
        // -q is repeatable; an explicit --cvar alone keeps quantiles
        // empty instead of injecting defaults.
        let c = parse(&argv("check -b ferret -q 0.5 -q 0.9 --cvar 0.9")).unwrap();
        match c {
            Command::Check { band, .. } => {
                let band = band.unwrap();
                assert_eq!(band.quantiles, vec![0.5, 0.9]);
                assert_eq!(band.cvar_alpha, Some(0.9));
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&argv("check -b ferret --cvar 0.9")).unwrap();
        match c {
            Command::Check { band, .. } => {
                assert_eq!(
                    band,
                    Some(BandRequest {
                        quantiles: vec![],
                        cvar_alpha: Some(0.9),
                    })
                );
            }
            other => panic!("{other:?}"),
        }
        // A property and a band request are mutually exclusive.
        assert!(parse(&argv("check -b ferret -p G[0,end](ipc>0.8) --band")).is_err());
        assert!(parse(&argv("check -b ferret -p G[0,end](ipc>0.8) -q 0.5")).is_err());
        assert!(parse(&argv("check -b ferret --quantile")).is_err());
        assert!(parse(&argv("check -b ferret --cvar ninety")).is_err());
    }

    #[test]
    fn analyze_band_flags_build_a_request() {
        let c = parse(&argv("analyze data.txt --band -q 0.5 --cvar 0.95 --json")).unwrap();
        match c {
            Command::Analyze { band, json, .. } => {
                assert!(json);
                assert_eq!(
                    band,
                    Some(BandRequest {
                        quantiles: vec![0.5],
                        cvar_alpha: Some(0.95),
                    })
                );
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&argv("analyze data.txt")).unwrap();
        match c {
            Command::Analyze { band, .. } => assert_eq!(band, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn submit_band_flags_select_band_mode() {
        let c = parse(&argv("submit -b ferret -q 0.9 -q 0.5 --cvar 0.95")).unwrap();
        let Command::Submit { spec, .. } = c else {
            panic!("{c:?}");
        };
        assert_eq!(
            spec.mode,
            ModeSpec::Band {
                quantiles: vec![0.9, 0.5],
                cvar_alpha: Some(0.95),
            }
        );
        let c = parse(&argv("submit -b ferret --band")).unwrap();
        let Command::Submit { spec, .. } = c else {
            panic!("{c:?}");
        };
        assert_eq!(
            spec.mode,
            ModeSpec::Band {
                quantiles: DEFAULT_BAND_QUANTILES.to_vec(),
                cvar_alpha: None,
            }
        );
        // Band mode excludes the other mode selectors.
        assert!(parse(&argv("submit -b ferret --band -t 1.5")).is_err());
        assert!(parse(&argv("submit -b ferret --band -p G[0,end](ipc>0.8)")).is_err());
        assert!(parse(&argv("submit -b ferret --band --stream")).is_err());
    }

    #[test]
    fn submit_property_selects_property_mode() {
        let c = parse(&argv("submit -b ferret -p G[0,end](ipc>0.8) --robustness")).unwrap();
        let Command::Submit { spec, .. } = c else {
            panic!("{c:?}");
        };
        assert_eq!(
            spec.mode,
            ModeSpec::Property {
                formula: "G[0,end](ipc>0.8)".into(),
                robustness: true,
            }
        );
        // A property and a threshold are mutually exclusive job modes.
        assert!(parse(&argv("submit -b ferret -p G[0,end](ipc>0.8) -t 1.5")).is_err());
    }

    #[test]
    fn submit_requires_benchmark_and_status_parses() {
        assert!(parse(&argv("submit")).is_err());
        assert_eq!(
            parse(&argv("status")).unwrap(),
            Command::Status {
                addr: DEFAULT_ADDR.into()
            }
        );
        assert_eq!(
            parse(&argv("shutdown -a 127.0.0.1:2")).unwrap(),
            Command::Shutdown {
                addr: "127.0.0.1:2".into()
            }
        );
        assert!(parse(&argv("serve --system warehouse")).is_err());
    }

    #[test]
    fn metrics_parses_with_defaults_and_flags() {
        assert_eq!(
            parse(&argv("metrics")).unwrap(),
            Command::Metrics {
                addr: DEFAULT_ADDR.into(),
                json: false,
            }
        );
        assert_eq!(
            parse(&argv("metrics -a 127.0.0.1:3 --json")).unwrap(),
            Command::Metrics {
                addr: "127.0.0.1:3".into(),
                json: true,
            }
        );
    }

    #[test]
    fn trace_flag_is_positionless_and_stripped() {
        let (trace, rest) = split_trace(&argv("--trace analyze data.txt"));
        assert!(trace);
        assert_eq!(rest, argv("analyze data.txt"));
        let (trace, rest) = split_trace(&argv("analyze --trace data.txt"));
        assert!(trace);
        assert_eq!(rest, argv("analyze data.txt"));
        let (trace, rest) = split_trace(&argv("analyze data.txt"));
        assert!(!trace);
        assert_eq!(rest, argv("analyze data.txt"));
        // The stripped argv parses exactly as if --trace was never there.
        assert!(parse(&rest).is_ok());
    }

    #[test]
    fn noise_forms() {
        assert_eq!(parse_noise("paper").unwrap(), NoiseArg::Paper);
        assert_eq!(parse_noise("jitter:16").unwrap(), NoiseArg::Jitter(16));
        assert_eq!(parse_noise("real-machine").unwrap(), NoiseArg::RealMachine);
        assert!(parse_noise("jitter:x").is_err());
    }
}
