//! Measurement-file parsing: whitespace/comma-separated numeric columns
//! with `#` comments and tolerant header skipping.

use crate::{CliError, Result};

/// Parses column `column` (0-based) from text content, also counting how
/// many data rows were skipped as non-numeric.
///
/// Fields may be separated by whitespace or commas. Lines beginning with
/// `#` are comments; lines whose selected field is missing or not
/// numeric are skipped (headers, truncated rows) and counted, but a file
/// yielding no numbers at all is an error.
///
/// # Errors
///
/// Returns [`CliError::Input`] when no numeric values are found or when
/// a NaN/infinite value appears.
pub fn parse_column_counted(content: &str, column: usize) -> Result<(Vec<f64>, usize)> {
    let mut values = Vec::new();
    let mut saw_rows = false;
    let mut skipped = 0usize;
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        saw_rows = true;
        let field = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty())
            .nth(column);
        let Some(field) = field else {
            skipped += 1;
            continue;
        };
        if let Ok(v) = field.parse::<f64>() {
            if !v.is_finite() {
                return Err(CliError::Input(format!(
                    "non-finite value `{field}` in input"
                )));
            }
            values.push(v);
        } else {
            skipped += 1;
        }
    }
    if values.is_empty() {
        return Err(CliError::Input(if saw_rows {
            format!("no numeric data in column {column}")
        } else {
            "input file is empty".into()
        }));
    }
    Ok((values, skipped))
}

/// Parses column `column` (0-based) from text content. See
/// [`parse_column_counted`] for the skipping rules.
///
/// # Errors
///
/// Same as [`parse_column_counted`].
pub fn parse_column(content: &str, column: usize) -> Result<Vec<f64>> {
    parse_column_counted(content, column).map(|(values, _)| values)
}

/// Reads and parses a file, also counting skipped non-numeric rows.
///
/// # Errors
///
/// Returns [`CliError::File`] naming `path` when it cannot be read, and
/// [`parse_column_counted`] errors otherwise.
pub fn read_column_counted(path: &str, column: usize) -> Result<(Vec<f64>, usize)> {
    let content = std::fs::read_to_string(path).map_err(|source| CliError::File {
        path: path.to_owned(),
        source,
    })?;
    parse_column_counted(&content, column)
}

/// Reads and parses a file.
///
/// # Errors
///
/// Same as [`read_column_counted`].
pub fn read_column(path: &str, column: usize) -> Result<Vec<f64>> {
    read_column_counted(path, column).map(|(values, _)| values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_and_commas() {
        let xs = parse_column("1.0 2.0\n3.0,4.0\n", 0).unwrap();
        assert_eq!(xs, vec![1.0, 3.0]);
        let ys = parse_column("1.0 2.0\n3.0,4.0\n", 1).unwrap();
        assert_eq!(ys, vec![2.0, 4.0]);
    }

    #[test]
    fn comments_and_headers_skipped() {
        let content = "# produced by spa simulate\nseed,runtime\n0,1.5\n1,1.7\n";
        let xs = parse_column(content, 1).unwrap();
        assert_eq!(xs, vec![1.5, 1.7]);
    }

    #[test]
    fn short_rows_are_skipped() {
        let xs = parse_column("1 10\n2\n3 30\n", 1).unwrap();
        assert_eq!(xs, vec![10.0, 30.0]);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(parse_column("", 0).is_err());
        assert!(parse_column("# only comments\n", 0).is_err());
        assert!(parse_column("a b c\nx y z\n", 1).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(parse_column("1.0\nNaN\n", 0).is_err());
        assert!(parse_column("inf\n", 0).is_err());
    }

    #[test]
    fn missing_file_errors_name_the_path() {
        let err = read_column("/nonexistent/definitely-missing.txt", 0).unwrap_err();
        assert!(matches!(err, CliError::File { .. }), "{err:?}");
        assert!(err.to_string().contains("definitely-missing.txt"), "{err}");
    }

    #[test]
    fn skipped_rows_are_counted() {
        let content = "# comment\nseed,runtime\n0,1.5\n1\n2,oops\n3,1.7\n";
        let (xs, skipped) = parse_column_counted(content, 1).unwrap();
        assert_eq!(xs, vec![1.5, 1.7]);
        // header + short row + non-numeric field; the comment is free.
        assert_eq!(skipped, 3);

        let (clean, none) = parse_column_counted("1.0\n2.0\n", 0).unwrap();
        assert_eq!(clean, vec![1.0, 2.0]);
        assert_eq!(none, 0);
    }
}
