//! Command execution: each command renders its result to a `String`.

use std::fmt::Write as _;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use spa_baselines::bootstrap::bca_ci;
use spa_baselines::rank::rank_ci_normal;
use spa_baselines::zscore::z_ci;
use spa_core::band::BandReport;
use spa_core::clopper_pearson::Assertion;
use spa_core::fault::{derive_retry_seed, FailureCounts, RetryPolicy, SampleBatch, SampleError};
use spa_core::min_samples::{min_samples, n_negative, n_positive};
use spa_core::property::MetricProperty;
use spa_core::spa::{Spa, SpaReport};
use spa_server::client;
use spa_server::protocol::{JobResult, MetricsReport, Response};
use spa_server::spec::JobSpec;
use spa_server::ServerConfig;
use spa_sim::check::run_check;
use spa_sim::config::SystemConfig;
use spa_sim::fault::{FaultKind, FaultSpec};
use spa_sim::machine::Machine;
use spa_sim::metrics::{ExecutionMetrics, Metric};
use spa_sim::pipeline::PropertySemantics;
use spa_sim::variability::Variability;
use spa_sim::workload::parsec::Benchmark;
use spa_stl::StlError;

use crate::args::{BandRequest, Command, NoiseArg, StatOpts};
use crate::data::{read_column, read_column_counted};
use crate::{CliError, Result, USAGE};

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Propagates input and statistical errors; individual baseline
/// failures inside `analyze --all-methods` are reported inline instead.
pub fn execute(command: Command) -> Result<String> {
    match command {
        Command::Help => Ok(USAGE.to_owned()),
        Command::MinSamples { stat } => min_samples_text(&stat),
        Command::Analyze {
            file,
            column,
            stat,
            all_methods,
            json,
            band,
        } => analyze(&file, column, &stat, all_methods, json, band.as_ref()),
        Command::Hypothesis {
            file,
            column,
            threshold,
            stat,
        } => hypothesis(&file, column, threshold, &stat),
        Command::Sweep {
            file,
            column,
            from,
            to,
            step,
            stat,
        } => sweep(&file, column, from, to, step, &stat),
        Command::Simulate {
            benchmark,
            runs,
            seed_start,
            l2_kib,
            noise,
            threads,
            out,
            retries,
            timeout,
            fault,
            json,
        } => simulate(&SimulateOpts {
            benchmark,
            runs,
            seed_start,
            l2_kib,
            noise,
            threads,
            out,
            retries,
            timeout,
            fault,
            json,
        }),
        Command::Check {
            benchmark,
            property,
            band,
            robustness,
            runs,
            seed_start,
            l2_kib,
            noise,
            threads,
            retries,
            stat,
            json,
        } => check(&CheckOpts {
            benchmark,
            property,
            band,
            robustness,
            runs,
            seed_start,
            l2_kib,
            noise,
            threads,
            retries,
            stat,
            json,
        }),
        Command::Serve {
            addr,
            workers,
            queue_depth,
            threads,
            state_dir,
            deadline_ms,
        } => serve(&addr, workers, queue_depth, threads, state_dir, deadline_ms),
        Command::Submit { addr, spec, json } => submit_job(&addr, &spec, json),
        Command::Watch {
            addr,
            job,
            width,
            confidence,
            json,
        } => watch_job(&addr, job, width, confidence, json),
        Command::Status { addr } => status_text(&addr),
        Command::Metrics { addr, json } => metrics_text(&addr, json),
        Command::Shutdown { addr } => shutdown_server(&addr),
    }
}

/// Bundled `simulate` parameters (mirrors [`Command::Simulate`]).
struct SimulateOpts {
    benchmark: Benchmark,
    runs: u64,
    seed_start: u64,
    l2_kib: u64,
    noise: NoiseArg,
    threads: usize,
    out: Option<String>,
    retries: u32,
    timeout: Option<f64>,
    fault: FaultSpec,
    json: bool,
}

/// Bundled `check` parameters (mirrors [`Command::Check`]).
struct CheckOpts {
    benchmark: Benchmark,
    property: Option<String>,
    band: Option<BandRequest>,
    robustness: bool,
    runs: Option<u64>,
    seed_start: u64,
    l2_kib: u64,
    noise: NoiseArg,
    threads: usize,
    retries: u32,
    stat: StatOpts,
    json: bool,
}

/// Maps the CLI noise flag onto the simulator's variability model
/// (shared by `simulate` and `check` so the two cannot drift).
fn variability_for(noise: NoiseArg) -> Variability {
    match noise {
        NoiseArg::Paper => Variability::paper_default(),
        NoiseArg::Jitter(0) => Variability::None,
        NoiseArg::Jitter(n) => Variability::DramJitter { max_cycles: n },
        NoiseArg::RealMachine => Variability::real_machine(),
    }
}

/// Renders an STL parse error with a caret span under the offending
/// token, e.g.
///
/// ```text
/// invalid property (parse error at byte 8): expected `]`
///   G[0,end (ipc > 0.8)
///           ^
/// ```
///
/// Columns are counted in characters (not bytes) so the caret lines up
/// even when the formula contains multi-byte characters; a zero-length
/// span (end of input) still gets one caret.
fn render_parse_error(formula: &str, position: usize, len: usize, message: &str) -> String {
    let col = formula
        .get(..position)
        .map_or(position, |prefix| prefix.chars().count());
    let width = formula
        .get(position..position + len.max(1))
        .map_or_else(|| len.max(1), |token| token.chars().count().max(1));
    format!(
        "invalid property (parse error at byte {position}): {message}\n  {formula}\n  {}{}",
        " ".repeat(col),
        "^".repeat(width),
    )
}

fn check(opts: &CheckOpts) -> Result<String> {
    if let Some(req) = &opts.band {
        return check_band(opts, req);
    }
    let property = opts
        .property
        .as_deref()
        .expect("the parser guarantees a property when no band is requested");
    let formula = spa_stl::parser::parse(property).map_err(|e| match e {
        StlError::Parse {
            position,
            len,
            message,
        } => CliError::Usage(render_parse_error(property, position, len, &message)),
        other => CliError::Usage(format!("invalid property: {other}")),
    })?;
    let config = SystemConfig::table2()
        .with_l2_capacity(opts.l2_kib * 1024)
        .with_trace();
    let spec = opts.benchmark.workload();
    let machine = Machine::new(config, &spec)?.with_variability(variability_for(opts.noise));
    // The batch size only sets how many seeds are claimed per wave; the
    // report is byte-identical for any --threads value (the pipeline
    // reassembles samples in seed order).
    let spa = Spa::builder()
        .confidence(opts.stat.confidence)
        .proportion(opts.stat.proportion)
        .batch_size(opts.threads.max(1))
        .build()?;
    let semantics = if opts.robustness {
        PropertySemantics::Robustness
    } else {
        PropertySemantics::Boolean
    };
    let policy = RetryPolicy::new(opts.retries.saturating_add(1));
    let report = run_check(
        &machine,
        &formula,
        semantics,
        &spa,
        opts.seed_start,
        opts.runs,
        &policy,
    )?;
    if opts.json {
        return to_json_line(&report);
    }
    let mut out = String::new();
    writeln!(
        out,
        "property: {} ({} semantics) on {}",
        report.formula,
        if report.robustness {
            "robustness"
        } else {
            "boolean"
        },
        opts.benchmark,
    )
    .expect("write to string");
    writeln!(
        out,
        "satisfied by {}/{} traces ({:.1}%); C_CP = {:.4}",
        report.satisfied,
        report.evaluated,
        report.satisfaction_rate * 100.0,
        report.outcome.achieved_confidence,
    )
    .expect("write to string");
    let verdict = match report.outcome.assertion {
        Some(Assertion::Positive) => format!(
            "POSITIVE — with {:.1}% confidence, at least {:.1}% of executions satisfy it",
            report.confidence * 100.0,
            report.proportion * 100.0,
        ),
        Some(Assertion::Negative) => format!(
            "NEGATIVE — with {:.1}% confidence, less than {:.1}% of executions satisfy it",
            report.confidence * 100.0,
            report.proportion * 100.0,
        ),
        None => "INCONCLUSIVE — collect more executions".into(),
    };
    writeln!(out, "{verdict}").expect("write to string");
    if let Some(interval) = &report.robustness_interval {
        writeln!(
            out,
            "robustness margin: at least {:.1}% of executions have margin >= v for v in [{:.6}, {:.6}]",
            report.proportion * 100.0,
            interval.lower(),
            interval.upper(),
        )
        .expect("write to string");
    }
    if !report.failures.is_clean() {
        writeln!(out, "failures: {}", report.failures).expect("write to string");
    }
    Ok(out)
}

/// The property-free form of `spa check`: collect the Eq. 8 population
/// (or `--runs`) of seeded runtime samples and answer every quantile
/// and CVaR query from one simultaneous DKW band.
///
/// The same retry scheme as `simulate` (attempt `k` re-rolls a derived
/// seed) and the same determinism contract: results return in seed
/// order for every `--jobs` value, so the report never depends on
/// parallelism.
fn check_band(opts: &CheckOpts, req: &BandRequest) -> Result<String> {
    let config = SystemConfig::table2().with_l2_capacity(opts.l2_kib * 1024);
    let spec = opts.benchmark.workload();
    let machine = Machine::new(config, &spec)?.with_variability(variability_for(opts.noise));
    let spa = spa_for(&opts.stat)?;
    let total = opts.runs.unwrap_or_else(|| spa.required_samples());
    if opts.seed_start.checked_add(total).is_none() {
        return Err(CliError::Input(format!(
            "seed range {}..+{total} overflows u64",
            opts.seed_start
        )));
    }
    let outcomes = spa_sim::batch::batch_map(total, opts.threads.max(1), |index| {
        let seed = opts.seed_start + index;
        let mut counts = FailureCounts::default();
        let mut metrics = None;
        for attempt in 0..=opts.retries {
            if attempt > 0 {
                counts.retries += 1;
            }
            let derived = derive_retry_seed(seed, attempt);
            match run_attempt(&machine, derived, &FaultSpec::none(), None) {
                Ok(m) => {
                    metrics = Some(m);
                    break;
                }
                Err(e) => counts.record(&e),
            }
        }
        if metrics.is_none() {
            counts.abandoned_seeds += 1;
        }
        (metrics, counts)
    });
    let mut failures = FailureCounts::default();
    let mut samples = Vec::new();
    for (metrics, counts) in outcomes {
        failures.merge(&counts);
        if let Some(m) = metrics {
            samples.push(Metric::RuntimeSeconds.extract(&m));
        }
    }
    let batch = SampleBatch {
        samples,
        failures,
        requested: total,
    };
    let report =
        BandReport::from_batch(&batch, opts.stat.confidence, &req.quantiles, req.cvar_alpha)?;
    if opts.json {
        return to_json_line(&report);
    }
    Ok(render_band_report(
        &report,
        &format!("{} runtime", opts.benchmark),
    ))
}

/// Renders a band report as text: the simultaneous band parameters, one
/// line per quantile CI (`-inf`/`+inf` for endpoints the band cannot
/// bound at this sample count), and the CVaR brackets for both tails.
fn render_band_report(report: &BandReport, subject: &str) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "DKW band over {subject}: {} samples, eps = {:.6}, {:.1}% simultaneous confidence",
        report.samples,
        report.epsilon,
        report.confidence * 100.0,
    )
    .expect("write to string");
    writeln!(
        out,
        "observed support: [{:.6}, {:.6}]",
        report.min, report.max
    )
    .expect("write to string");
    for q in &report.quantiles {
        let lo = q
            .lower
            .map_or_else(|| "-inf".to_string(), |v| format!("{v:.6}"));
        let hi = q
            .upper
            .map_or_else(|| "+inf".to_string(), |v| format!("{v:.6}"));
        writeln!(out, "  q = {:<5} in [{lo}, {hi}]", q.q).expect("write to string");
    }
    if let Some(cvar) = &report.cvar {
        writeln!(
            out,
            "  CVaR[{}] upper tail in [{:.6}, {:.6}]",
            cvar.alpha, cvar.upper_tail.lower, cvar.upper_tail.upper,
        )
        .expect("write to string");
        writeln!(
            out,
            "  CVaR[{}] lower tail in [{:.6}, {:.6}]",
            cvar.alpha, cvar.lower_tail.lower, cvar.lower_tail.upper,
        )
        .expect("write to string");
    }
    if !report.failures.is_clean() {
        writeln!(out, "failures: {}", report.failures).expect("write to string");
    }
    out
}

fn to_json_line<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut s = serde_json::to_string_pretty(value)
        .map_err(|e| CliError::Input(format!("cannot serialize report: {e}")))?;
    s.push('\n');
    Ok(s)
}

fn spa_for(stat: &StatOpts) -> Result<Spa> {
    Ok(Spa::builder()
        .confidence(stat.confidence)
        .proportion(stat.proportion)
        .build()?)
}

fn min_samples_text(stat: &StatOpts) -> Result<String> {
    let (c, f) = (stat.confidence, stat.proportion);
    let mut out = String::new();
    writeln!(out, "C = {c}, F = {f}").expect("write to string");
    writeln!(
        out,
        "  N+ (all-true convergence, Eq. 6): {}",
        n_positive(c, f)?
    )
    .expect("write to string");
    writeln!(
        out,
        "  N- (all-false convergence, Eq. 7): {}",
        n_negative(c, f)?
    )
    .expect("write to string");
    writeln!(
        out,
        "  minimum samples for a CI (Eq. 8): {}",
        min_samples(c, f)?
    )
    .expect("write to string");
    Ok(out)
}

fn analyze(
    file: &str,
    column: usize,
    stat: &StatOpts,
    all_methods: bool,
    json: bool,
    band: Option<&BandRequest>,
) -> Result<String> {
    if json && all_methods {
        return Err(CliError::Usage(
            "--json cannot be combined with --all-methods".into(),
        ));
    }
    if band.is_some() && all_methods {
        return Err(CliError::Usage(
            "--band cannot be combined with --all-methods".into(),
        ));
    }
    let (samples, skipped) = read_column_counted(file, column)?;
    if let Some(req) = band {
        // The DKW band is valid at every sample count (small n just
        // widens eps toward vacuity), so no Eq. 8 floor applies here.
        let report =
            BandReport::from_samples(&samples, stat.confidence, &req.quantiles, req.cvar_alpha)?;
        if json {
            return to_json_line(&report);
        }
        let mut out = String::new();
        writeln!(
            out,
            "{} samples from {file} (column {column}){}",
            samples.len(),
            if skipped > 0 {
                format!(", skipped {skipped} non-numeric rows")
            } else {
                String::new()
            }
        )
        .expect("write to string");
        out.push_str(&render_band_report(&report, &format!("column {column}")));
        return Ok(out);
    }
    let spa = spa_for(stat)?;
    let needed = spa.required_samples();
    if (samples.len() as u64) < needed {
        return Err(CliError::Input(format!(
            "{} samples in {file}, but C = {} / F = {} needs at least {needed} (Eq. 8)",
            samples.len(),
            stat.confidence,
            stat.proportion
        )));
    }
    let ci = spa.confidence_interval(&samples, stat.direction)?;
    if json {
        // The same serde type a server interval job returns, so file
        // analysis and service output are interchangeable downstream.
        return to_json_line(&SpaReport {
            samples,
            interval: ci,
            failures: FailureCounts::default(),
            degraded: false,
            requested_confidence: stat.confidence,
            achieved_confidence: stat.confidence,
        });
    }
    let mut out = String::new();
    writeln!(
        out,
        "{} samples from {file} (column {column}){}",
        samples.len(),
        if skipped > 0 {
            format!(", skipped {skipped} non-numeric rows")
        } else {
            String::new()
        }
    )
    .expect("write to string");
    writeln!(
        out,
        "SPA: with {:.1}% confidence, at least {:.1}% of executions satisfy metric {} v for v in [{:.6}, {:.6}] (width {:.6})",
        stat.confidence * 100.0,
        stat.proportion * 100.0,
        stat.direction,
        ci.lower(),
        ci.upper(),
        ci.width(),
    )
    .expect("write to string");

    if all_methods {
        // Baselines target the quantile matching SPA's direction.
        let q = stat.direction.target_quantile(stat.proportion);
        let mut rng = StdRng::seed_from_u64(0xC11);
        match bca_ci(&samples, q, stat.confidence, 2000, &mut rng) {
            Ok(b) => writeln!(
                out,
                "bootstrap (BCa): q{q:.2} in [{:.6}, {:.6}]",
                b.lower(),
                b.upper()
            )
            .expect("write to string"),
            Err(e) => writeln!(out, "bootstrap (BCa): failed — {e}").expect("write to string"),
        }
        match rank_ci_normal(&samples, q, stat.confidence) {
            Ok(r) => writeln!(
                out,
                "rank (normal):   q{q:.2} in [{:.6}, {:.6}]",
                r.lower(),
                r.upper()
            )
            .expect("write to string"),
            Err(e) => writeln!(out, "rank (normal):   failed — {e}").expect("write to string"),
        }
        match z_ci(&samples, stat.confidence) {
            Ok(z) => writeln!(
                out,
                "z-score:         mean in [{:.6}, {:.6}] (Gaussian assumption)",
                z.lower(),
                z.upper()
            )
            .expect("write to string"),
            Err(e) => writeln!(out, "z-score:         failed — {e}").expect("write to string"),
        }
    }
    Ok(out)
}

fn hypothesis(file: &str, column: usize, threshold: f64, stat: &StatOpts) -> Result<String> {
    let samples = read_column(file, column)?;
    let spa = spa_for(stat)?;
    let property = MetricProperty::new(stat.direction, threshold);
    let outcome = spa.hypothesis_test(&property, &samples)?;
    let verdict = match outcome.assertion {
        Some(Assertion::Positive) => "POSITIVE — the property holds",
        Some(Assertion::Negative) => "NEGATIVE — the property does not hold",
        None => "INCONCLUSIVE — collect more executions",
    };
    Ok(format!(
        "hypothesis: \"{property}\" in at least {:.1}% of executions\n\
         satisfied by {}/{} samples; C_CP = {:.4} (needed > {})\n\
         {verdict}\n",
        stat.proportion * 100.0,
        outcome.satisfied,
        outcome.samples_used,
        outcome.achieved_confidence,
        stat.confidence,
    ))
}

fn sweep(
    file: &str,
    column: usize,
    from: f64,
    to: f64,
    step: f64,
    stat: &StatOpts,
) -> Result<String> {
    let samples = read_column(file, column)?;
    let spa = spa_for(stat)?;
    let count = ((to - from) / step).round() as usize + 1;
    let thresholds: Vec<f64> = (0..count).map(|i| from + i as f64 * step).collect();
    let points = spa.sweep(&samples, stat.direction, &thresholds)?;
    let mut out = String::new();
    writeln!(out, "threshold   C_CP(positive)   verdict").expect("write to string");
    for p in points {
        writeln!(
            out,
            "{:>9.4}   {:>14.4}   {}",
            p.threshold,
            p.positive_confidence,
            match p.verdict {
                Some(Assertion::Positive) => "positive",
                Some(Assertion::Negative) => "negative",
                None => "none",
            }
        )
        .expect("write to string");
    }
    Ok(out)
}

/// One execution attempt: rolls the injected-fault spec for `seed`, then
/// runs the simulator behind a panic guard and classifies the outcome.
///
/// The timeout is *soft*: the attempt runs to completion and is discarded
/// afterwards if it exceeded its budget (an in-process simulator cannot
/// be preempted safely).
fn run_attempt(
    machine: &Machine,
    seed: u64,
    fault: &FaultSpec,
    timeout: Option<Duration>,
) -> std::result::Result<ExecutionMetrics, SampleError> {
    if let Some(kind) = fault.roll(seed) {
        return Err(match kind {
            FaultKind::Crash => SampleError::Crash {
                message: format!("injected crash (seed {seed})"),
            },
            FaultKind::Timeout => SampleError::Timeout,
            FaultKind::NanMetric => SampleError::InvalidMetric { value: f64::NAN },
        });
    }
    let start = Instant::now();
    let run = match std::panic::catch_unwind(AssertUnwindSafe(|| machine.run(seed))) {
        Ok(Ok(run)) => run,
        Ok(Err(e)) => {
            return Err(SampleError::Crash {
                message: e.to_string(),
            })
        }
        Err(_) => {
            return Err(SampleError::Crash {
                message: "simulator panicked".into(),
            })
        }
    };
    if let Some(budget) = timeout {
        if start.elapsed() > budget {
            return Err(SampleError::Timeout);
        }
    }
    Ok(run.metrics)
}

fn simulate(opts: &SimulateOpts) -> Result<String> {
    let config = SystemConfig::table2().with_l2_capacity(opts.l2_kib * 1024);
    let variability = variability_for(opts.noise);
    let benchmark = opts.benchmark;
    let runs = opts.runs;
    let spec = benchmark.workload();
    let machine = Machine::new(config, &spec)?.with_variability(variability);
    let timeout = opts.timeout.map(Duration::from_secs_f64);

    // Fan seeds out across the sim batch engine (`--jobs N` workers);
    // results come back already in seed order. Each seed gets
    // 1 + retries attempts; attempt k re-runs with a derived seed so a
    // deterministic fault does not simply repeat.
    if opts.seed_start.checked_add(runs).is_none() {
        return Err(CliError::Input(format!(
            "seed range {}..+{runs} overflows u64",
            opts.seed_start
        )));
    }
    let outcomes = spa_sim::batch::batch_map(runs, opts.threads, |index| {
        let seed = opts.seed_start + index;
        let mut counts = FailureCounts::default();
        let mut metrics = None;
        for attempt in 0..=opts.retries {
            if attempt > 0 {
                counts.retries += 1;
            }
            let derived = derive_retry_seed(seed, attempt);
            match run_attempt(&machine, derived, &opts.fault, timeout) {
                Ok(m) => {
                    metrics = Some(m);
                    break;
                }
                Err(e) => counts.record(&e),
            }
        }
        if metrics.is_none() {
            counts.abandoned_seeds += 1;
        }
        (seed, metrics, counts)
    });

    let mut failures = FailureCounts::default();
    let mut rows: Vec<(u64, ExecutionMetrics)> = Vec::new();
    for (seed, metrics, counts) in outcomes {
        failures.merge(&counts);
        if let Some(m) = metrics {
            rows.push((seed, m));
        }
    }

    if rows.is_empty() && runs > 0 {
        return Err(CliError::Input(format!(
            "all {runs} executions of {benchmark} failed ({failures})"
        )));
    }

    if opts.json {
        #[derive(serde::Serialize)]
        struct Row {
            seed: u64,
            metrics: ExecutionMetrics,
        }
        #[derive(serde::Serialize)]
        struct Dump<'a> {
            benchmark: &'a str,
            rows: Vec<Row>,
            failures: FailureCounts,
        }
        let text = to_json_line(&Dump {
            benchmark: benchmark.name(),
            rows: rows
                .iter()
                .map(|&(seed, metrics)| Row { seed, metrics })
                .collect(),
            failures,
        })?;
        return match &opts.out {
            Some(path) => {
                std::fs::write(path, &text).map_err(|source| CliError::File {
                    path: path.clone(),
                    source,
                })?;
                Ok(format!(
                    "wrote {} executions of {benchmark} to {path} (JSON)\n",
                    rows.len()
                ))
            }
            None => Ok(text),
        };
    }

    let mut csv = String::new();
    write!(csv, "seed").expect("write to string");
    for m in Metric::ALL {
        write!(csv, ",{}", m.key()).expect("write to string");
    }
    writeln!(csv).expect("write to string");
    for (seed, metrics) in &rows {
        write!(csv, "{seed}").expect("write to string");
        for m in Metric::ALL {
            write!(csv, ",{}", m.extract(metrics)).expect("write to string");
        }
        writeln!(csv).expect("write to string");
    }

    match &opts.out {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|source| CliError::File {
                path: path.clone(),
                source,
            })?;
            let mut msg = format!("wrote {} executions of {benchmark} to {path}\n", rows.len());
            if !failures.is_clean() {
                writeln!(msg, "failures: {failures}").expect("write to string");
            }
            Ok(msg)
        }
        // Failure counts ride along as a `#` comment so the CSV stays
        // parseable; clean runs emit byte-identical output to before.
        None if failures.is_clean() => Ok(csv),
        None => Ok(format!("# failures: {failures}\n{csv}")),
    }
}

fn serve(
    addr: &str,
    workers: usize,
    queue_depth: usize,
    threads: usize,
    state_dir: Option<String>,
    deadline_ms: Option<u64>,
) -> Result<String> {
    let state = state_dir.map(std::path::PathBuf::from);
    let handle = spa_server::start(ServerConfig {
        addr: addr.to_string(),
        workers,
        queue_depth,
        job_threads: threads,
        state_dir: state.clone(),
        default_deadline: deadline_ms.map(Duration::from_millis),
        ..ServerConfig::default()
    })?;
    // Announce the bound address immediately (port 0 resolves to an
    // ephemeral port) so callers and scripts can scrape it; the summary
    // string below is only printed after the drain completes.
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "spa-server listening on {} ({workers} workers, queue depth {queue_depth})",
            handle.addr()
        );
        if let Some(dir) = &state {
            let _ = writeln!(stdout, "durable store at {}", dir.display());
        }
        let _ = stdout.flush();
    }
    while !handle.stats().shutting_down {
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = handle.stats();
    handle.join();
    Ok(format!(
        "server drained and stopped: {} submitted, {} executed, {} cache hits, {} completed, {} failed\n",
        stats.submitted, stats.executed, stats.cache_hits, stats.completed, stats.failed
    ))
}

fn submit_job(addr: &str, spec: &JobSpec, json: bool) -> Result<String> {
    let outcome = client::submit(addr, spec, |event| {
        // Progress goes to stderr as it streams; stdout carries only the
        // final (possibly JSON) report.
        if !json {
            if let Response::Progress {
                samples,
                confidence,
                rounds,
                interval,
            } = event
            {
                match interval {
                    Some((lo, hi)) => eprintln!(
                        "  progress: {samples} samples over {rounds} rounds, \
                         [{lo:.6}, {hi:.6}] (width {:.6}) at C={confidence}",
                        hi - lo
                    ),
                    None => eprintln!(
                        "  progress: {samples} samples over {rounds} rounds, \
                         C_CP bound {confidence:.4}"
                    ),
                }
            }
        }
    })?;
    if json {
        return to_json_line(&outcome.result);
    }
    let mut out = String::new();
    writeln!(
        out,
        "job {} {}",
        outcome.job,
        if outcome.cached {
            "answered from cache (no sampling)"
        } else {
            "executed"
        }
    )
    .expect("write to string");
    match &outcome.result {
        JobResult::Interval { report } => {
            writeln!(
                out,
                "SPA: {} samples; with {:.1}% confidence the metric interval is [{:.6}, {:.6}] (width {:.6})",
                report.samples.len(),
                report.achieved_confidence * 100.0,
                report.interval.lower(),
                report.interval.upper(),
                report.interval.width(),
            )
            .expect("write to string");
            if report.degraded {
                writeln!(
                    out,
                    "degraded: requested {:.4} but sampling losses allowed only {:.4} ({})",
                    report.requested_confidence, report.achieved_confidence, report.failures,
                )
                .expect("write to string");
            }
        }
        JobResult::Property { report } => {
            writeln!(
                out,
                "property: {} ({} semantics)",
                report.formula,
                if report.robustness {
                    "robustness"
                } else {
                    "boolean"
                },
            )
            .expect("write to string");
            let verdict = match report.outcome.assertion {
                Some(Assertion::Positive) => "POSITIVE — the property holds",
                Some(Assertion::Negative) => "NEGATIVE — the property does not hold",
                None => "INCONCLUSIVE — collect more executions",
            };
            writeln!(
                out,
                "satisfied by {}/{} traces ({:.1}%); C_CP = {:.4}\n{verdict}",
                report.satisfied,
                report.evaluated,
                report.satisfaction_rate * 100.0,
                report.outcome.achieved_confidence,
            )
            .expect("write to string");
            if let Some(interval) = &report.robustness_interval {
                writeln!(
                    out,
                    "robustness margin interval: [{:.6}, {:.6}]",
                    interval.lower(),
                    interval.upper(),
                )
                .expect("write to string");
            }
            if !report.failures.is_clean() {
                writeln!(out, "failures: {}", report.failures).expect("write to string");
            }
        }
        JobResult::Streaming { report } => {
            writeln!(
                out,
                "anytime ({} boundary): {} samples, {} satisfying; with {:.1}% confidence \
                 the satisfaction proportion is in [{:.6}, {:.6}] (width {:.6})",
                report.boundary,
                report.samples,
                report.successes,
                report.confidence * 100.0,
                report.lower,
                report.upper,
                report.width(),
            )
            .expect("write to string");
            writeln!(out, "stopped: {}", report.stop).expect("write to string");
            if !report.failures.is_clean() {
                writeln!(out, "failures: {}", report.failures).expect("write to string");
            }
        }
        JobResult::Band { report } => {
            out.push_str(&render_band_report(report, "the sampled metric"));
        }
        JobResult::Hypothesis { outcome: rounds } => match rounds.outcome {
            Some(o) => {
                let verdict = match o.assertion {
                    Assertion::Positive => "POSITIVE — the property holds",
                    Assertion::Negative => "NEGATIVE — the property does not hold",
                };
                writeln!(
                        out,
                        "hypothesis: {verdict}\nsatisfied by {}/{} samples over {} rounds; C_CP = {:.4}",
                        o.satisfied, o.samples_used, rounds.rounds_used, o.achieved_confidence,
                    )
                    .expect("write to string");
            }
            None => writeln!(
                out,
                "hypothesis: INCONCLUSIVE after {} rounds ({} samples); last C_CP = {:.4}",
                rounds.rounds_used, rounds.samples_used, rounds.last_confidence,
            )
            .expect("write to string"),
        },
    }
    Ok(out)
}

fn watch_job(
    addr: &str,
    job: u64,
    width: Option<f64>,
    confidence: Option<f64>,
    json: bool,
) -> Result<String> {
    // State threaded out of the event closure: the last interval seen
    // (for the detach summary) and a confidence mismatch, which aborts
    // the watch instead of silently reinterpreting the stream.
    let mut last: Option<(u64, f64, f64)> = None;
    let mut mismatch: Option<f64> = None;
    let outcome = client::watch(addr, job, |event| {
        if json {
            if let Ok(line) = serde_json::to_string(event) {
                println!("{line}");
            }
        }
        let Response::Progress {
            samples,
            confidence: level,
            interval,
            ..
        } = event
        else {
            return true;
        };
        if let Some(expected) = confidence {
            if (level - expected).abs() > 1e-9 {
                mismatch = Some(*level);
                return false;
            }
        }
        if let Some((lo, hi)) = interval {
            last = Some((*samples, *lo, *hi));
            if !json {
                eprintln!(
                    "  n={samples}  [{lo:.6}, {hi:.6}]  width {:.6}  (C={level})",
                    hi - lo
                );
            }
            if let Some(target) = width {
                // Anytime validity: the interval already shown is a
                // sound answer, so detaching here loses nothing.
                if hi - lo <= target {
                    return false;
                }
            }
        } else if !json {
            eprintln!("  n={samples}  (C={level})");
        }
        true
    })?;
    if let Some(actual) = mismatch {
        return Err(CliError::Usage(format!(
            "job {job} runs at confidence {actual}, not {}",
            confidence.unwrap_or(actual)
        )));
    }
    match outcome.result {
        Some(JobResult::Streaming { report }) => {
            if json {
                return Ok(String::new());
            }
            let mut out = String::new();
            writeln!(
                out,
                "job {job} finished ({}): {} samples, {} satisfying; \
                 [{:.6}, {:.6}] (width {:.6}) at {:.1}% confidence",
                report.stop,
                report.samples,
                report.successes,
                report.lower,
                report.upper,
                report.width(),
                report.confidence * 100.0,
            )
            .expect("write to string");
            if !report.failures.is_clean() {
                writeln!(out, "failures: {}", report.failures).expect("write to string");
            }
            Ok(out)
        }
        Some(other) => {
            if json {
                return Ok(String::new());
            }
            Ok(format!("job {job} finished\n{}", to_json_line(&other)?))
        }
        None => {
            if json {
                return Ok(String::new());
            }
            match last {
                Some((n, lo, hi)) => Ok(format!(
                    "detached at n={n}: [{lo:.6}, {hi:.6}] (width {:.6}) — \
                     anytime-valid, job keeps running\n",
                    hi - lo
                )),
                None => Ok(format!("detached from job {job} before any interval\n")),
            }
        }
    }
}

fn status_text(addr: &str) -> Result<String> {
    let report = client::status_report(addr)?;
    let stats = &report.stats;
    let mut out = format!(
        "server at {addr}{}\n\
         submissions: {} total, {} cache hits, {} coalesced, {} rejected\n\
         jobs: {} executed, {} completed, {} failed, {} queued, {} running\n",
        if stats.shutting_down {
            " (shutting down)"
        } else {
            ""
        },
        stats.submitted,
        stats.cache_hits,
        stats.coalesced,
        stats.rejected,
        stats.executed,
        stats.completed,
        stats.failed,
        stats.queued,
        stats.running,
    );
    for s in &report.streaming {
        writeln!(
            out,
            "streaming job {}: n={} in [{:.6}, {:.6}] (width {:.6})",
            s.job,
            s.samples,
            s.lower,
            s.upper,
            s.upper - s.lower,
        )
        .expect("write to string");
    }
    Ok(out)
}

fn fmt_ns(ns: u64) -> String {
    format!("{:?}", Duration::from_nanos(ns))
}

/// Renders a metrics snapshot as text: counters and gauges by name,
/// then each latency histogram's non-empty buckets.
fn render_metrics(report: &MetricsReport) -> String {
    let mut out = String::new();
    if !report.counters.is_empty() {
        writeln!(out, "counters:").expect("write to string");
        for (name, value) in &report.counters {
            writeln!(out, "  {name} = {value}").expect("write to string");
        }
    }
    if !report.gauges.is_empty() {
        writeln!(out, "gauges:").expect("write to string");
        for (name, value) in &report.gauges {
            writeln!(out, "  {name} = {value}").expect("write to string");
        }
    }
    for timing in &report.timings {
        let observed = timing.total + timing.underflow + timing.overflow;
        let mean = if observed > 0 {
            timing.sum_ns / observed
        } else {
            0
        };
        writeln!(
            out,
            "timing {}: {observed} observations, mean {}",
            timing.name,
            fmt_ns(mean),
        )
        .expect("write to string");
        for bucket in &timing.buckets {
            if bucket.count > 0 {
                writeln!(
                    out,
                    "  [{}, {}): {}",
                    fmt_ns(bucket.lo_ns),
                    fmt_ns(bucket.hi_ns),
                    bucket.count,
                )
                .expect("write to string");
            }
        }
        if timing.underflow > 0 || timing.overflow > 0 {
            writeln!(
                out,
                "  out of range: {} under, {} over",
                timing.underflow, timing.overflow,
            )
            .expect("write to string");
        }
    }
    if out.is_empty() {
        out.push_str("no metrics recorded yet\n");
    }
    out
}

fn metrics_text(addr: &str, json: bool) -> Result<String> {
    let report = client::metrics(addr)?;
    if json {
        return to_json_line(&report);
    }
    Ok(format!("metrics at {addr}\n{}", render_metrics(&report)))
}

fn shutdown_server(addr: &str) -> Result<String> {
    client::shutdown(addr)?;
    Ok(format!(
        "shutdown started at {addr}; in-flight jobs will drain before exit\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn temp_file(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn sample_file() -> String {
        let data: String = (0..30)
            .map(|i| format!("{}\n", 1.0 + 0.01 * i as f64))
            .collect();
        temp_file("spa_cli_test_samples.txt", &data)
    }

    #[test]
    fn help_prints_usage() {
        let out = execute(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn min_samples_paper_value() {
        let out = execute(parse(&argv("min-samples -c 0.9 -f 0.9")).unwrap()).unwrap();
        assert!(
            out.contains("minimum samples for a CI (Eq. 8): 22"),
            "{out}"
        );
    }

    #[test]
    fn analyze_reports_interval() {
        let file = sample_file();
        let out = execute(parse(&argv(&format!("analyze {file} -f 0.5"))).unwrap()).unwrap();
        assert!(out.contains("SPA: with 90.0% confidence"), "{out}");
        assert!(out.contains("30 samples"), "{out}");
    }

    #[test]
    fn analyze_all_methods_adds_baselines() {
        let file = sample_file();
        let out = execute(parse(&argv(&format!("analyze {file} -f 0.5 --all-methods"))).unwrap())
            .unwrap();
        assert!(out.contains("bootstrap"), "{out}");
        assert!(out.contains("rank"), "{out}");
        assert!(out.contains("z-score"), "{out}");
    }

    #[test]
    fn analyze_json_emits_a_spa_report() {
        let file = sample_file();
        let out = execute(parse(&argv(&format!("analyze {file} -f 0.5 --json"))).unwrap()).unwrap();
        let report: SpaReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.samples.len(), 30);
        assert!(!report.degraded);
        assert_eq!(report.requested_confidence, 0.9);
        assert!(report.interval.lower() <= report.interval.upper());
    }

    #[test]
    fn analyze_json_rejects_all_methods() {
        let file = sample_file();
        let err = execute(
            parse(&argv(&format!(
                "analyze {file} -f 0.5 --json --all-methods"
            )))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--all-methods"), "{err}");
    }

    #[test]
    fn simulate_json_output() {
        let out = execute(
            parse(&argv(
                "simulate -b blackscholes -n 2 --noise jitter:0 --json",
            ))
            .unwrap(),
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["benchmark"], "blackscholes");
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert!(v["rows"][0]["metrics"]["runtime_cycles"].is_number(), "{v}");
        assert_eq!(v["failures"]["crashes"], 0);
    }

    #[test]
    fn analyze_rejects_too_few_samples() {
        let file = temp_file("spa_cli_test_tiny.txt", "1.0\n2.0\n3.0\n");
        let err = execute(parse(&argv(&format!("analyze {file}"))).unwrap()).unwrap_err();
        assert!(err.to_string().contains("needs at least 22"), "{err}");
    }

    #[test]
    fn hypothesis_verdicts() {
        let file = sample_file();
        // All samples <= 10 → positive.
        let out =
            execute(parse(&argv(&format!("hypothesis {file} -t 10 -f 0.9"))).unwrap()).unwrap();
        assert!(out.contains("POSITIVE"), "{out}");
        // No samples <= 0.5 → negative.
        let out =
            execute(parse(&argv(&format!("hypothesis {file} -t 0.5 -f 0.9"))).unwrap()).unwrap();
        assert!(out.contains("NEGATIVE"), "{out}");
    }

    #[test]
    fn sweep_emits_rows() {
        let file = sample_file();
        let out = execute(
            parse(&argv(&format!(
                "sweep {file} --from 0.9 --to 1.4 --step 0.1 -f 0.5"
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(out.lines().count(), 7); // header + 6 thresholds
        assert!(out.contains("negative"), "{out}");
        assert!(out.contains("positive"), "{out}");
    }

    #[test]
    fn simulate_to_csv() {
        let path = std::env::temp_dir().join("spa_cli_test_sim.csv");
        let _ = std::fs::remove_file(&path);
        let out = execute(
            parse(&argv(&format!(
                "simulate -b blackscholes -n 4 --threads 2 --noise jitter:4 -o {}",
                path.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("wrote 4 executions"), "{out}");
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("seed,runtime,"), "{csv}");
        assert_eq!(csv.lines().count(), 5);
        // Determinism: rerunning at any job count produces identical
        // output (`--jobs` and `--threads` are the same knob).
        for flags in ["--threads 4", "--jobs 1", "--jobs 8"] {
            let _ = execute(
                parse(&argv(&format!(
                    "simulate -b blackscholes -n 4 {flags} --noise jitter:4 -o {}",
                    path.display()
                )))
                .unwrap(),
            )
            .unwrap();
            assert_eq!(csv, std::fs::read_to_string(&path).unwrap(), "{flags}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_rejects_overflowing_seed_range() {
        let err = execute(
            parse(&argv(&format!(
                "simulate -b blackscholes -n 4 --seed-start {}",
                u64::MAX - 1
            )))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn simulate_stdout_when_no_out() {
        let out = execute(parse(&argv("simulate -b blackscholes -n 2 --noise jitter:0")).unwrap())
            .unwrap();
        assert!(out.starts_with("seed,runtime,"));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn simulate_certain_faults_are_an_error() {
        let err = execute(
            parse(&argv(
                "simulate -b blackscholes -n 3 --noise jitter:0 --retries 0 --fault crash=1.0",
            ))
            .unwrap(),
        )
        .unwrap_err();
        let s = err.to_string();
        assert!(s.contains("all 3 executions"), "{s}");
        assert!(s.contains("crash=3"), "{s}");

        let err = execute(
            parse(&argv(
                "simulate -b blackscholes -n 2 --noise jitter:0 --retries 0 --fault nan=1.0",
            ))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("invalid=2"), "{err}");
    }

    #[test]
    fn simulate_soft_timeout_discards_slow_runs() {
        // A 1 ns budget is always exceeded; every attempt is classified
        // as a timeout and the whole batch fails.
        let err = execute(
            parse(&argv(
                "simulate -b blackscholes -n 2 --noise jitter:0 --retries 0 --timeout 1e-9",
            ))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("timeout=2"), "{err}");
    }

    #[test]
    fn simulate_partial_faults_comment_the_csv() {
        // Deterministic per-seed rolls at p = 0.5 over 40 seeds: some
        // fail, some survive, and the stdout CSV gains a `#` comment.
        let out = execute(
            parse(&argv(
                "simulate -b blackscholes -n 40 --noise jitter:0 --retries 0 --fault crash=0.5",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.starts_with("# failures: "), "{out}");
        assert!(out.contains("abandoned="), "{out}");
        // The comment keeps the output parseable as measurement data.
        let values = crate::data::parse_column(&out, 1).unwrap();
        assert!(!values.is_empty() && values.len() < 40, "{}", values.len());
    }

    #[test]
    fn simulate_retries_recover_failed_seeds() {
        let path = std::env::temp_dir().join("spa_cli_test_retry.csv");
        let _ = std::fs::remove_file(&path);
        // Each retry re-rolls with a derived seed, so 20 retries recover
        // every seed from p = 0.5 crashes while still logging failures.
        let out = execute(
            parse(&argv(&format!(
                "simulate -b blackscholes -n 40 --noise jitter:0 --retries 20 --fault crash=0.5 -o {}",
                path.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("wrote 40 executions"), "{out}");
        assert!(out.contains("failures: "), "{out}");
        assert!(out.contains("retries="), "{out}");
        let csv = std::fs::read_to_string(&path).unwrap();
        assert_eq!(csv.lines().count(), 41);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_reports_skipped_rows() {
        let file = temp_file(
            "spa_cli_test_skipped.txt",
            &format!(
                "value\n{}",
                (0..30)
                    .map(|i| format!("{}\n", 1.0 + 0.01 * f64::from(i)))
                    .collect::<String>()
            ),
        );
        let out = execute(parse(&argv(&format!("analyze {file} -f 0.5"))).unwrap()).unwrap();
        assert!(out.contains("skipped 1 non-numeric rows"), "{out}");
    }

    #[test]
    fn render_metrics_lists_counters_gauges_and_nonempty_buckets() {
        use spa_server::protocol::{TimingBucketReport, TimingReport};
        let mut report = MetricsReport::default();
        report.counters.insert("core.samples.collected".into(), 44);
        report.gauges.insert("server.queue.depth".into(), 0);
        report.timings.push(TimingReport {
            name: "server.job.latency".into(),
            buckets: vec![
                TimingBucketReport {
                    lo_ns: 10_000,
                    hi_ns: 20_000,
                    count: 0,
                },
                TimingBucketReport {
                    lo_ns: 20_000,
                    hi_ns: 40_000,
                    count: 2,
                },
            ],
            underflow: 0,
            overflow: 1,
            total: 2,
            sum_ns: 90_000,
        });
        let out = render_metrics(&report);
        assert!(out.contains("core.samples.collected = 44"), "{out}");
        assert!(out.contains("server.queue.depth = 0"), "{out}");
        assert!(
            out.contains("timing server.job.latency: 3 observations, mean 30µs"),
            "{out}"
        );
        // The empty first bucket is omitted; the populated one is shown.
        assert!(!out.contains("[10µs, 20µs)"), "{out}");
        assert!(out.contains("[20µs, 40µs): 2"), "{out}");
        assert!(out.contains("out of range: 0 under, 1 over"), "{out}");
    }

    #[test]
    fn render_metrics_empty_snapshot_says_so() {
        assert_eq!(
            render_metrics(&MetricsReport::default()),
            "no metrics recorded yet\n"
        );
    }

    #[test]
    fn check_boolean_property_end_to_end() {
        let out = execute(
            parse(&argv(
                "check -b blackscholes -p G[0,end](occupancy>=0) -f 0.5 --noise jitter:0",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("POSITIVE"), "{out}");
        assert!(out.contains("boolean semantics"), "{out}");
        // The formula echoes back in canonical (parsed Display) form.
        assert!(
            out.contains(
                &spa_stl::parser::parse("G[0,end](occupancy>=0)")
                    .unwrap()
                    .to_string()
            ),
            "{out}"
        );
    }

    #[test]
    fn check_json_is_byte_identical_across_thread_counts() {
        let run = |threads: usize| {
            execute(
                parse(&argv(&format!(
                    "check -b blackscholes -p F[0,end](ipc>0.1) --robustness -n 6 \
                     --seed-start 3 -f 0.5 --noise jitter:2 --threads {threads} --json"
                )))
                .unwrap(),
            )
            .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(4), "verdict must not depend on parallelism");
        let v: serde_json::Value = serde_json::from_str(&one).unwrap();
        assert_eq!(v["requested"], 6);
        assert_eq!(v["robustness"], true);
        assert!(v["robustness_interval"].is_object(), "{v}");
        assert!(v["satisfaction_rate"].is_number(), "{v}");
    }

    #[test]
    fn analyze_band_reports_quantiles_and_cvar() {
        let file = sample_file();
        let out = execute(
            parse(&argv(&format!(
                "analyze {file} --band -q 0.5 -q 0.9 --cvar 0.9"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("DKW band"), "{out}");
        assert!(out.contains("q = 0.5"), "{out}");
        assert!(out.contains("q = 0.9"), "{out}");
        assert!(out.contains("CVaR[0.9] upper tail"), "{out}");
        assert!(out.contains("CVaR[0.9] lower tail"), "{out}");
        // n = 30 at C = 0.9 gives eps ≈ 0.22, so the q = 0.9 upper
        // endpoint is unbounded and renders as +inf.
        assert!(out.contains("+inf"), "{out}");
    }

    #[test]
    fn analyze_band_json_round_trips_and_rejects_all_methods() {
        let file = sample_file();
        let out = execute(parse(&argv(&format!("analyze {file} --band --json"))).unwrap()).unwrap();
        let report: spa_core::band::BandReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.samples, 30);
        assert_eq!(report.quantiles.len(), 3); // the default set
        assert!(report.cvar.is_none());
        assert!(report.epsilon > 0.0);

        let err = execute(parse(&argv(&format!("analyze {file} --band --all-methods"))).unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("--all-methods"), "{err}");
    }

    #[test]
    fn analyze_band_has_no_min_sample_floor() {
        // Three samples are far below the Eq. 8 floor of 22, but the
        // band is still valid — just wide (here: fully vacuous).
        let file = temp_file("spa_cli_test_band_tiny.txt", "1.0\n2.0\n3.0\n");
        let out = execute(parse(&argv(&format!("analyze {file} --band"))).unwrap()).unwrap();
        assert!(out.contains("3 samples"), "{out}");
        assert!(out.contains("DKW band"), "{out}");
    }

    #[test]
    fn check_band_end_to_end() {
        let out = execute(
            parse(&argv(
                "check -b blackscholes --quantile 0.99 --cvar 0.95 --noise jitter:0",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("DKW band over blackscholes runtime"), "{out}");
        assert!(out.contains("22 samples"), "{out}");
        assert!(out.contains("q = 0.99"), "{out}");
        assert!(out.contains("CVaR[0.95]"), "{out}");
    }

    #[test]
    fn check_band_json_is_byte_identical_across_thread_counts() {
        let run = |threads: usize| {
            execute(
                parse(&argv(&format!(
                    "check -b blackscholes -q 0.5 --cvar 0.9 -n 12 --seed-start 9 \
                     --noise jitter:2 --threads {threads} --json"
                )))
                .unwrap(),
            )
            .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(4), "band must not depend on parallelism");
        let report: spa_core::band::BandReport = serde_json::from_str(&one).unwrap();
        assert_eq!(report.samples, 12);
        assert_eq!(report.requested, 12);
        assert!(report.failures.is_clean());
    }

    #[test]
    fn check_renders_caret_on_parse_error() {
        let err = execute(parse(&argv("check -b ferret -p G[0,end](ipc>")).unwrap()).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("parse error at byte"), "{s}");
        assert!(s.contains("G[0,end](ipc>"), "{s}");
        assert!(s.contains('^'), "{s}");
    }

    #[test]
    fn parse_error_caret_aligns_under_the_token() {
        let rendered = render_parse_error("G[0,wat] x > 1", 4, 3, "expected a number");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "  G[0,wat] x > 1");
        assert_eq!(lines[2], "      ^^^");
        // A zero-length span (end of input) still gets one caret.
        let rendered = render_parse_error("G[0,", 4, 0, "unexpected end of input");
        assert_eq!(rendered.lines().last().unwrap(), "      ^");
    }

    #[test]
    fn end_to_end_simulate_then_analyze() {
        let path = std::env::temp_dir().join("spa_cli_test_pipe.csv");
        execute(
            parse(&argv(&format!(
                "simulate -b blackscholes -n 22 --threads 2 -o {}",
                path.display()
            )))
            .unwrap(),
        )
        .unwrap();
        // Column 1 is runtime (column 0 is the seed).
        let out = execute(parse(&argv(&format!("analyze {} --column 1", path.display()))).unwrap())
            .unwrap();
        assert!(out.contains("SPA: with 90.0% confidence"), "{out}");
        let _ = std::fs::remove_file(&path);
    }
}
