//! Black-box tests of the compiled `spa` binary.

use std::process::Command;

fn spa_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spa"))
}

fn temp_samples() -> String {
    let path = std::env::temp_dir().join("spa_binary_test_samples.txt");
    let data: String = (0..25)
        .map(|i| format!("{}\n", 1.0 + 0.02 * f64::from(i)))
        .collect();
    std::fs::write(&path, data).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn help_exits_zero() {
    let out = spa_bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn no_args_prints_usage() {
    let out = spa_bin().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_usage_on_stderr() {
    let out = spa_bin().arg("explode").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn analyze_happy_path() {
    let file = temp_samples();
    let out = spa_bin()
        .args(["analyze", &file, "--proportion", "0.5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SPA: with 90.0% confidence"), "{text}");
}

#[test]
fn analyze_missing_file_fails_cleanly() {
    let out = spa_bin()
        .args(["analyze", "/definitely/not/a/file.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("spa:"));
}

#[test]
fn min_samples_matches_paper() {
    let out = spa_bin()
        .args(["min-samples", "-c", "0.9", "-f", "0.9"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("22"));
}

#[test]
fn simulate_pipes_into_analyze() {
    let csv = std::env::temp_dir().join("spa_binary_test_population.csv");
    let out = spa_bin()
        .args([
            "simulate",
            "--benchmark",
            "blackscholes",
            "--runs",
            "22",
            "--threads",
            "2",
            "--out",
            &csv.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = spa_bin()
        .args(["analyze", &csv.to_string_lossy(), "--column", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("confidence"));
    let _ = std::fs::remove_file(csv);
}
