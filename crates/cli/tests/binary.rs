//! Black-box tests of the compiled `spa` binary.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn spa_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spa"))
}

fn temp_samples() -> String {
    let path = std::env::temp_dir().join("spa_binary_test_samples.txt");
    let data: String = (0..25)
        .map(|i| format!("{}\n", 1.0 + 0.02 * f64::from(i)))
        .collect();
    std::fs::write(&path, data).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn help_exits_zero() {
    let out = spa_bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn no_args_prints_usage() {
    let out = spa_bin().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_usage_on_stderr() {
    let out = spa_bin().arg("explode").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn analyze_happy_path() {
    let file = temp_samples();
    let out = spa_bin()
        .args(["analyze", &file, "--proportion", "0.5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SPA: with 90.0% confidence"), "{text}");
}

#[test]
fn analyze_missing_file_fails_cleanly() {
    let out = spa_bin()
        .args(["analyze", "/definitely/not/a/file.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("spa:"));
}

#[test]
fn min_samples_matches_paper() {
    let out = spa_bin()
        .args(["min-samples", "-c", "0.9", "-f", "0.9"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("22"));
}

#[test]
fn simulate_pipes_into_analyze() {
    let csv = std::env::temp_dir().join("spa_binary_test_population.csv");
    let out = spa_bin()
        .args([
            "simulate",
            "--benchmark",
            "blackscholes",
            "--runs",
            "22",
            "--threads",
            "2",
            "--out",
            &csv.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = spa_bin()
        .args(["analyze", &csv.to_string_lossy(), "--column", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("confidence"));
    let _ = std::fs::remove_file(csv);
}

#[test]
fn analyze_json_is_machine_readable() {
    let file = temp_samples();
    let out = spa_bin()
        .args(["analyze", &file, "--proportion", "0.5", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["samples"].as_array().unwrap().len(), 25);
    assert!(v["interval"].is_object(), "{v}");
}

/// Starts `spa serve` on an ephemeral port and scrapes the announced
/// address from its first stdout line.
fn spawn_server() -> (Child, String) {
    let mut child = spa_bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut first = String::new();
    BufReader::new(stdout).read_line(&mut first).unwrap();
    let addr = first
        .split("listening on ")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in {first:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    (child, addr)
}

fn wait_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if child.try_wait().unwrap().is_some() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    panic!("server did not exit after shutdown");
}

#[test]
fn serve_submit_shutdown_end_to_end() {
    let (mut server, addr) = spawn_server();

    // First submission executes and returns a well-formed JSON report.
    let submit = |extra: &[&str]| {
        spa_bin()
            .args([
                "submit",
                "-a",
                &addr,
                "-b",
                "blackscholes",
                "--noise",
                "jitter:2",
                "--seed-start",
                "43000",
                "--json",
            ])
            .args(extra)
            .output()
            .unwrap()
    };
    let out = submit(&[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["kind"], "interval");
    let report = &v["report"];
    assert_eq!(report["samples"].as_array().unwrap().len(), 22);
    assert!(report["interval"].is_object(), "{v}");
    assert_eq!(report["degraded"], false);

    // The identical resubmission is answered from the result cache.
    let out = submit(&[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let again: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(again, v, "cached report must be identical");

    let out = spa_bin().args(["status", "-a", &addr]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 executed"), "{text}");
    assert!(text.contains("1 cache hits"), "{text}");

    let out = spa_bin().args(["shutdown", "-a", &addr]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    wait_exit(&mut server);
}
