//! Property tests for the timing histogram's accounting invariants:
//! every observation is counted exactly once, either in a bucket or in
//! one of the out-of-range tallies.

use std::time::Duration;

use proptest::prelude::*;
use spa_obs::timing::TimingHistogram;

proptest! {
    /// `total() == observed() - underflow() - overflow()` for any mix of
    /// in-range and out-of-range observations, any histogram shape.
    #[test]
    fn totals_account_for_every_observation(
        lo_ns in 1u64..1_000_000,
        span_factor in 2u64..10_000,
        buckets in 1usize..64,
        samples in proptest::collection::vec(0u64..10_000_000_000, 0..200),
    ) {
        let hi_ns = lo_ns.saturating_mul(span_factor);
        let h = TimingHistogram::new(
            Duration::from_nanos(lo_ns),
            Duration::from_nanos(hi_ns),
            buckets,
        );
        let mut expect_under = 0u64;
        let mut expect_over = 0u64;
        let mut expect_in = 0u64;
        for &ns in &samples {
            h.record_ns(ns);
            if ns < lo_ns {
                expect_under += 1;
            } else if ns >= hi_ns {
                expect_over += 1;
            } else {
                expect_in += 1;
            }
        }
        prop_assert_eq!(h.observed(), samples.len() as u64);
        prop_assert_eq!(h.underflow(), expect_under);
        prop_assert_eq!(h.overflow(), expect_over);
        prop_assert_eq!(h.total(), expect_in);
        prop_assert_eq!(h.total(), h.observed() - h.underflow() - h.overflow());

        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), snap.total);
        prop_assert_eq!(snap.total, snap.observed() - snap.underflow - snap.overflow);
    }

    /// Every in-range observation lands in a bucket whose bounds contain
    /// it (up to the rounding applied when bounds are materialized).
    #[test]
    fn buckets_tile_without_gaps(
        lo_ns in 1u64..1_000,
        span_factor in 2u64..100_000,
        buckets in 1usize..48,
    ) {
        let hi_ns = lo_ns.saturating_mul(span_factor);
        let h = TimingHistogram::new(
            Duration::from_nanos(lo_ns),
            Duration::from_nanos(hi_ns),
            buckets,
        );
        let (first_lo, _) = h.bucket_bounds(0);
        let (_, last_hi) = h.bucket_bounds(buckets - 1);
        prop_assert_eq!(first_lo, lo_ns);
        prop_assert_eq!(last_hi, hi_ns);
        for i in 1..buckets {
            let (_, prev_hi) = h.bucket_bounds(i - 1);
            let (lo, hi) = h.bucket_bounds(i);
            prop_assert_eq!(prev_hi, lo);
            prop_assert!(hi > lo);
        }
    }
}
