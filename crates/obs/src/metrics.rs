//! Named atomic counters, gauges, and latency histograms.
//!
//! A [`MetricsRegistry`] is a map from static names to shared handles.
//! Handles are `Arc`s: look one up once (registration is a write-locked
//! map insert), then record through it with relaxed atomic operations —
//! the hot path never touches the map. [`snapshot`](MetricsRegistry::snapshot)
//! copies everything into plain data for display or wire encoding.
//!
//! The process-global registry behind [`global`] lets deep layers (e.g.
//! `spa-core`'s sampling loops) record events without any plumbing;
//! components with their own lifecycle (e.g. one `spa-server` instance)
//! can keep a private registry and merge snapshots at the edge.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::timing::{TimingHistogram, TimingSnapshot};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, in-flight jobs, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (possibly negative) to the gauge.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named [`Counter`]s, [`Gauge`]s, and
/// [`TimingHistogram`]s.
///
/// Lookups are get-or-create and return shared handles; two lookups of
/// the same name observe the same underlying atomic. Names should follow
/// the dot-separated taxonomy used across the stack (e.g.
/// `"core.samples.collected"`, `"server.job.latency"`).
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    timings: RwLock<BTreeMap<&'static str, Arc<TimingHistogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry. `const` so a registry can live in a
    /// `static` without lazy initialization.
    pub const fn new() -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            timings: RwLock::new(BTreeMap::new()),
        }
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = read(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(write(&self.counters).entry(name).or_default())
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = read(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(write(&self.gauges).entry(name).or_default())
    }

    /// The timing histogram registered under `name`, created on first
    /// use with range `[lo, hi)` and `buckets` log-spaced buckets. The
    /// shape parameters of an already-registered histogram win; callers
    /// are expected to use one shape per name.
    pub fn timing(
        &self,
        name: &'static str,
        lo: Duration,
        hi: Duration,
        buckets: usize,
    ) -> Arc<TimingHistogram> {
        if let Some(t) = read(&self.timings).get(name) {
            return Arc::clone(t);
        }
        Arc::clone(
            write(&self.timings)
                .entry(name)
                .or_insert_with(|| Arc::new(TimingHistogram::new(lo, hi, buckets))),
        )
    }

    /// A point-in-time copy of every registered metric. Concurrent
    /// recordings may or may not be included; each individual value is
    /// internally consistent.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: read(&self.counters)
                .iter()
                .map(|(name, c)| (name.to_string(), c.get()))
                .collect(),
            gauges: read(&self.gauges)
                .iter()
                .map(|(name, g)| (name.to_string(), g.get()))
                .collect(),
            timings: read(&self.timings)
                .iter()
                .map(|(name, t)| (name.to_string(), t.snapshot()))
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-global registry, used by instrumentation too deep to be
/// handed a registry explicitly.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// A point-in-time copy of a registry — plain data, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// Timing histogram snapshots, ascending by name.
    pub timings: Vec<(String, TimingSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The snapshot of timing histogram `name`, if registered.
    pub fn timing(&self, name: &str) -> Option<&TimingSnapshot> {
        self.timings.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Merges two snapshots into one, preserving name order. On a name
    /// collision `other`'s entry wins — callers namespace their metrics
    /// (`core.*` vs `server.*`) so collisions indicate a taxonomy bug.
    pub fn merged(self, other: MetricsSnapshot) -> MetricsSnapshot {
        fn merge<V>(a: Vec<(String, V)>, b: Vec<(String, V)>) -> Vec<(String, V)> {
            let mut map: BTreeMap<String, V> = a.into_iter().collect();
            map.extend(b);
            map.into_iter().collect()
        }
        MetricsSnapshot {
            counters: merge(self.counters, other.counters),
            gauges: merge(self.gauges, other.gauges),
            timings: merge(self.timings, other.timings),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_return_the_same_underlying_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("test.same");
        let b = reg.counter("test.same");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(2);
        b.incr();
        assert_eq!(reg.counter("test.same").get(), 3);

        let g1 = reg.gauge("test.level");
        let g2 = reg.gauge("test.level");
        assert!(Arc::ptr_eq(&g1, &g2));
        g1.set(10);
        g2.sub(4);
        assert_eq!(reg.gauge("test.level").get(), 6);
    }

    #[test]
    fn counters_are_atomic_under_contention() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = &reg;
                scope.spawn(move || {
                    let c = reg.counter("test.contended");
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(reg.counter("test.contended").get(), 80_000);
    }

    #[test]
    fn timing_shape_is_fixed_by_first_registration() {
        let reg = MetricsRegistry::new();
        let t1 = reg.timing(
            "test.lat",
            Duration::from_nanos(100),
            Duration::from_secs(1),
            8,
        );
        let t2 = reg.timing(
            "test.lat",
            Duration::from_nanos(1),
            Duration::from_secs(9),
            99,
        );
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t2.bucket_count(), 8);
    }

    #[test]
    fn snapshot_reflects_recorded_values() {
        let reg = MetricsRegistry::new();
        reg.counter("test.snap.events").add(7);
        reg.gauge("test.snap.depth").set(-2);
        reg.timing(
            "test.snap.lat",
            Duration::from_micros(1),
            Duration::from_secs(1),
            4,
        )
        .record(Duration::from_millis(1));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("test.snap.events"), Some(7));
        assert_eq!(snap.gauge("test.snap.depth"), Some(-2));
        assert_eq!(snap.timing("test.snap.lat").unwrap().total, 1);
        assert_eq!(snap.counter("test.unregistered"), None);
        assert_eq!(snap.gauge("test.unregistered"), None);
        assert!(snap.timing("test.unregistered").is_none());
    }

    #[test]
    fn snapshots_are_sorted_and_merge_with_other_winning() {
        let a = MetricsRegistry::new();
        a.counter("alpha").add(1);
        a.counter("shared").add(10);
        let b = MetricsRegistry::new();
        b.counter("zeta").add(2);
        b.counter("shared").add(99);

        let merged = a.snapshot().merged(b.snapshot());
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "shared", "zeta"]);
        assert_eq!(merged.counter("shared"), Some(99));
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("test.global.shared");
        let before = c.get();
        global().counter("test.global.shared").add(5);
        assert_eq!(c.get(), before + 5);
        assert!(global().snapshot().counter("test.global.shared").unwrap() >= 5);
    }
}
