//! Lightweight tracing and metrics for the SPA stack.
//!
//! The ROADMAP's north star — a production-scale evaluation service —
//! is unreachable blind: retry storms, cache misses, and round-fold
//! stalls are invisible without instrumentation, and the perf trajectory
//! cannot improve what it cannot measure. This crate provides the
//! measurement substrate, deliberately tiny and **std-only** so any
//! layer of the stack (down to `spa-core`'s hot loops) can depend on it
//! without dragging in external crates.
//!
//! Three pieces:
//!
//! * [`span::Span`] / [`span!`] — scoped wall-clock timers reported to a
//!   process-global [`span::Subscriber`] when one is installed. With no
//!   subscriber (the default) a span costs a relaxed atomic load and a
//!   clock read; it never allocates and never blocks.
//! * [`metrics::MetricsRegistry`] — named atomic [`metrics::Counter`]s
//!   and [`metrics::Gauge`]s plus latency [`timing::TimingHistogram`]s,
//!   snapshotted into plain data ([`metrics::MetricsSnapshot`]) for
//!   display or wire encoding. A process-global registry
//!   ([`metrics::global`]) lets deep layers record without plumbing.
//! * [`timing::TimingHistogram`] — a log-bucketed, lock-free latency
//!   histogram following the same out-of-range discipline as the fixed
//!   `spa_stats::Histogram`: values outside `[lo, hi)` are tallied in
//!   separate underflow/overflow counters, never folded into edge
//!   buckets.
//!
//! Instrumentation built on this crate is **verdict-neutral** by
//! construction: nothing here feeds back into the statistics. Spans
//! observe time, counters observe events, and neither is consulted by
//! any sampling or stopping decision.
//!
//! # Examples
//!
//! ```
//! use spa_obs::metrics::global;
//! use spa_obs::span;
//!
//! let _span = span!("doc.example");
//! global().counter("doc.events").add(3);
//! assert!(global().snapshot().counter("doc.events").unwrap_or(0) >= 3);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod span;
pub mod timing;

pub use metrics::{global, Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use span::{
    clear_subscriber, set_subscriber, subscriber_active, CollectingSubscriber, NoopSubscriber,
    Span, SpanRecord, StderrSubscriber, Subscriber,
};
pub use timing::{TimingBucket, TimingHistogram, TimingSnapshot};

/// Opens a [`Span`] that closes (and reports) when the returned guard is
/// dropped.
///
/// # Examples
///
/// ```
/// let _guard = spa_obs::span!("ci.search");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}
