//! Scoped timing spans and the process-global subscriber.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop and reports the result to the installed [`Subscriber`], if any.
//! Nesting depth is tracked per thread, so a human-readable subscriber
//! (e.g. [`StderrSubscriber`], behind `spa --trace`) can indent child
//! spans under their parents.
//!
//! The global-subscriber design keeps instrumentation call sites free of
//! plumbing: `spa-core` opens spans without knowing whether anyone
//! listens. When nobody does — the default — a span is a relaxed atomic
//! load plus one `Instant::now()`; no allocation, no locking.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A finished span, delivered to [`Subscriber::span_closed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The name given to [`Span::enter`] (dot-separated taxonomy, e.g.
    /// `"spa.collect_samples"`).
    pub name: &'static str,
    /// Nesting depth on the opening thread (0 = top level).
    pub depth: usize,
    /// Wall-clock time between enter and drop.
    pub elapsed: Duration,
}

/// Receives closed spans. Implementations must be cheap and must never
/// panic; they run inside `Drop`.
pub trait Subscriber: Send + Sync {
    /// Called once per closed span, on the thread that opened it.
    fn span_closed(&self, record: &SpanRecord);
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Installs `subscriber` as the process-global span sink, replacing any
/// previous one.
pub fn set_subscriber(subscriber: Arc<dyn Subscriber>) {
    *SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner()) = Some(subscriber);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the global subscriber; spans go back to being (almost) free.
pub fn clear_subscriber() {
    ACTIVE.store(false, Ordering::Release);
    *SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a subscriber is currently installed.
pub fn subscriber_active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// A scoped wall-clock timer; construct with [`Span::enter`] or the
/// [`span!`](crate::span!) macro and let it drop at the end of the
/// region of interest.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    depth: usize,
    armed: bool,
}

impl Span {
    /// Opens a span. The subscriber decision is made here: a span opened
    /// while no subscriber is installed stays silent even if one is
    /// installed before it closes (and vice versa, closing is a no-op if
    /// the subscriber disappeared in between).
    pub fn enter(name: &'static str) -> Self {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Self {
            name,
            start: Instant::now(),
            depth,
            armed: ACTIVE.load(Ordering::Acquire),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Time elapsed since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if !self.armed {
            return;
        }
        let guard = SUBSCRIBER.read().unwrap_or_else(|e| e.into_inner());
        if let Some(subscriber) = guard.as_ref() {
            subscriber.span_closed(&SpanRecord {
                name: self.name,
                depth: self.depth,
                elapsed: self.start.elapsed(),
            });
        }
    }
}

/// Discards every record. Installing this (rather than no subscriber)
/// exercises the full reporting path while keeping output silent — the
/// configuration under which instrumented runs must be byte-identical
/// to uninstrumented ones.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn span_closed(&self, _record: &SpanRecord) {}
}

/// Writes one human-readable line per closed span to stderr, indented by
/// nesting depth — the `spa --trace` sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn span_closed(&self, record: &SpanRecord) {
        let indent = "  ".repeat(record.depth.min(16));
        eprintln!("[trace] {indent}{} {:?}", record.name, record.elapsed);
    }
}

/// Buffers every record for later inspection — the test sink.
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<SpanRecord>>,
}

impl CollectingSubscriber {
    /// Creates an empty collector, ready for [`set_subscriber`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A copy of the records collected so far, in close order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drains and returns the collected records.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Subscriber for CollectingSubscriber {
    fn span_closed(&self, record: &SpanRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(*record);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::Mutex;

    /// Global-subscriber tests must not interleave; every test touching
    /// the global subscriber holds this lock.
    pub static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    /// Lock that survives a poisoned mutex (a failed test elsewhere).
    pub fn lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsubscribed_spans_are_silent_and_cheap() {
        let _guard = test_support::lock();
        clear_subscriber();
        assert!(!subscriber_active());
        let span = Span::enter("test.silent");
        assert_eq!(span.name(), "test.silent");
        drop(span); // must not panic or deadlock
    }

    #[test]
    fn nesting_depth_is_tracked_per_thread() {
        let _guard = test_support::lock();
        let collector = CollectingSubscriber::new();
        set_subscriber(collector.clone());
        {
            let _outer = Span::enter("test.outer");
            {
                let _inner = Span::enter("test.inner");
                let _innermost = Span::enter("test.innermost");
            }
        }
        clear_subscriber();
        let records = collector.take();
        let depth = |name: &str| {
            records
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("span {name} not recorded"))
                .depth
        };
        assert_eq!(depth("test.outer"), 0);
        assert_eq!(depth("test.inner"), 1);
        assert_eq!(depth("test.innermost"), 2);
        // Spans close innermost-first.
        assert_eq!(records.last().unwrap().name, "test.outer");
    }

    #[test]
    fn elapsed_time_is_monotone_with_nesting() {
        let _guard = test_support::lock();
        let collector = CollectingSubscriber::new();
        set_subscriber(collector.clone());
        {
            let _outer = Span::enter("test.mono.outer");
            let _inner = Span::enter("test.mono.inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        clear_subscriber();
        let records = collector.take();
        let elapsed = |name: &str| {
            records
                .iter()
                .find(|r| r.name == name)
                .expect("span recorded")
                .elapsed
        };
        // The outer span contains the inner one, so its elapsed time can
        // only be larger or equal.
        assert!(elapsed("test.mono.outer") >= elapsed("test.mono.inner"));
        assert!(elapsed("test.mono.inner") >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn subscriber_installed_after_enter_sees_nothing() {
        let _guard = test_support::lock();
        clear_subscriber();
        let span = Span::enter("test.late");
        let collector = CollectingSubscriber::new();
        set_subscriber(collector.clone());
        drop(span);
        clear_subscriber();
        assert!(collector.take().is_empty(), "unarmed span must stay silent");
    }

    #[test]
    fn spans_report_from_many_threads() {
        let _guard = test_support::lock();
        let collector = CollectingSubscriber::new();
        set_subscriber(collector.clone());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _span = Span::enter("test.threaded");
                });
            }
        });
        clear_subscriber();
        let records = collector.take();
        assert_eq!(records.len(), 8);
        // Each thread starts at depth 0.
        assert!(records.iter().all(|r| r.depth == 0));
    }
}
