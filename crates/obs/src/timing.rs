//! Lock-free log-bucketed latency histograms.
//!
//! Latencies span orders of magnitude — a cache hit answers in
//! microseconds, a 1.15M-sample interval job in minutes — so buckets are
//! spaced geometrically between a configured `[lo, hi)` range.
//! Recording is a couple of relaxed atomic adds; snapshots are taken
//! without stopping writers.
//!
//! Out-of-range observations follow the same discipline as the fixed
//! `spa_stats::Histogram`: they are tallied in dedicated underflow and
//! overflow counters and **never** folded into the edge buckets, so the
//! bucket profile describes only in-range latencies and
//! `total() == observed() - underflow() - overflow()` always holds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One bucket of a [`TimingSnapshot`]: the half-open nanosecond range
/// `[lo_ns, hi_ns)` and the number of observations that fell inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingBucket {
    /// Inclusive lower bound, nanoseconds.
    pub lo_ns: u64,
    /// Exclusive upper bound, nanoseconds.
    pub hi_ns: u64,
    /// Observations recorded into this bucket.
    pub count: u64,
}

/// A point-in-time copy of a [`TimingHistogram`] — plain data, safe to
/// ship across threads or encode for the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// Buckets in ascending latency order.
    pub buckets: Vec<TimingBucket>,
    /// Observations below the configured range.
    pub underflow: u64,
    /// Observations at or above the configured range.
    pub overflow: u64,
    /// In-range observations (the sum of all bucket counts).
    pub total: u64,
    /// Sum of **all** observed latencies in nanoseconds, in-range or
    /// not.
    pub sum_ns: u64,
}

impl TimingSnapshot {
    /// Total number of observations ever recorded:
    /// `total + underflow + overflow`.
    pub fn observed(&self) -> u64 {
        self.total + self.underflow + self.overflow
    }

    /// Mean observed latency in nanoseconds (over all observations),
    /// or `None` before the first observation.
    pub fn mean_ns(&self) -> Option<f64> {
        let n = self.observed();
        if n == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / n as f64)
        }
    }
}

/// A thread-safe latency histogram with geometrically spaced buckets
/// over `[lo, hi)` and separate under/overflow tallies.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use spa_obs::timing::TimingHistogram;
///
/// let h = TimingHistogram::new(Duration::from_micros(1), Duration::from_secs(1), 24);
/// h.record(Duration::from_millis(3));
/// h.record(Duration::from_nanos(10)); // below range
/// assert_eq!(h.total(), 1);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.snapshot().observed(), 2);
/// ```
#[derive(Debug)]
pub struct TimingHistogram {
    lo_ns: u64,
    hi_ns: u64,
    /// Precomputed `buckets / ln(hi / lo)` so recording needs a single
    /// `ln`.
    scale: f64,
    buckets: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    sum_ns: AtomicU64,
}

impl TimingHistogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` geometrically
    /// spaced buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`, `lo` is zero, or `hi <= lo` (a log
    /// scale needs a strictly positive, non-empty range).
    pub fn new(lo: Duration, hi: Duration, buckets: usize) -> Self {
        assert!(buckets > 0, "timing histogram needs at least one bucket");
        let lo_ns = duration_ns(lo);
        let hi_ns = duration_ns(hi);
        assert!(
            lo_ns > 0 && hi_ns > lo_ns,
            "timing histogram range must be positive and non-empty"
        );
        let scale = buckets as f64 / (hi_ns as f64 / lo_ns as f64).ln();
        Self {
            lo_ns,
            hi_ns,
            scale,
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        self.record_ns(duration_ns(latency));
    }

    /// Records one latency observation given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if ns < self.lo_ns {
            self.underflow.fetch_add(1, Ordering::Relaxed);
        } else if ns >= self.hi_ns {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = ((ns as f64 / self.lo_ns as f64).ln() * self.scale) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The half-open nanosecond range `[lo_ns, hi_ns)` of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bucket_bounds(&self, i: usize) -> (u64, u64) {
        assert!(i < self.buckets.len(), "bucket index out of range");
        let n = self.buckets.len() as f64;
        let ratio = self.hi_ns as f64 / self.lo_ns as f64;
        let lo = self.lo_ns as f64 * ratio.powf(i as f64 / n);
        let hi = if i + 1 == self.buckets.len() {
            self.hi_ns as f64
        } else {
            self.lo_ns as f64 * ratio.powf((i as f64 + 1.0) / n)
        };
        (lo.round() as u64, hi.round() as u64)
    }

    /// In-range observations (the sum of all bucket counts), consistent
    /// with `spa_stats::Histogram::total`.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Observations below the configured range.
    pub fn underflow(&self) -> u64 {
        self.underflow.load(Ordering::Relaxed)
    }

    /// Observations at or above the configured range.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Total number of observations ever recorded, in-range or not.
    pub fn observed(&self) -> u64 {
        self.total() + self.underflow() + self.overflow()
    }

    /// A point-in-time copy of the histogram. Taken without stopping
    /// writers: concurrent recordings may or may not be included, but
    /// `total` always equals the sum of the snapshot's bucket counts.
    pub fn snapshot(&self) -> TimingSnapshot {
        let buckets: Vec<TimingBucket> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let (lo_ns, hi_ns) = self.bucket_bounds(i);
                TimingBucket {
                    lo_ns,
                    hi_ns,
                    count: b.load(Ordering::Relaxed),
                }
            })
            .collect();
        let total = buckets.iter().map(|b| b.count).sum();
        TimingSnapshot {
            buckets,
            underflow: self.underflow(),
            overflow: self.overflow(),
            total,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Duration → u64 nanoseconds, saturating (584 years overflows u64).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> TimingHistogram {
        TimingHistogram::new(Duration::from_micros(1), Duration::from_secs(1), 20)
    }

    #[test]
    fn in_range_observations_land_in_ascending_buckets() {
        let h = hist();
        h.record(Duration::from_micros(2));
        h.record(Duration::from_millis(5));
        h.record(Duration::from_millis(800));
        let snap = h.snapshot();
        assert_eq!(snap.total, 3);
        let occupied: Vec<usize> = snap
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(occupied.len(), 3, "{occupied:?}");
        assert!(occupied.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn out_of_range_goes_to_under_and_overflow() {
        let h = hist();
        h.record(Duration::from_nanos(5)); // below 1 µs
        h.record(Duration::from_secs(10)); // above 1 s
        h.record(Duration::from_secs(1)); // hi itself is exclusive
        h.record(Duration::from_millis(1));
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 1);
        assert_eq!(h.observed(), 4);
        let snap = h.snapshot();
        assert_eq!(snap.observed(), 4);
        assert_eq!(snap.total, snap.observed() - snap.underflow - snap.overflow);
        // Edge buckets are untouched by out-of-range values.
        assert_eq!(snap.buckets.first().unwrap().count, 0);
        assert_eq!(snap.buckets.last().unwrap().count, 0);
    }

    #[test]
    fn bucket_bounds_tile_the_range() {
        let h = hist();
        let n = h.bucket_count();
        let (first_lo, _) = h.bucket_bounds(0);
        let (_, last_hi) = h.bucket_bounds(n - 1);
        assert_eq!(first_lo, 1_000);
        assert_eq!(last_hi, 1_000_000_000);
        for i in 1..n {
            let (_, prev_hi) = h.bucket_bounds(i - 1);
            let (lo, hi) = h.bucket_bounds(i);
            assert_eq!(prev_hi, lo, "buckets must tile without gaps");
            assert!(hi > lo);
        }
    }

    #[test]
    fn boundary_values_respect_half_open_buckets() {
        // lo itself is in-range (bucket 0); every recorded in-range value
        // must land in the bucket whose bounds contain it.
        let h = TimingHistogram::new(Duration::from_nanos(100), Duration::from_nanos(100_000), 12);
        for ns in [100u64, 101, 999, 1_000, 50_000, 99_999] {
            h.record_ns(ns);
        }
        assert_eq!(h.total(), 6);
        let snap = h.snapshot();
        for b in snap.buckets.iter().filter(|b| b.count > 0) {
            assert!(b.lo_ns < b.hi_ns);
        }
        // Sum of in-bucket counts matches total.
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 6);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = TimingHistogram::new(Duration::from_nanos(10), Duration::from_micros(10), 16);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        // Mix of in-range, underflow, and overflow.
                        h.record_ns(1 + (i * 7 + t * 13) % 20_000);
                    }
                });
            }
        });
        assert_eq!(h.observed(), 8 * 1000);
        assert_eq!(h.observed(), h.total() + h.underflow() + h.overflow());
    }

    #[test]
    fn mean_tracks_all_observations() {
        let h = hist();
        assert_eq!(h.snapshot().mean_ns(), None);
        h.record_ns(1_000);
        h.record_ns(3_000);
        assert_eq!(h.snapshot().mean_ns(), Some(2_000.0));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = TimingHistogram::new(Duration::from_nanos(1), Duration::from_secs(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive and non-empty")]
    fn zero_lo_panics() {
        let _ = TimingHistogram::new(Duration::ZERO, Duration::from_secs(1), 4);
    }

    #[test]
    #[should_panic(expected = "positive and non-empty")]
    fn inverted_range_panics() {
        let _ = TimingHistogram::new(Duration::from_secs(2), Duration::from_secs(1), 4);
    }
}
