//! PR 6 bench: the durable result store's cost on the submit path.
//!
//! A plain `main` (no criterion) so the CI bench-smoke job can run it in
//! seconds: `cargo bench -p spa-server --bench pr6_durability`. Starts
//! two live servers — one in-memory, one journaling to a scratch state
//! directory — drives the same cold-seed interval workload through
//! each over real TCP, and reports the journal's submit-path overhead
//! ratio plus a raw append microbenchmark. Emits `BENCH_pr6.json` at
//! the workspace root; CI floors the ratio at 1.10.
//!
//! The two modes use disjoint seed ranges (900_xxx vs 901_xxx) so the
//! shared on-disk population cache cannot turn one mode's sampling into
//! the other's cache hit and skew the ratio.

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::Serialize;
use spa_core::property::Direction;
use spa_server::client;
use spa_server::spec::{JobSpec, ModeSpec, NoiseSpec};
use spa_server::store::DurableStore;
use spa_server::{start, JobResult, ServerConfig};

/// Submits per mode; enough to average out scheduler noise while
/// keeping the bench inside CI's smoke budget.
const SUBMITS: u64 = 8;
/// Records in the raw append microbenchmark.
const APPENDS: u64 = 256;

#[derive(Serialize)]
struct Pr6Report {
    submits_per_mode: u64,
    journal_off_mean_ms: f64,
    journal_on_mean_ms: f64,
    /// journal-on / journal-off submit latency; 1.0 = free.
    overhead_ratio: f64,
    append_records: u64,
    append_mean_us: f64,
}

fn spec(seed_start: u64) -> JobSpec {
    JobSpec {
        noise: NoiseSpec::Jitter { max_cycles: 2 },
        seed_start,
        round_size: 8,
        ..JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    }
}

/// Mean wall-clock milliseconds per submit against `config`, one fresh
/// job per cold seed so every submit samples rather than hitting the
/// result cache.
fn measure_mode(config: ServerConfig, seed_base: u64) -> (f64, JobResult) {
    let handle = start(config).expect("start server");
    let addr = handle.addr().to_string();
    let mut total_ms = 0.0;
    let mut last = None;
    for i in 0..SUBMITS {
        let spec = spec(seed_base + i * 100);
        let begin = Instant::now();
        let outcome = client::submit(&addr, &spec, |_| {}).expect("submit");
        total_ms += begin.elapsed().as_secs_f64() * 1e3;
        assert!(!outcome.cached, "bench seeds must be cold");
        last = Some(outcome.result);
    }
    handle.shutdown();
    (
        total_ms / SUBMITS as f64,
        last.expect("at least one submit"),
    )
}

/// Mean microseconds per raw journal append of a representative result.
fn measure_append(dir: &Path, sample: &JobResult) -> f64 {
    let (mut store, _, _) = DurableStore::open(dir).expect("open store");
    let begin = Instant::now();
    for i in 0..APPENDS {
        store
            .append(&format!("bench-key-{i}"), sample)
            .expect("append");
    }
    begin.elapsed().as_secs_f64() * 1e6 / APPENDS as f64
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spa-bench-pr6-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        job_threads: 2,
        ..ServerConfig::default()
    }
}

fn main() {
    let (off_ms, _) = measure_mode(config(), 900_000);

    let state = scratch("state");
    let (on_ms, sample) = measure_mode(
        ServerConfig {
            state_dir: Some(state.clone()),
            ..config()
        },
        901_000,
    );
    let _ = std::fs::remove_dir_all(&state);

    let append_dir = scratch("append");
    let append_us = measure_append(&append_dir, &sample);
    let _ = std::fs::remove_dir_all(&append_dir);

    let report = Pr6Report {
        submits_per_mode: SUBMITS,
        journal_off_mean_ms: off_ms,
        journal_on_mean_ms: on_ms,
        overhead_ratio: on_ms / off_ms,
        append_records: APPENDS,
        append_mean_us: append_us,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr6.json");
    let mut text = serde_json::to_string_pretty(&report).expect("report serializes");
    text.push('\n');
    std::fs::write(&path, text).expect("write BENCH_pr6.json");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!("wrote {}", path.display());
}
