//! The JSON-lines wire protocol.
//!
//! One message per line, each a single JSON object tagged by `type`.
//! A client sends a [`Request`]; the server answers with one or more
//! [`Response`] lines. `submit` and `watch` are the streaming
//! exchanges: the server acknowledges with `accepted` (or `rejected`),
//! emits zero or more `progress` events as rounds of samples land, and
//! terminates the exchange with exactly one `report` or `failed`.
//! Reports round-trip through the same serde types the library uses
//! (`SpaReport`, `RoundsOutcome`, `AnytimeReport`), so a CLI client
//! deserializes straight into the types a direct `Spa::run` would have
//! produced.
//!
//! **Back-compat:** fields added for streaming jobs — `interval` on
//! `progress`, `streaming` on `status` — carry `#[serde(default)]` and
//! are skipped when empty, so an old client and a new server (or vice
//! versa) interoperate on the fixed-`N` modes byte for byte.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use spa_core::band::BandReport;
use spa_core::rounds::RoundsOutcome;
use spa_core::seq::AnytimeReport;
use spa_core::spa::SpaReport;
use spa_obs::{MetricsSnapshot, TimingSnapshot};

use crate::spec::JobSpec;
use crate::ServerError;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// Submit a job for evaluation.
    Submit {
        /// The job to run.
        spec: JobSpec,
    },
    /// Attach to a running (or finished) job and stream its progress
    /// to the terminal report, live — the `spa watch` verb.
    Watch {
        /// Server-assigned job id (from [`Response::Accepted`]).
        job: u64,
    },
    /// Ask for the server's counters.
    Status,
    /// Ask for the full metrics snapshot (server registry merged with
    /// the engine's process-global registry).
    Metrics,
    /// Begin a graceful drain-then-exit shutdown.
    Shutdown,
}

/// Why a submission was declined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RejectReason {
    /// The bounded job queue is at capacity — backpressure; retry later.
    QueueFull {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The spec failed validation.
    InvalidSpec {
        /// What was wrong with it.
        detail: String,
    },
    /// This client already has its quota of in-flight streamed
    /// submissions — admission control beside `queue_full`; retry after
    /// one finishes.
    QuotaExceeded {
        /// The configured per-client in-flight limit.
        limit: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth } => {
                write!(f, "queue full (depth {depth})")
            }
            RejectReason::ShuttingDown => f.write_str("server is shutting down"),
            RejectReason::InvalidSpec { detail } => write!(f, "invalid spec: {detail}"),
            RejectReason::QuotaExceeded { limit } => {
                write!(f, "per-client in-flight quota exceeded (limit {limit})")
            }
        }
    }
}

/// A finished job's payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JobResult {
    /// An interval-mode job: the full SPA report.
    Interval {
        /// The report, byte-identical to a direct `Spa::run` with the
        /// same seed partitioning.
        report: SpaReport,
    },
    /// A hypothesis-mode job: the round-aggregated sequential outcome.
    Hypothesis {
        /// Verdict (or round-budget exhaustion) plus sample accounting.
        outcome: RoundsOutcome,
    },
    /// A property-mode job: the trace-to-verdict check report.
    Property {
        /// The report, identical to what a direct
        /// [`spa_sim::check::run_check`] over the same seed stream
        /// produces.
        report: spa_sim::check::PropertyReport,
    },
    /// A streaming-mode job: the anytime-valid terminal report.
    Streaming {
        /// Final interval, stop reason, and sample accounting.
        report: AnytimeReport,
    },
    /// A band-mode job: the simultaneous DKW band with its quantile CIs
    /// and CVaR bounds.
    Band {
        /// The report, identical to a direct
        /// [`BandReport::from_batch`](spa_core::band::BandReport::from_batch)
        /// over the same collected samples.
        report: BandReport,
    },
}

/// Server counters, as returned by [`Request::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Submissions received (valid or not).
    pub submitted: u64,
    /// Jobs whose sampling actually ran (cache misses).
    pub executed: u64,
    /// Submissions answered from the completed-result cache.
    pub cache_hits: u64,
    /// Submissions coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Submissions rejected (queue full, shutting down, invalid).
    pub rejected: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing on a worker.
    pub running: u64,
    /// Whether a drain-then-exit shutdown is underway.
    pub shutting_down: bool,
}

/// One bucket of a latency histogram on the wire: the half-open
/// nanosecond range `[lo_ns, hi_ns)` and its observation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingBucketReport {
    /// Inclusive lower bound, nanoseconds.
    pub lo_ns: u64,
    /// Exclusive upper bound, nanoseconds.
    pub hi_ns: u64,
    /// Observations in this bucket.
    pub count: u64,
}

/// One named latency histogram on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Metric name (e.g. `server.job.latency`).
    pub name: String,
    /// Log-spaced buckets in ascending latency order.
    pub buckets: Vec<TimingBucketReport>,
    /// Observations below the histogram's range.
    pub underflow: u64,
    /// Observations at or above the histogram's range.
    pub overflow: u64,
    /// In-range observations (sum of the bucket counts).
    pub total: u64,
    /// Sum of all observed latencies in nanoseconds.
    pub sum_ns: u64,
}

fn timing_report(name: String, snap: TimingSnapshot) -> TimingReport {
    TimingReport {
        name,
        buckets: snap
            .buckets
            .iter()
            .map(|b| TimingBucketReport {
                lo_ns: b.lo_ns,
                hi_ns: b.hi_ns,
                count: b.count,
            })
            .collect(),
        underflow: snap.underflow,
        overflow: snap.overflow,
        total: snap.total,
        sum_ns: snap.sum_ns,
    }
}

/// A point-in-time metrics snapshot on the wire, as carried by
/// [`Response::Metrics`] and embedded in [`Response::Status`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Latency histograms, ascending by name.
    pub timings: Vec<TimingReport>,
}

impl MetricsReport {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The latency histogram `name`, if present.
    pub fn timing(&self, name: &str) -> Option<&TimingReport> {
        self.timings.iter().find(|t| t.name == name)
    }
}

impl From<MetricsSnapshot> for MetricsReport {
    fn from(snap: MetricsSnapshot) -> Self {
        MetricsReport {
            counters: snap.counters.into_iter().collect(),
            gauges: snap.gauges.into_iter().collect(),
            timings: snap
                .timings
                .into_iter()
                .map(|(name, t)| timing_report(name, t))
                .collect(),
        }
    }
}

/// The latest anytime-valid interval of one live streaming job, as
/// embedded in [`Response::Status`] — `spa status` shows where every
/// stream stands without attaching to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingSnapshot {
    /// Server-assigned job id.
    pub job: u64,
    /// Observations folded so far.
    pub samples: u64,
    /// Current lower confidence bound.
    pub lower: f64,
    /// Current upper confidence bound.
    pub upper: f64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// The submission was accepted under the given job id.
    Accepted {
        /// Server-assigned job id.
        job: u64,
        /// Canonical cache key of the spec (content address).
        key: String,
    },
    /// The submission was declined.
    Rejected {
        /// Typed reason.
        reason: RejectReason,
    },
    /// Sampling progress on an accepted job.
    Progress {
        /// Job id.
        job: u64,
        /// Samples aggregated so far.
        samples: u64,
        /// Current Clopper–Pearson bound: for hypothesis jobs the
        /// confidence after the last folded round, for interval jobs
        /// the confidence the collected samples could support.
        confidence: f64,
        /// Rounds folded so far.
        rounds: u64,
        /// For streaming jobs, the anytime-valid interval after this
        /// round; absent for fixed-`N` modes and on lines from
        /// pre-streaming servers.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        interval: Option<(f64, f64)>,
    },
    /// Terminal: the job's result.
    Report {
        /// Job id.
        job: u64,
        /// True when answered from the result cache without sampling.
        cached: bool,
        /// The payload.
        result: JobResult,
    },
    /// Terminal: the job failed.
    Failed {
        /// Job id.
        job: u64,
        /// What went wrong.
        error: String,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Counter snapshot.
        stats: ServerStats,
        /// Point-in-time metrics snapshot taken alongside the counters
        /// (absent in messages from pre-metrics servers).
        #[serde(default)]
        metrics: MetricsReport,
        /// Latest interval snapshot of every live streaming job
        /// (absent in messages from pre-streaming servers).
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        streaming: Vec<StreamingSnapshot>,
    },
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The merged server + engine metrics snapshot.
        metrics: MetricsReport,
    },
    /// Acknowledges [`Request::Shutdown`]; the server now drains.
    ShutdownStarted,
    /// The last request line could not be understood.
    Error {
        /// Parse failure detail.
        detail: String,
    },
}

/// Serializes one message as a JSON line and flushes it.
///
/// # Errors
///
/// [`ServerError::Io`] on socket failure, [`ServerError::Protocol`] if
/// the value cannot be serialized (unrepresentable float — should not
/// happen for protocol types).
pub fn write_message<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), ServerError> {
    let mut line = serde_json::to_vec(msg)?;
    line.push(b'\n');
    w.write_all(&line)?;
    w.flush()?;
    Ok(())
}

/// Reads the next JSON-lines message, skipping blank lines.
///
/// Returns `Ok(None)` on a clean EOF.
///
/// # Errors
///
/// [`ServerError::Io`] on socket failure, [`ServerError::Protocol`] for
/// a non-JSON or wrongly shaped line.
pub fn read_message<R: BufRead, T: DeserializeOwned>(r: &mut R) -> Result<Option<T>, ServerError> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return serde_json::from_str(trimmed)
            .map(Some)
            .map_err(|e| ServerError::Protocol(format!("bad message: {e}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModeSpec;
    use spa_core::property::Direction;

    fn spec() -> JobSpec {
        JobSpec::new(
            "blackscholes",
            ModeSpec::Interval {
                direction: Direction::AtMost,
            },
        )
    }

    #[test]
    fn request_json_shape() {
        let json = serde_json::to_string(&Request::Status).unwrap();
        assert_eq!(json, r#"{"type":"status"}"#);
        let json = serde_json::to_string(&Request::Submit { spec: spec() }).unwrap();
        assert!(json.starts_with(r#"{"type":"submit","spec":"#), "{json}");
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Request::Submit { spec: spec() });
    }

    #[test]
    fn response_round_trips() {
        let responses = vec![
            Response::Accepted {
                job: 3,
                key: "v1;bench=ferret".into(),
            },
            Response::Rejected {
                reason: RejectReason::QueueFull { depth: 4 },
            },
            Response::Rejected {
                reason: RejectReason::QuotaExceeded { limit: 2 },
            },
            Response::Progress {
                job: 3,
                samples: 16,
                confidence: 0.42,
                rounds: 2,
                interval: None,
            },
            Response::Progress {
                job: 4,
                samples: 16,
                confidence: 0.9,
                rounds: 2,
                interval: Some((0.25, 0.75)),
            },
            Response::Failed {
                job: 3,
                error: "boom".into(),
            },
            Response::Status {
                stats: ServerStats::default(),
                metrics: MetricsReport::default(),
                streaming: Vec::new(),
            },
            Response::Status {
                stats: ServerStats::default(),
                metrics: MetricsReport::default(),
                streaming: vec![StreamingSnapshot {
                    job: 7,
                    samples: 64,
                    lower: 0.4,
                    upper: 0.6,
                }],
            },
            Response::Metrics {
                metrics: MetricsReport {
                    counters: [("server.cache.hits".to_string(), 3)].into_iter().collect(),
                    gauges: [("server.queue.depth".to_string(), -1)]
                        .into_iter()
                        .collect(),
                    timings: vec![TimingReport {
                        name: "server.job.latency".into(),
                        buckets: vec![TimingBucketReport {
                            lo_ns: 1_000,
                            hi_ns: 2_000,
                            count: 5,
                        }],
                        underflow: 0,
                        overflow: 1,
                        total: 5,
                        sum_ns: 9_999,
                    }],
                },
            },
            Response::ShutdownStarted,
            Response::Error {
                detail: "bad json".into(),
            },
        ];
        for resp in responses {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(resp, back, "{json}");
        }
    }

    #[test]
    fn property_results_round_trip() {
        // A realistic report without running the simulator: the SMC
        // outcome comes from the real engine, the rest is hand-filled.
        let outcome = spa_core::smc::SmcEngine::new(0.9, 0.5)
            .unwrap()
            .run_counts(4, 4)
            .unwrap();
        let resp = Response::Report {
            job: 9,
            cached: false,
            result: JobResult::Property {
                report: spa_sim::check::PropertyReport {
                    formula: "G[0,inf] (ipc > 0.8)".into(),
                    robustness: false,
                    requested: 4,
                    evaluated: 4,
                    satisfied: 4,
                    satisfaction_rate: 1.0,
                    outcome,
                    confidence: 0.9,
                    proportion: 0.5,
                    robustness_interval: None,
                    failures: spa_core::fault::FailureCounts::default(),
                },
            },
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains(r#""kind":"property""#), "{json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn framing_round_trips_multiple_lines() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Status).unwrap();
        write_message(&mut buf, &Request::Shutdown).unwrap();
        let mut reader = std::io::BufReader::new(&buf[..]);
        let a: Request = read_message(&mut reader).unwrap().unwrap();
        let b: Request = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(a, Request::Status);
        assert_eq!(b, Request::Shutdown);
        assert!(read_message::<_, Request>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_is_typed() {
        let data = b"\n\n{\"type\":\"status\"}\nnot json\n";
        let mut reader = std::io::BufReader::new(&data[..]);
        let first: Request = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(first, Request::Status);
        let err = read_message::<_, Request>(&mut reader).unwrap_err();
        assert!(matches!(err, ServerError::Protocol(_)), "{err}");
    }

    #[test]
    fn metrics_report_converts_from_registry_snapshot() {
        let registry = spa_obs::MetricsRegistry::new();
        registry.counter("proto.test.events").add(4);
        registry.gauge("proto.test.depth").set(2);
        registry
            .timing(
                "proto.test.lat",
                std::time::Duration::from_micros(1),
                std::time::Duration::from_secs(1),
                6,
            )
            .record(std::time::Duration::from_millis(2));
        let report = MetricsReport::from(registry.snapshot());
        assert_eq!(report.counter("proto.test.events"), Some(4));
        assert_eq!(report.gauge("proto.test.depth"), Some(2));
        let lat = report.timing("proto.test.lat").unwrap();
        assert_eq!(lat.total, 1);
        assert_eq!(lat.buckets.len(), 6);
        assert_eq!(lat.buckets.iter().map(|b| b.count).sum::<u64>(), 1);
        assert_eq!(report.counter("proto.test.missing"), None);

        // And the wire type round-trips through JSON.
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn status_without_metrics_field_still_parses() {
        // Backward compatibility: a status line from a pre-metrics server
        // deserializes with an empty snapshot.
        let json = r#"{"type":"status","stats":{"submitted":1,"executed":1,"cache_hits":0,"coalesced":0,"completed":1,"failed":0,"rejected":0,"queued":0,"running":0,"shutting_down":false}}"#;
        let resp: Response = serde_json::from_str(json).unwrap();
        match resp {
            Response::Status {
                stats,
                metrics,
                streaming,
            } => {
                assert_eq!(stats.submitted, 1);
                assert_eq!(metrics, MetricsReport::default());
                assert!(streaming.is_empty());
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

    #[test]
    fn watch_request_json_shape() {
        let json = serde_json::to_string(&Request::Watch { job: 12 }).unwrap();
        assert_eq!(json, r#"{"type":"watch","job":12}"#);
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Request::Watch { job: 12 });
    }

    #[test]
    fn streaming_results_round_trip() {
        let resp = Response::Report {
            job: 11,
            cached: false,
            result: JobResult::Streaming {
                report: AnytimeReport {
                    boundary: spa_core::seq::Boundary::Betting,
                    confidence: 0.9,
                    samples: 64,
                    successes: 60,
                    lower: 0.81,
                    upper: 0.99,
                    stop: spa_core::seq::StopReason::TargetWidth,
                    failures: spa_core::fault::FailureCounts::default(),
                },
            },
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains(r#""kind":"streaming""#), "{json}");
        assert!(json.contains(r#""boundary":"betting""#), "{json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn band_results_round_trip() {
        // Build the report through the real constructor so the wire test
        // exercises exactly what exec produces — including an unbounded
        // (None → null) endpoint at the extreme quantile.
        let samples: Vec<f64> = (1..=22).map(f64::from).collect();
        let report = BandReport::from_samples(&samples, 0.9, &[0.5, 0.99], Some(0.9)).unwrap();
        let resp = Response::Report {
            job: 13,
            cached: false,
            result: JobResult::Band { report },
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains(r#""kind":"band""#), "{json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn progress_without_interval_still_parses_and_elides_none() {
        // Old-server line: no `interval` field at all.
        let json = r#"{"type":"progress","job":3,"samples":16,"confidence":0.42,"rounds":2}"#;
        let resp: Response = serde_json::from_str(json).unwrap();
        let Response::Progress { interval, .. } = &resp else {
            panic!("expected progress");
        };
        assert_eq!(*interval, None);
        // New-server line for a fixed-N job: byte-identical to the old
        // wire format (the None is skipped, not serialized as null).
        assert_eq!(serde_json::to_string(&resp).unwrap(), json);
    }

    #[test]
    fn rejection_reasons_display() {
        assert!(RejectReason::QueueFull { depth: 2 }
            .to_string()
            .contains("depth 2"));
        assert!(RejectReason::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let r = RejectReason::InvalidSpec {
            detail: "unknown benchmark".into(),
        };
        assert!(r.to_string().contains("unknown benchmark"));
        assert!(RejectReason::QuotaExceeded { limit: 2 }
            .to_string()
            .contains("limit 2"));
    }
}
