//! The long-running evaluation service.
//!
//! Architecture (one process):
//!
//! ```text
//! accept thread ──► handler thread per connection (JSON lines)
//!                      │  submit: validate → cache lookup → enqueue
//!                      ▼
//!               bounded job queue  ──►  worker pool (crossbeam channel)
//!                      ▲                    │ execute rounds, publish
//!                      │ backpressure:      ▼ progress + terminal event
//!                   try_send          jobs table + result cache
//! ```
//!
//! * **Backpressure**: the queue is a bounded crossbeam channel and
//!   submission uses `try_send` — a full queue yields a typed
//!   [`RejectReason::QueueFull`] instead of unbounded buffering.
//! * **Single-flight**: the jobs-table lock is held across the cache
//!   lookup and the enqueue, so of N racing identical submissions
//!   exactly one executes; the rest join its event stream.
//! * **Graceful drain**: shutdown flips a flag and drops the queue's
//!   sender. Workers drain every already-accepted job (each reaches a
//!   terminal event — no report is lost), new submissions are rejected
//!   with [`RejectReason::ShuttingDown`], and idle connections close at
//!   their next read-poll tick.
//!
//! Lock order: a handler takes `jobs → cache` and `jobs → queue_tx`;
//! workers take `cache` and `jobs` only one at a time (and the
//! hypothesis executor's `aggregator → jobs` via the progress callback).
//! No path takes `cache → jobs` or `jobs → aggregator`, so the graph is
//! acyclic.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use spa_obs::MetricsRegistry;

use crate::cache::{Lookup, ResultCache};
use crate::exec::{self, ExecContext, ProgressUpdate};
use crate::obs_names;
use crate::protocol::{
    write_message, JobResult, MetricsReport, RejectReason, Request, Response, ServerStats,
};
use crate::spec::{validate, ValidatedJob};

/// Shape of the job-latency histogram: dequeue-to-terminal latencies
/// from tens of microseconds (cache-adjacent trivial jobs) to a minute.
const JOB_LATENCY_LO: Duration = Duration::from_micros(10);
const JOB_LATENCY_HI: Duration = Duration::from_secs(60);
const JOB_LATENCY_BUCKETS: usize = 32;

/// How a [`start`]ed server is shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads consuming the job queue (jobs running at once).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_depth: usize,
    /// Sampling threads *within* one job's rounds.
    pub job_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            job_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

enum JobState {
    Queued,
    Running,
    Done(JobResult),
    Failed(String),
}

struct JobEntry {
    state: JobState,
    waiters: Vec<Sender<Response>>,
    cancel: Arc<AtomicBool>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    queued: AtomicU64,
    running: AtomicU64,
}

struct Shared {
    jobs: Mutex<HashMap<u64, JobEntry>>,
    cache: ResultCache,
    next_job: AtomicU64,
    queue_tx: Mutex<Option<Sender<(u64, ValidatedJob)>>>,
    stats: Counters,
    /// This instance's metrics (`server.*` names); merged with the
    /// engine's process-global registry when a snapshot is requested.
    metrics: MetricsRegistry,
    shutting_down: AtomicBool,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    queue_depth: usize,
    job_threads: usize,
}

impl Shared {
    /// The merged server + engine metrics snapshot, in wire form.
    fn metrics_report(&self) -> MetricsReport {
        spa_obs::metrics::global()
            .snapshot()
            .merged(self.metrics.snapshot())
            .into()
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            executed: self.stats.executed.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            queued: self.stats.queued.load(Ordering::Relaxed),
            running: self.stats.running.load(Ordering::Relaxed),
            shutting_down: self.shutting_down.load(Ordering::SeqCst),
        }
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the sender lets workers drain the queue and exit.
        self.queue_tx.lock().take();
    }

    /// Sends an event to a job's live waiters, pruning dead ones.
    fn fan_out(&self, job: u64, resp: &Response) {
        let mut jobs = self.jobs.lock();
        if let Some(entry) = jobs.get_mut(&job) {
            entry.waiters.retain(|tx| tx.send(resp.clone()).is_ok());
        }
    }

    /// Records a job's terminal state and delivers the terminal event to
    /// every waiter.
    fn finish(&self, job: u64, state: JobState, resp: &Response) {
        let mut jobs = self.jobs.lock();
        if let Some(entry) = jobs.get_mut(&job) {
            entry.state = state;
            for tx in entry.waiters.drain(..) {
                let _ = tx.send(resp.clone());
            }
        }
    }
}

/// A handle to a running server: its address, counters, and lifecycle.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// The merged server + engine metrics snapshot, as the `metrics`
    /// protocol request would return it.
    pub fn metrics(&self) -> MetricsReport {
        self.shared.metrics_report()
    }

    /// Begins a drain-then-exit shutdown without blocking.
    pub fn initiate_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Sets every known job's cancellation flag (fast teardown; cancelled
    /// jobs terminate with a `failed` event between rounds).
    pub fn cancel_all(&self) {
        let jobs = self.shared.jobs.lock();
        for entry in jobs.values() {
            entry.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// Blocks until shutdown has been *initiated* (here or by a client's
    /// `shutdown` request), then drains and joins all threads.
    pub fn wait(self) {
        while !self.shared.shutting_down.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Initiates shutdown and joins (drains in-flight jobs first).
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Joins all server threads. Only returns once shutdown was
    /// initiated; every accepted job reaches its terminal event first.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut handlers = self.shared.handlers.lock();
                handlers.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }
}

/// Binds and starts the evaluation service.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let (queue_tx, queue_rx) = bounded::<(u64, ValidatedJob)>(config.queue_depth.max(1));
    let shared = Arc::new(Shared {
        jobs: Mutex::new(HashMap::new()),
        cache: ResultCache::new(),
        next_job: AtomicU64::new(0),
        queue_tx: Mutex::new(Some(queue_tx)),
        stats: Counters::default(),
        metrics: MetricsRegistry::new(),
        shutting_down: AtomicBool::new(false),
        handlers: Mutex::new(Vec::new()),
        queue_depth: config.queue_depth.max(1),
        job_threads: config.job_threads.max(1),
    });
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let rx = queue_rx.clone();
            std::thread::spawn(move || worker_loop(&shared, &rx))
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, &listener))
    };
    Ok(ServerHandle {
        shared,
        addr,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_conn(&conn_shared, &stream));
                shared.handlers.lock().push(handle);
            }
            // Non-blocking accept: poll the shutdown flag between ticks.
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Receiver<(u64, ValidatedJob)>) {
    // `recv` returns Err only when the sender is dropped (shutdown) AND
    // the queue is empty — the drain guarantee.
    while let Ok((id, vjob)) = rx.recv() {
        shared.stats.queued.fetch_sub(1, Ordering::Relaxed);
        shared.metrics.gauge(obs_names::QUEUE_DEPTH).sub(1);
        shared.stats.running.fetch_add(1, Ordering::Relaxed);
        shared.stats.executed.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let cancel = {
            let mut jobs = shared.jobs.lock();
            match jobs.get_mut(&id) {
                Some(entry) => {
                    entry.state = JobState::Running;
                    Arc::clone(&entry.cancel)
                }
                None => Arc::new(AtomicBool::new(false)),
            }
        };
        let progress = |u: ProgressUpdate| {
            shared.fan_out(
                id,
                &Response::Progress {
                    job: id,
                    samples: u.samples,
                    confidence: u.confidence,
                    rounds: u.rounds,
                },
            );
        };
        let ctx = ExecContext {
            threads: shared.job_threads,
            cancel: &cancel,
            progress: &progress,
        };
        let outcome = exec::execute(&vjob, &ctx);
        shared
            .metrics
            .timing(
                obs_names::JOB_LATENCY,
                JOB_LATENCY_LO,
                JOB_LATENCY_HI,
                JOB_LATENCY_BUCKETS,
            )
            .record(started.elapsed());
        shared.stats.running.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(result) => {
                // Publish to the cache *before* the terminal fan-out:
                // any submission that saw this job as in-flight has
                // already registered its waiter (it held the jobs lock
                // to do so), and any later one sees the completed entry.
                shared.cache.complete(&vjob.key, result.clone());
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Report {
                    job: id,
                    cached: false,
                    result: result.clone(),
                };
                shared.finish(id, JobState::Done(result), &resp);
            }
            Err(error) => {
                shared.cache.invalidate(&vjob.key);
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Failed {
                    job: id,
                    error: error.clone(),
                };
                shared.finish(id, JobState::Failed(error), &resp);
            }
        }
    }
}

/// A line accumulator over a read-timeout socket: partial lines survive
/// poll ticks, and the shutdown flag is checked between them.
struct LineReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
}

impl LineReader<'_> {
    fn next_line(&mut self, stop: &dyn Fn() -> bool) -> std::io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            let mut chunk = [0u8; 4096];
            let mut reader = self.stream;
            match reader.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };
    let mut writer = stream;
    loop {
        let line = match reader.next_line(&|| shared.shutting_down.load(Ordering::SeqCst)) {
            Ok(Some(line)) => line,
            // EOF, socket error, or idle at shutdown: close.
            Ok(None) | Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(trimmed) {
            Ok(request) => request,
            Err(e) => {
                let resp = Response::Error {
                    detail: format!("bad request: {e}"),
                };
                if write_message(&mut writer, &resp).is_err() {
                    break;
                }
                continue;
            }
        };
        let ok = match request {
            Request::Status => write_message(
                &mut writer,
                &Response::Status {
                    stats: shared.snapshot(),
                    metrics: shared.metrics_report(),
                },
            )
            .is_ok(),
            Request::Metrics => write_message(
                &mut writer,
                &Response::Metrics {
                    metrics: shared.metrics_report(),
                },
            )
            .is_ok(),
            Request::Shutdown => {
                let ok = write_message(&mut writer, &Response::ShutdownStarted).is_ok();
                shared.begin_shutdown();
                ok
            }
            Request::Submit { spec } => handle_submit(shared, &mut writer, spec).is_ok(),
        };
        if !ok {
            break;
        }
    }
}

/// What a submission resolved to while the jobs lock was held.
enum Plan {
    Reject(RejectReason),
    Hit(JobResult),
    AlreadyFailed(u64, String),
    Stream(u64),
}

fn handle_submit<W: Write>(
    shared: &Arc<Shared>,
    writer: &mut W,
    spec: crate::spec::JobSpec,
) -> Result<(), crate::ServerError> {
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    let vjob = match validate(spec) {
        Ok(vjob) => vjob,
        Err(detail) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return write_message(
                writer,
                &Response::Rejected {
                    reason: RejectReason::InvalidSpec { detail },
                },
            );
        }
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return write_message(
            writer,
            &Response::Rejected {
                reason: RejectReason::ShuttingDown,
            },
        );
    }
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    let key = vjob.key.clone();
    let (ev_tx, ev_rx) = unbounded::<Response>();

    // Single-flight critical section: the jobs lock spans the cache
    // lookup, waiter registration, and the enqueue, so racing identical
    // submissions serialize here and at most one reserves the key.
    let plan = {
        let mut jobs = shared.jobs.lock();
        match shared.cache.lookup_or_reserve(&key, id) {
            Lookup::Hit(result) => {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                shared.metrics.counter(obs_names::CACHE_HITS).incr();
                Plan::Hit(result)
            }
            Lookup::Joined { job } => {
                shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                shared.metrics.counter(obs_names::CACHE_JOINED).incr();
                match jobs.get_mut(&job) {
                    Some(entry) => match &entry.state {
                        JobState::Done(result) => Plan::Hit(result.clone()),
                        JobState::Failed(error) => Plan::AlreadyFailed(job, error.clone()),
                        JobState::Queued | JobState::Running => {
                            entry.waiters.push(ev_tx.clone());
                            Plan::Stream(job)
                        }
                    },
                    None => Plan::AlreadyFailed(job, "in-flight job record missing".to_string()),
                }
            }
            Lookup::Reserved => {
                jobs.insert(
                    id,
                    JobEntry {
                        state: JobState::Queued,
                        waiters: vec![ev_tx.clone()],
                        cancel: Arc::new(AtomicBool::new(false)),
                    },
                );
                let sent = match shared.queue_tx.lock().as_ref() {
                    Some(tx) => tx.try_send((id, vjob)).map_err(|e| match e {
                        TrySendError::Full(_) => RejectReason::QueueFull {
                            depth: shared.queue_depth,
                        },
                        TrySendError::Disconnected(_) => RejectReason::ShuttingDown,
                    }),
                    None => Err(RejectReason::ShuttingDown),
                };
                match sent {
                    Ok(()) => {
                        shared.stats.queued.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.counter(obs_names::CACHE_MISSES).incr();
                        shared.metrics.gauge(obs_names::QUEUE_DEPTH).add(1);
                        Plan::Stream(id)
                    }
                    Err(reason) => {
                        // Undo the reservation so a later submission can
                        // try again once there is room.
                        jobs.remove(&id);
                        shared.cache.invalidate(&key);
                        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        Plan::Reject(reason)
                    }
                }
            }
        }
    };
    drop(ev_tx);

    match plan {
        Plan::Reject(reason) => write_message(writer, &Response::Rejected { reason }),
        Plan::Hit(result) => {
            write_message(writer, &Response::Accepted { job: id, key })?;
            write_message(
                writer,
                &Response::Report {
                    job: id,
                    cached: true,
                    result,
                },
            )
        }
        Plan::AlreadyFailed(job, error) => {
            write_message(writer, &Response::Accepted { job, key })?;
            write_message(writer, &Response::Failed { job, error })
        }
        Plan::Stream(job) => {
            write_message(writer, &Response::Accepted { job, key })?;
            loop {
                match ev_rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(resp) => {
                        let terminal =
                            matches!(resp, Response::Report { .. } | Response::Failed { .. });
                        write_message(writer, &resp)?;
                        if terminal {
                            return Ok(());
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        return write_message(
                            writer,
                            &Response::Failed {
                                job,
                                error: "event stream dropped".to_string(),
                            },
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_reassembles_partial_lines() {
        // A loopback pair lets us write byte-by-byte across poll ticks.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let writer = std::thread::spawn(move || {
            client.write_all(b"{\"type\":").unwrap();
            client.flush().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            client.write_all(b"\"status\"}\npartial").unwrap();
            client.flush().unwrap();
            // Closing without a trailing newline: the fragment is
            // discarded as EOF, not delivered as a line.
        });
        let mut reader = LineReader {
            stream: &server_side,
            buf: Vec::new(),
        };
        let line = reader.next_line(&|| false).unwrap().unwrap();
        assert_eq!(line, "{\"type\":\"status\"}");
        assert_eq!(reader.next_line(&|| false).unwrap(), None);
        writer.join().unwrap();
    }

    #[test]
    fn line_reader_stops_when_idle_and_asked() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut reader = LineReader {
            stream: &server_side,
            buf: Vec::new(),
        };
        // No data and stop() is true: treated as a clean close.
        assert_eq!(reader.next_line(&|| true).unwrap(), None);
    }
}
