//! The long-running evaluation service.
//!
//! Architecture (one process):
//!
//! ```text
//! accept thread ──► handler thread per connection (JSON lines)
//!                      │  submit: validate → quota → cache lookup → enqueue
//!                      ▼
//!               bounded job queue  ──►  worker pool (crossbeam channel)
//!                      ▲                    │ execute rounds, publish
//!                      │ backpressure:      ▼ progress + terminal event
//!                   try_send          jobs table + result cache
//!                      ▲                    │ completed results
//!               supervisor thread           ▼
//!               (heartbeats, respawn)  durable store (journal + snapshot)
//! ```
//!
//! * **Backpressure and admission control**: the queue is a bounded
//!   crossbeam channel and submission uses `try_send` — a full queue
//!   yields a typed [`RejectReason::QueueFull`]; a client over its
//!   configured in-flight quota yields [`RejectReason::QuotaExceeded`].
//! * **Single-flight**: the jobs-table lock is held across the cache
//!   lookup and the enqueue, so of N racing identical submissions
//!   exactly one executes; the rest join its event stream.
//! * **Durability**: with a `state_dir` configured, every published
//!   result is appended (flushed) to a CRC-framed journal and replayed
//!   on the next startup — a `kill -9` loses at most the in-flight
//!   record. Graceful shutdown compacts into an atomically-renamed
//!   snapshot ([`crate::store`]).
//! * **Deadlines**: a job's wall-clock budget (per-spec `deadline_ms`
//!   or the server default) is checked at round boundaries; expiry is a
//!   typed failure that releases the cache reservation and counts under
//!   `server.jobs.expired`.
//! * **Supervision**: executions run under a panic guard and beat a
//!   per-job heartbeat at every round. A panicked execution is requeued
//!   under a bounded [`RetryPolicy`] budget; a hung one (stale
//!   heartbeat past `hang_timeout`) is requeued the same way while a
//!   replacement worker thread is spawned — each published result is
//!   *generation*-gated, so a zombie execution can never clobber its
//!   successor's result.
//! * **Graceful drain**: shutdown flips a flag and drops the queue's
//!   sender. Workers drain every already-accepted job (each reaches a
//!   terminal event — no report is lost), new submissions are rejected
//!   with [`RejectReason::ShuttingDown`], and idle connections close at
//!   their next read-poll tick.
//!
//! Lock order: a handler takes `jobs → cache`, `jobs → quota`,
//! `jobs → queue_tx`, and `jobs → resume`; workers publish under
//! `jobs → cache`, persist under `store → cache`, and checkpoint under
//! `jobs`, then `resume`, then `checkpoints` — released one after the
//! other, never nested; the supervisor takes `jobs`, `worker_handles`,
//! and `jobs → queue_tx` one at a time (plus the hypothesis executor's
//! `aggregator → jobs` via the progress callback). No path takes
//! `cache → jobs`, `quota → jobs`, `cache → store`, `resume → jobs`,
//! or `checkpoints → resume`, so the graph is acyclic.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use spa_core::fault::RetryPolicy;
use spa_core::seq::{SeqSnapshot, StopReason};
use spa_obs::MetricsRegistry;

use crate::cache::{Lookup, ResultCache};
use crate::chaos::{ChaosSpec, ChaosState};
use crate::exec::{self, ExecContext, ExecError, ProgressUpdate};
use crate::obs_names;
use crate::protocol::{
    write_message, JobResult, MetricsReport, RejectReason, Request, Response, ServerStats,
    StreamingSnapshot,
};
use crate::spec::{validate, ModeSpec, ValidatedJob};
use crate::store::{CheckpointStore, DurableStore};

/// Shape of the job-latency histogram: dequeue-to-terminal latencies
/// from tens of microseconds (cache-adjacent trivial jobs) to a minute.
const JOB_LATENCY_LO: Duration = Duration::from_micros(10);
const JOB_LATENCY_HI: Duration = Duration::from_secs(60);
const JOB_LATENCY_BUCKETS: usize = 32;

/// How often the supervisor sweeps heartbeats and worker handles.
const SUPERVISOR_TICK: Duration = Duration::from_millis(25);

/// How a [`start`]ed server is shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads consuming the job queue (jobs running at once).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_depth: usize,
    /// Sampling threads *within* one job's rounds.
    pub job_threads: usize,
    /// Directory for the durable result store (`None` = in-memory only;
    /// results do not survive a restart).
    pub state_dir: Option<PathBuf>,
    /// Default wall-clock budget for jobs whose spec carries no
    /// `deadline_ms` (`None` = unlimited).
    pub default_deadline: Option<Duration>,
    /// Maximum streamed submissions a single client IP may have in
    /// flight (0 = unlimited).
    pub client_quota: usize,
    /// Heartbeat staleness past which a running job's worker is deemed
    /// hung and the job requeued (`None` disables hang detection).
    pub hang_timeout: Option<Duration>,
    /// Retry budget for jobs whose workers panic or hang: total
    /// executions per job, [`RetryPolicy::backoff_delay`] between them.
    pub requeue_policy: RetryPolicy,
    /// Seeded fault injection for the chaos tests (`None` in
    /// production).
    pub chaos: Option<ChaosSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            job_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            state_dir: None,
            default_deadline: None,
            client_quota: 0,
            hang_timeout: None,
            requeue_policy: RetryPolicy::new(3),
            chaos: None,
        }
    }
}

enum JobState {
    Queued,
    Running,
    Done(JobResult),
    Failed(String),
}

struct JobEntry {
    state: JobState,
    waiters: Vec<Sender<Response>>,
    /// Cancel flag of the entry's *current* generation; replaced (with
    /// the old one set) when the job is requeued.
    cancel: Arc<AtomicBool>,
    /// The validated job, kept here so a requeue can re-enqueue without
    /// the original submission's help.
    vjob: ValidatedJob,
    /// Absolute wall-clock deadline, fixed at submission.
    deadline: Option<Instant>,
    /// Milliseconds since [`Shared::epoch`] of the last round-boundary
    /// tick; the supervisor's hang detector reads it.
    heartbeat: Arc<AtomicU64>,
    /// Bumped on every requeue. Queue items, publications, and failures
    /// all carry the generation they belong to; stale ones are
    /// discarded.
    generation: u64,
    /// Executions started (1 for the initial attempt), bounded by the
    /// requeue policy.
    attempts: u32,
    /// Latest anytime snapshot of a streaming job: seeded from a
    /// recovered checkpoint at submission, refreshed every folded
    /// round. `spa status` surfaces it, `spa watch` is primed with it,
    /// and a requeued execution resumes from it.
    latest: Option<SeqSnapshot>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    queued: AtomicU64,
    running: AtomicU64,
}

struct Shared {
    jobs: Mutex<HashMap<u64, JobEntry>>,
    cache: ResultCache,
    /// The durable store, if a `state_dir` was configured. Appends and
    /// compactions are best-effort: an I/O error counts under
    /// `server.store.errors` and the in-memory cache still answers.
    store: Mutex<Option<DurableStore>>,
    /// The streaming-checkpoint journal, if a `state_dir` was
    /// configured. Best-effort like [`Shared::store`].
    checkpoints: Mutex<Option<CheckpointStore>>,
    /// Latest checkpoint per canonical key (recovered at startup,
    /// refreshed every folded round, cleared when a stream completes):
    /// the in-memory mirror of `checkpoints`, consulted at submission
    /// so a resubmitted streaming job resumes instead of restarting.
    resume: Mutex<HashMap<String, SeqSnapshot>>,
    next_job: AtomicU64,
    queue_tx: Mutex<Option<Sender<(u64, u64)>>>,
    /// Kept so replacement workers can be spawned after startup.
    queue_rx: Receiver<(u64, u64)>,
    stats: Counters,
    /// This instance's metrics (`server.*` names); merged with the
    /// engine's process-global registry when a snapshot is requested.
    metrics: MetricsRegistry,
    shutting_down: AtomicBool,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Cleared by [`ServerHandle::abort`] so a simulated crash leaves
    /// the journal exactly as the last append flushed it.
    compact_on_exit: AtomicBool,
    /// Per-client-IP in-flight streamed submissions.
    quota: Mutex<HashMap<IpAddr, usize>>,
    /// Reference instant for heartbeat arithmetic.
    epoch: Instant,
    queue_depth: usize,
    job_threads: usize,
    client_quota: usize,
    default_deadline: Option<Duration>,
    hang_timeout: Option<Duration>,
    requeue_policy: RetryPolicy,
    chaos: Option<Arc<ChaosState>>,
}

impl Shared {
    /// Milliseconds since this server's epoch (heartbeat clock).
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The merged server + engine metrics snapshot, in wire form.
    fn metrics_report(&self) -> MetricsReport {
        spa_obs::metrics::global()
            .snapshot()
            .merged(self.metrics.snapshot())
            .into()
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            executed: self.stats.executed.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            queued: self.stats.queued.load(Ordering::Relaxed),
            running: self.stats.running.load(Ordering::Relaxed),
            shutting_down: self.shutting_down.load(Ordering::SeqCst),
        }
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the sender lets workers drain the queue and exit.
        self.queue_tx.lock().take();
    }

    /// Sends an event to a job's live waiters, pruning dead ones.
    fn fan_out(&self, job: u64, resp: &Response) {
        let mut jobs = self.jobs.lock();
        if let Some(entry) = jobs.get_mut(&job) {
            entry.waiters.retain(|tx| tx.send(resp.clone()).is_ok());
        }
    }

    /// Publishes a finished result: cache, jobs table, waiters, then —
    /// outside the jobs lock — the durable store. Generation-gated: a
    /// result produced by a superseded execution (the job was requeued
    /// out from under it) is discarded.
    fn publish_success(&self, job: u64, generation: u64, key: &str, result: JobResult) {
        // A deadline-stopped stream's interval is a QoS artifact, not
        // the canonical answer for the spec: deliver it to this
        // submission's waiters, but leave the key uncached and the
        // checkpoint alive so a resubmission resumes sampling instead
        // of replaying the truncated verdict.
        let resumable = matches!(
            &result,
            JobResult::Streaming { report } if report.stop == StopReason::Deadline
        );
        let published = {
            let mut jobs = self.jobs.lock();
            match jobs.get_mut(&job) {
                Some(entry) if entry.generation == generation => {
                    // Cache publication happens under the jobs lock:
                    // any submission that saw this job as in-flight has
                    // already registered its waiter (it held the jobs
                    // lock to do so), and any later one sees the
                    // completed entry.
                    if resumable {
                        self.cache.invalidate(key);
                    } else {
                        self.cache.complete(key, result.clone());
                    }
                    self.stats.completed.fetch_add(1, Ordering::Relaxed);
                    entry.state = JobState::Done(result.clone());
                    let resp = Response::Report {
                        job,
                        cached: false,
                        result: result.clone(),
                    };
                    for tx in entry.waiters.drain(..) {
                        let _ = tx.send(resp.clone());
                    }
                    true
                }
                _ => false,
            }
        };
        if published && !resumable {
            self.persist(key, &result);
            // A finished stream's checkpoint is spent: the durable
            // result now answers the key.
            if matches!(&result, JobResult::Streaming { .. }) {
                self.clear_checkpoint(key);
            }
        }
    }

    /// Records a terminal failure: releases the cache reservation and
    /// delivers the typed failure to every waiter. Generation-gated
    /// like [`publish_success`].
    fn fail_job(&self, job: u64, generation: u64, key: &str, error: &ExecError) {
        let mut jobs = self.jobs.lock();
        let Some(entry) = jobs.get_mut(&job) else {
            return;
        };
        if entry.generation != generation {
            return;
        }
        if matches!(error, ExecError::Deadline) {
            self.metrics.counter(obs_names::JOBS_EXPIRED).incr();
        }
        self.cache.invalidate(key);
        self.stats.failed.fetch_add(1, Ordering::Relaxed);
        let message = error.to_string();
        entry.state = JobState::Failed(message.clone());
        let resp = Response::Failed {
            job,
            error: message,
        };
        for tx in entry.waiters.drain(..) {
            let _ = tx.send(resp.clone());
        }
    }

    /// Appends a published result to the durable store and compacts when
    /// the journal has grown past its threshold. Best-effort: I/O
    /// failures count under `server.store.errors` and are otherwise
    /// swallowed — the in-memory cache still serves the result.
    fn persist(&self, key: &str, result: &JobResult) {
        let mut store = self.store.lock();
        let Some(store) = store.as_mut() else {
            return;
        };
        if store.append(key, result).is_err() {
            self.metrics.counter(obs_names::STORE_ERRORS).incr();
        }
        if store.should_compact() {
            let entries = self.cache.completed_entries();
            if store.compact(&entries).is_err() {
                self.metrics.counter(obs_names::STORE_ERRORS).incr();
            }
        }
    }

    /// Records a streaming job's round checkpoint: the job entry's
    /// `latest` snapshot (for status, watch priming, and requeue
    /// resume), the in-memory resume map, and — best-effort — the
    /// checkpoint journal. Generation-gated like result publication: a
    /// superseded execution's checkpoints cannot clobber its
    /// successor's progress.
    fn record_checkpoint(&self, job: u64, generation: u64, key: &str, snap: &SeqSnapshot) {
        {
            let mut jobs = self.jobs.lock();
            match jobs.get_mut(&job) {
                Some(entry) if entry.generation == generation => entry.latest = Some(*snap),
                _ => return,
            }
        }
        // Snapshot the live set while the resume lock is held so a
        // due compaction below never has to reach back into it (the
        // lock graph stays acyclic).
        let entries: Vec<(String, SeqSnapshot)> = {
            let mut resume = self.resume.lock();
            resume.insert(key.to_string(), *snap);
            resume.iter().map(|(k, s)| (k.clone(), *s)).collect()
        };
        self.metrics.counter(obs_names::STREAM_CHECKPOINTS).incr();
        let mut checkpoints = self.checkpoints.lock();
        let Some(store) = checkpoints.as_mut() else {
            return;
        };
        if store.append(key, snap).is_err() {
            self.metrics.counter(obs_names::STORE_ERRORS).incr();
        }
        if store.should_compact() && store.compact(&entries).is_err() {
            self.metrics.counter(obs_names::STORE_ERRORS).incr();
        }
    }

    /// Drops a completed stream's checkpoint: the in-memory resume
    /// entry and, via a journal tombstone, its durable records. A key
    /// that never checkpointed is a no-op (no spurious tombstones).
    fn clear_checkpoint(&self, key: &str) {
        if self.resume.lock().remove(key).is_none() {
            return;
        }
        let mut checkpoints = self.checkpoints.lock();
        let Some(store) = checkpoints.as_mut() else {
            return;
        };
        if store.remove(key).is_err() {
            self.metrics.counter(obs_names::STORE_ERRORS).incr();
        }
    }

    /// The live streaming jobs (queued or running) that have folded at
    /// least one round, sorted by job id — the `status` response's
    /// streaming section.
    fn streaming_snapshots(&self) -> Vec<StreamingSnapshot> {
        let jobs = self.jobs.lock();
        let mut live: Vec<StreamingSnapshot> = jobs
            .iter()
            .filter(|(_, entry)| matches!(entry.state, JobState::Queued | JobState::Running))
            .filter_map(|(&id, entry)| {
                entry.latest.map(|s| StreamingSnapshot {
                    job: id,
                    samples: s.n,
                    lower: s.lower,
                    upper: s.upper,
                })
            })
            .collect();
        live.sort_by_key(|s| s.job);
        live
    }

    /// Charges one in-flight submission against `peer`'s quota.
    ///
    /// `Ok(None)` means quotas are disabled (or the peer is unknown);
    /// `Ok(Some(guard))` holds the slot until the guard drops;
    /// `Err(limit)` means the client is at its limit.
    fn try_acquire_quota(&self, peer: Option<IpAddr>) -> Result<Option<QuotaGuard<'_>>, usize> {
        let limit = self.client_quota;
        if limit == 0 {
            return Ok(None);
        }
        let Some(ip) = peer else {
            return Ok(None);
        };
        let mut quota = self.quota.lock();
        let n = quota.entry(ip).or_insert(0);
        if *n >= limit {
            return Err(limit);
        }
        *n += 1;
        Ok(Some(QuotaGuard { shared: self, ip }))
    }
}

/// Holds one unit of a client's in-flight quota; releasing is a `Drop`,
/// so a handler that dies mid-stream (client disconnect, write error)
/// can never leak its slot.
struct QuotaGuard<'a> {
    shared: &'a Shared,
    ip: IpAddr,
}

impl Drop for QuotaGuard<'_> {
    fn drop(&mut self) {
        let mut quota = self.shared.quota.lock();
        if let Some(n) = quota.get_mut(&self.ip) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                quota.remove(&self.ip);
            }
        }
    }
}

/// A handle to a running server: its address, counters, and lifecycle.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// The merged server + engine metrics snapshot, as the `metrics`
    /// protocol request would return it.
    pub fn metrics(&self) -> MetricsReport {
        self.shared.metrics_report()
    }

    /// Begins a drain-then-exit shutdown without blocking.
    pub fn initiate_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Sets every known job's cancellation flag (fast teardown; cancelled
    /// jobs terminate with a `failed` event between rounds).
    pub fn cancel_all(&self) {
        let jobs = self.shared.jobs.lock();
        for entry in jobs.values() {
            entry.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// Blocks until shutdown has been *initiated* (here or by a client's
    /// `shutdown` request), then drains and joins all threads.
    pub fn wait(self) {
        while !self.shared.shutting_down.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Initiates shutdown and joins (drains in-flight jobs first).
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Tears the server down like a crash, for recovery tests: in-flight
    /// jobs are cancelled and — unlike [`shutdown`](Self::shutdown) —
    /// the durable store is *not* compacted, so the journal stays
    /// exactly as the last append flushed it (what a `kill -9` would
    /// leave behind, with the listening port still released cleanly).
    pub fn abort(self) {
        self.shared.compact_on_exit.store(false, Ordering::SeqCst);
        self.cancel_all();
        self.shared.begin_shutdown();
        self.join();
    }

    /// Joins all server threads. Only returns once shutdown was
    /// initiated; every accepted job reaches its terminal event first,
    /// and (on graceful exit with a store) the journal is compacted
    /// into the snapshot.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut workers = self.shared.worker_handles.lock();
                workers.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut handlers = self.shared.handlers.lock();
                handlers.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
        if self.shared.compact_on_exit.load(Ordering::SeqCst) {
            {
                let mut store = self.shared.store.lock();
                if let Some(store) = store.as_mut() {
                    let entries = self.shared.cache.completed_entries();
                    if store.compact(&entries).is_err() {
                        self.shared.metrics.counter(obs_names::STORE_ERRORS).incr();
                    }
                }
            }
            let live: Vec<(String, SeqSnapshot)> = {
                let resume = self.shared.resume.lock();
                resume.iter().map(|(k, s)| (k.clone(), *s)).collect()
            };
            let mut checkpoints = self.shared.checkpoints.lock();
            if let Some(store) = checkpoints.as_mut() {
                if store.compact(&live).is_err() {
                    self.shared.metrics.counter(obs_names::STORE_ERRORS).incr();
                }
            }
        }
    }
}

/// Binds and starts the evaluation service.
///
/// With [`ServerConfig::state_dir`] set, the durable store is opened
/// first and every recovered result is preloaded into the cache
/// (`server.store.replayed` / `server.store.truncated` record what
/// recovery found).
///
/// # Errors
///
/// Propagates the bind failure and durable-store open failures
/// (unwritable state directory). Corrupt store *contents* are not
/// errors — they surface as truncation counters.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let (queue_tx, queue_rx) = bounded::<(u64, u64)>(config.queue_depth.max(1));

    let mut store = None;
    let mut recovered = Vec::new();
    let mut recovery = crate::store::RecoveryStats::default();
    let mut checkpoints = None;
    let mut resume_entries: Vec<(String, SeqSnapshot)> = Vec::new();
    let mut checkpoint_recovery = crate::store::RecoveryStats::default();
    if let Some(dir) = &config.state_dir {
        let (opened, entries, stats) = DurableStore::open(dir)?;
        store = Some(opened);
        recovered = entries;
        recovery = stats;
        let (opened, live, stats) = CheckpointStore::open(dir)?;
        checkpoints = Some(opened);
        resume_entries = live;
        checkpoint_recovery = stats;
    }
    let stream_recovered = resume_entries.len() as u64;

    let shared = Arc::new(Shared {
        jobs: Mutex::new(HashMap::new()),
        cache: ResultCache::new(),
        store: Mutex::new(store),
        checkpoints: Mutex::new(checkpoints),
        resume: Mutex::new(resume_entries.into_iter().collect()),
        next_job: AtomicU64::new(0),
        queue_tx: Mutex::new(Some(queue_tx)),
        queue_rx,
        stats: Counters::default(),
        metrics: MetricsRegistry::new(),
        shutting_down: AtomicBool::new(false),
        handlers: Mutex::new(Vec::new()),
        worker_handles: Mutex::new(Vec::new()),
        compact_on_exit: AtomicBool::new(true),
        quota: Mutex::new(HashMap::new()),
        epoch: Instant::now(),
        queue_depth: config.queue_depth.max(1),
        job_threads: config.job_threads.max(1),
        client_quota: config.client_quota,
        default_deadline: config.default_deadline,
        hang_timeout: config.hang_timeout,
        requeue_policy: config.requeue_policy.clone(),
        chaos: config.chaos.map(|spec| Arc::new(ChaosState::new(spec))),
    });
    shared.cache.preload(recovered);
    shared
        .metrics
        .counter(obs_names::STORE_REPLAYED)
        .add(recovery.replayed);
    shared
        .metrics
        .counter(obs_names::STORE_TRUNCATED)
        .add(recovery.truncated + checkpoint_recovery.truncated);
    shared
        .metrics
        .counter(obs_names::STREAM_RECOVERED)
        .add(stream_recovered);

    {
        let mut workers = shared.worker_handles.lock();
        for _ in 0..config.workers.max(1) {
            workers.push(spawn_worker(&shared));
        }
    }
    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || supervisor_loop(&shared))
    };
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, &listener))
    };
    Ok(ServerHandle {
        shared,
        addr,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

fn spawn_worker(shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let rx = shared.queue_rx.clone();
        worker_loop(&shared, &rx);
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_conn(&conn_shared, &stream));
                shared.handlers.lock().push(handle);
            }
            // Non-blocking accept: poll the shutdown flag between ticks.
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

/// The supervisor: respawns worker threads that died (an injected or
/// real panic that escaped the execution guard) and requeues jobs whose
/// heartbeat went stale (hung worker) under the bounded retry budget.
fn supervisor_loop(shared: &Arc<Shared>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(SUPERVISOR_TICK);
        if shared.shutting_down.load(Ordering::SeqCst) {
            // Workers exiting the drain are not casualties.
            break;
        }

        // Dead workers: join the corpse, spawn a replacement.
        {
            let mut workers = shared.worker_handles.lock();
            let mut i = 0;
            while i < workers.len() {
                if workers[i].is_finished() {
                    let _ = workers.remove(i).join();
                    workers.push(spawn_worker(shared));
                    shared.metrics.counter(obs_names::WORKERS_RESTARTED).incr();
                } else {
                    i += 1;
                }
            }
        }

        // Hung workers: a running job whose heartbeat is stale. The
        // stuck thread cannot be killed, so it is disowned — its
        // generation's cancel flag stops it at the next checkpoint it
        // ever reaches, its publications are generation-gated away —
        // and a replacement worker takes over the queue.
        let Some(limit) = shared.hang_timeout else {
            continue;
        };
        let limit_ms = limit.as_millis() as u64;
        let now = shared.now_ms();
        let hung: Vec<(u64, u64)> = {
            let jobs = shared.jobs.lock();
            jobs.iter()
                .filter(|(_, entry)| {
                    matches!(entry.state, JobState::Running)
                        && now.saturating_sub(entry.heartbeat.load(Ordering::Relaxed)) > limit_ms
                })
                .map(|(&id, entry)| (id, entry.generation))
                .collect()
        };
        for (id, generation) in hung {
            shared.worker_handles.lock().push(spawn_worker(shared));
            shared.metrics.counter(obs_names::WORKERS_RESTARTED).incr();
            requeue_or_fail(shared, id, generation, "worker hung (stale heartbeat)");
        }
    }
}

/// Requeues a job for another execution under the retry budget, or
/// fails it terminally when the budget is spent. Generation-gated: a
/// stale request (the job already moved on) is a no-op.
fn requeue_or_fail(shared: &Arc<Shared>, job: u64, generation: u64, reason: &str) {
    enum Decision {
        Requeue {
            next_generation: u64,
            attempts_made: u32,
            key: String,
        },
        Exhausted {
            attempts_made: u32,
            key: String,
        },
    }
    let decision = {
        let mut jobs = shared.jobs.lock();
        let Some(entry) = jobs.get_mut(&job) else {
            return;
        };
        if entry.generation != generation {
            return;
        }
        let attempts_made = entry.attempts;
        if shared.requeue_policy.allows_retry(attempts_made) {
            // Disown the old execution: its cancel flag stops a merely
            // hung worker at its next checkpoint, and the generation
            // bump gates out anything it still publishes.
            entry.cancel.store(true, Ordering::Relaxed);
            entry.cancel = Arc::new(AtomicBool::new(false));
            entry.generation += 1;
            entry.attempts += 1;
            entry.state = JobState::Queued;
            entry.heartbeat.store(shared.now_ms(), Ordering::Relaxed);
            Decision::Requeue {
                next_generation: entry.generation,
                attempts_made,
                key: entry.vjob.key.clone(),
            }
        } else {
            Decision::Exhausted {
                attempts_made,
                key: entry.vjob.key.clone(),
            }
        }
    };
    match decision {
        Decision::Requeue {
            next_generation,
            attempts_made,
            key,
        } => {
            let delay = shared.requeue_policy.backoff_delay(job, attempts_made);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            let sent = match shared.queue_tx.lock().as_ref() {
                Some(tx) => tx.try_send((job, next_generation)).is_ok(),
                None => false,
            };
            if sent {
                shared.stats.queued.fetch_add(1, Ordering::Relaxed);
                shared.metrics.gauge(obs_names::QUEUE_DEPTH).add(1);
                shared.metrics.counter(obs_names::JOBS_REQUEUED).incr();
            } else {
                shared.fail_job(
                    job,
                    next_generation,
                    &key,
                    &ExecError::Failed(format!("{reason}; requeue failed: queue unavailable")),
                );
            }
        }
        Decision::Exhausted { attempts_made, key } => {
            shared.fail_job(
                job,
                generation,
                &key,
                &ExecError::Failed(format!(
                    "{reason} ({attempts_made} attempts, retry budget exhausted)"
                )),
            );
        }
    }
}

/// Extracts the human-readable payload of a caught panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Receiver<(u64, u64)>) {
    // `recv` returns Err only when the sender is dropped (shutdown) AND
    // the queue is empty — the drain guarantee.
    while let Ok((id, generation)) = rx.recv() {
        shared.stats.queued.fetch_sub(1, Ordering::Relaxed);
        shared.metrics.gauge(obs_names::QUEUE_DEPTH).sub(1);
        // Claim the job: only the entry's current generation in state
        // Queued is runnable; anything else is a stale queue item.
        let claim = {
            let mut jobs = shared.jobs.lock();
            match jobs.get_mut(&id) {
                Some(entry)
                    if entry.generation == generation
                        && matches!(entry.state, JobState::Queued) =>
                {
                    entry.state = JobState::Running;
                    entry.heartbeat.store(shared.now_ms(), Ordering::Relaxed);
                    Some((
                        entry.vjob.clone(),
                        Arc::clone(&entry.cancel),
                        Arc::clone(&entry.heartbeat),
                        entry.deadline,
                        entry.latest,
                    ))
                }
                _ => None,
            }
        };
        let Some((vjob, cancel, heartbeat, deadline, resume)) = claim else {
            continue;
        };
        // A deadline that expired while the job sat in the queue fails
        // it without burning an execution.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            shared.fail_job(id, generation, &vjob.key, &ExecError::Deadline);
            continue;
        }
        shared.stats.running.fetch_add(1, Ordering::Relaxed);
        shared.stats.executed.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let progress = |u: ProgressUpdate| {
            shared.fan_out(
                id,
                &Response::Progress {
                    job: id,
                    samples: u.samples,
                    confidence: u.confidence,
                    rounds: u.rounds,
                    interval: u.interval,
                },
            );
        };
        let tick = |round: u64| {
            heartbeat.store(shared.now_ms(), Ordering::Relaxed);
            if let Some(chaos) = &shared.chaos {
                chaos.inject(id, generation, round);
            }
        };
        let on_checkpoint = |snap: &SeqSnapshot| {
            shared.record_checkpoint(id, generation, &vjob.key, snap);
        };
        let ctx = ExecContext {
            threads: shared.job_threads,
            cancel: &cancel,
            deadline,
            tick: &tick,
            progress: &progress,
            resume,
            on_checkpoint: Some(&on_checkpoint),
        };
        // Panic isolation: an execution that panics (a simulator bug
        // slipping the sampler's own guard, or an injected chaos kill)
        // must not take the worker's queue consumption with it.
        let outcome = catch_unwind(AssertUnwindSafe(|| exec::execute(&vjob, &ctx)));
        shared
            .metrics
            .timing(
                obs_names::JOB_LATENCY,
                JOB_LATENCY_LO,
                JOB_LATENCY_HI,
                JOB_LATENCY_BUCKETS,
            )
            .record(started.elapsed());
        shared.stats.running.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(Ok(result)) => shared.publish_success(id, generation, &vjob.key, result),
            Ok(Err(error)) => shared.fail_job(id, generation, &vjob.key, &error),
            Err(payload) => {
                let reason = format!("worker panicked: {}", panic_message(payload.as_ref()));
                requeue_or_fail(shared, id, generation, &reason);
            }
        }
    }
}

/// A line accumulator over a read-timeout socket: partial lines survive
/// poll ticks, and the shutdown flag is checked between them.
struct LineReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
}

impl LineReader<'_> {
    fn next_line(&mut self, stop: &dyn Fn() -> bool) -> std::io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            let mut chunk = [0u8; 4096];
            let mut reader = self.stream;
            match reader.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: &TcpStream) {
    if stream.set_nodelay(true).is_err() {
        // Latency pessimization only — carry on, but count it.
        shared
            .metrics
            .counter(obs_names::CONN_SOCKOPT_ERRORS)
            .incr();
    }
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        // Without a read timeout the poll loop could never observe
        // shutdown — refuse the connection rather than leak an
        // unkillable handler thread.
        shared
            .metrics
            .counter(obs_names::CONN_SOCKOPT_ERRORS)
            .incr();
        return;
    }
    let peer = stream.peer_addr().ok().map(|a| a.ip());
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };
    let mut writer = stream;
    loop {
        let line = match reader.next_line(&|| shared.shutting_down.load(Ordering::SeqCst)) {
            Ok(Some(line)) => line,
            // EOF, socket error, or idle at shutdown: close.
            Ok(None) | Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(trimmed) {
            Ok(request) => request,
            Err(e) => {
                let resp = Response::Error {
                    detail: format!("bad request: {e}"),
                };
                if write_message(&mut writer, &resp).is_err() {
                    break;
                }
                continue;
            }
        };
        let ok = match request {
            Request::Status => write_message(
                &mut writer,
                &Response::Status {
                    stats: shared.snapshot(),
                    metrics: shared.metrics_report(),
                    streaming: shared.streaming_snapshots(),
                },
            )
            .is_ok(),
            Request::Watch { job } => handle_watch(shared, &mut writer, job).is_ok(),
            Request::Metrics => write_message(
                &mut writer,
                &Response::Metrics {
                    metrics: shared.metrics_report(),
                },
            )
            .is_ok(),
            Request::Shutdown => {
                let ok = write_message(&mut writer, &Response::ShutdownStarted).is_ok();
                shared.begin_shutdown();
                ok
            }
            Request::Submit { spec } => handle_submit(shared, &mut writer, spec, peer).is_ok(),
        };
        if !ok {
            break;
        }
    }
}

/// What a submission resolved to while the jobs lock was held.
enum Plan {
    Reject(RejectReason),
    Hit(JobResult),
    AlreadyFailed(u64, String),
    Stream(u64),
}

fn handle_submit<W: Write>(
    shared: &Arc<Shared>,
    writer: &mut W,
    spec: crate::spec::JobSpec,
    peer: Option<IpAddr>,
) -> Result<(), crate::ServerError> {
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    let vjob = match validate(spec) {
        Ok(vjob) => vjob,
        Err(detail) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return write_message(
                writer,
                &Response::Rejected {
                    reason: RejectReason::InvalidSpec { detail },
                },
            );
        }
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return write_message(
            writer,
            &Response::Rejected {
                reason: RejectReason::ShuttingDown,
            },
        );
    }
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    let key = vjob.key.clone();
    let (ev_tx, ev_rx) = unbounded::<Response>();
    // Held (alive) for the whole streaming loop; its Drop releases the
    // client's quota slot even on disconnect mid-stream.
    let mut _quota: Option<QuotaGuard<'_>> = None;

    // Single-flight critical section: the jobs lock spans the cache
    // lookup, waiter registration, and the enqueue, so racing identical
    // submissions serialize here and at most one reserves the key.
    let plan = {
        let mut jobs = shared.jobs.lock();
        match shared.cache.lookup_or_reserve(&key, id) {
            Lookup::Hit(result) => {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                shared.metrics.counter(obs_names::CACHE_HITS).incr();
                Plan::Hit(result)
            }
            Lookup::Joined { job } => {
                shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                shared.metrics.counter(obs_names::CACHE_JOINED).incr();
                match jobs.get_mut(&job) {
                    Some(entry) => match &entry.state {
                        JobState::Done(result) => Plan::Hit(result.clone()),
                        JobState::Failed(error) => Plan::AlreadyFailed(job, error.clone()),
                        JobState::Queued | JobState::Running => {
                            match shared.try_acquire_quota(peer) {
                                Ok(guard) => {
                                    _quota = guard;
                                    entry.waiters.push(ev_tx.clone());
                                    Plan::Stream(job)
                                }
                                Err(limit) => {
                                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                                    Plan::Reject(RejectReason::QuotaExceeded { limit })
                                }
                            }
                        }
                    },
                    None => {
                        // The in-flight marker points at a job record
                        // that no longer exists — a wedged key. Release
                        // the marker so the *next* submission executes
                        // instead of hitting this dead end forever.
                        shared.cache.invalidate(&key);
                        Plan::AlreadyFailed(
                            job,
                            "in-flight job record missing; resubmit".to_string(),
                        )
                    }
                }
            }
            Lookup::Reserved => match shared.try_acquire_quota(peer) {
                Err(limit) => {
                    shared.cache.invalidate(&key);
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    Plan::Reject(RejectReason::QuotaExceeded { limit })
                }
                Ok(guard) => {
                    _quota = guard;
                    let deadline = vjob
                        .spec
                        .deadline_ms
                        .map(Duration::from_millis)
                        .or(shared.default_deadline)
                        .map(|d| Instant::now() + d);
                    // A streaming spec whose key has a journaled
                    // checkpoint resumes from it instead of restarting
                    // its seed stream. The map entry is kept (not
                    // taken): the execution overwrites it at its first
                    // folded round.
                    let latest = if matches!(vjob.spec.mode, ModeSpec::Streaming { .. }) {
                        let resumed = shared.resume.lock().get(&key).copied();
                        if resumed.is_some() {
                            shared.metrics.counter(obs_names::STREAM_RESUMED).incr();
                        }
                        resumed
                    } else {
                        None
                    };
                    jobs.insert(
                        id,
                        JobEntry {
                            state: JobState::Queued,
                            waiters: vec![ev_tx.clone()],
                            cancel: Arc::new(AtomicBool::new(false)),
                            vjob,
                            deadline,
                            heartbeat: Arc::new(AtomicU64::new(shared.now_ms())),
                            generation: 0,
                            attempts: 1,
                            latest,
                        },
                    );
                    let sent = match shared.queue_tx.lock().as_ref() {
                        Some(tx) => tx.try_send((id, 0)).map_err(|e| match e {
                            TrySendError::Full(_) => RejectReason::QueueFull {
                                depth: shared.queue_depth,
                            },
                            TrySendError::Disconnected(_) => RejectReason::ShuttingDown,
                        }),
                        None => Err(RejectReason::ShuttingDown),
                    };
                    match sent {
                        Ok(()) => {
                            shared.stats.queued.fetch_add(1, Ordering::Relaxed);
                            shared.metrics.counter(obs_names::CACHE_MISSES).incr();
                            shared.metrics.gauge(obs_names::QUEUE_DEPTH).add(1);
                            Plan::Stream(id)
                        }
                        Err(reason) => {
                            // Undo the reservation (and quota) so a later
                            // submission can try again once there is room.
                            jobs.remove(&id);
                            shared.cache.invalidate(&key);
                            _quota = None;
                            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            Plan::Reject(reason)
                        }
                    }
                }
            },
        }
    };
    drop(ev_tx);

    match plan {
        Plan::Reject(reason) => write_message(writer, &Response::Rejected { reason }),
        Plan::Hit(result) => {
            write_message(writer, &Response::Accepted { job: id, key })?;
            write_message(
                writer,
                &Response::Report {
                    job: id,
                    cached: true,
                    result,
                },
            )
        }
        Plan::AlreadyFailed(job, error) => {
            write_message(writer, &Response::Accepted { job, key })?;
            write_message(writer, &Response::Failed { job, error })
        }
        Plan::Stream(job) => {
            write_message(writer, &Response::Accepted { job, key })?;
            stream_events(writer, job, &ev_rx)
        }
    }
}

/// Forwards a job's event stream to one client until a terminal event
/// (report or failure); shared by `submit` and `watch`. The timeout
/// tick keeps the loop responsive to a dropped channel.
fn stream_events<W: Write>(
    writer: &mut W,
    job: u64,
    ev_rx: &Receiver<Response>,
) -> Result<(), crate::ServerError> {
    loop {
        match ev_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(resp) => {
                let terminal = matches!(resp, Response::Report { .. } | Response::Failed { .. });
                write_message(writer, &resp)?;
                if terminal {
                    return Ok(());
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return write_message(
                    writer,
                    &Response::Failed {
                        job,
                        error: "event stream dropped".to_string(),
                    },
                );
            }
        }
    }
}

/// What a `watch` request resolved to while the jobs lock was held.
enum WatchPlan {
    Missing,
    Done(JobResult),
    Failed(String),
    Stream { prime: Option<Response> },
}

/// Attaches a client to an existing job's event stream without
/// resubmitting its spec. Terminal jobs answer immediately (a cached
/// report or the recorded failure); live streaming jobs are primed
/// with their latest interval snapshot so the watcher sees the current
/// state before the next round folds.
fn handle_watch<W: Write>(
    shared: &Arc<Shared>,
    writer: &mut W,
    job: u64,
) -> Result<(), crate::ServerError> {
    let (ev_tx, ev_rx) = unbounded::<Response>();
    let plan = {
        let mut jobs = shared.jobs.lock();
        match jobs.get_mut(&job) {
            None => WatchPlan::Missing,
            Some(entry) => match &entry.state {
                JobState::Done(result) => WatchPlan::Done(result.clone()),
                JobState::Failed(error) => WatchPlan::Failed(error.clone()),
                JobState::Queued | JobState::Running => {
                    let prime = entry.latest.map(|s| Response::Progress {
                        job,
                        samples: s.n,
                        confidence: entry.vjob.spec.confidence,
                        rounds: s.n.div_ceil(entry.vjob.spec.round_size.max(1)),
                        interval: Some((s.lower, s.upper)),
                    });
                    entry.waiters.push(ev_tx.clone());
                    WatchPlan::Stream { prime }
                }
            },
        }
    };
    drop(ev_tx);
    match plan {
        WatchPlan::Missing => write_message(
            writer,
            &Response::Failed {
                job,
                error: format!("unknown job {job}"),
            },
        ),
        WatchPlan::Done(result) => write_message(
            writer,
            &Response::Report {
                job,
                cached: true,
                result,
            },
        ),
        WatchPlan::Failed(error) => write_message(writer, &Response::Failed { job, error }),
        WatchPlan::Stream { prime } => {
            if let Some(resp) = prime {
                write_message(writer, &resp)?;
            }
            stream_events(writer, job, &ev_rx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_reassembles_partial_lines() {
        // A loopback pair lets us write byte-by-byte across poll ticks.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let writer = std::thread::spawn(move || {
            client.write_all(b"{\"type\":").unwrap();
            client.flush().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            client.write_all(b"\"status\"}\npartial").unwrap();
            client.flush().unwrap();
            // Closing without a trailing newline: the fragment is
            // discarded as EOF, not delivered as a line.
        });
        let mut reader = LineReader {
            stream: &server_side,
            buf: Vec::new(),
        };
        let line = reader.next_line(&|| false).unwrap().unwrap();
        assert_eq!(line, "{\"type\":\"status\"}");
        assert_eq!(reader.next_line(&|| false).unwrap(), None);
        writer.join().unwrap();
    }

    #[test]
    fn line_reader_stops_when_idle_and_asked() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut reader = LineReader {
            stream: &server_side,
            buf: Vec::new(),
        };
        // No data and stop() is true: treated as a clean close.
        assert_eq!(reader.next_line(&|| true).unwrap(), None);
    }
}
