//! The crash-safe result store backing [`ResultCache`](crate::cache).
//!
//! Layout inside the server's `--state-dir`:
//!
//! * `snapshot.spastore` — the compacted base: every completed result at
//!   the last compaction, written whole via tempfile + atomic rename.
//! * `journal.spastore` — an append-only log of results completed since
//!   that snapshot; one record is appended (and flushed) per published
//!   `JobResult`.
//! * `checkpoints.spastore` — the streaming-job checkpoint journal
//!   ([`CheckpointStore`]): one record per folded round carrying the
//!   job's latest [`SeqSnapshot`], plus tombstones once a stream
//!   completes. Same framing, same recovery discipline; replay applies
//!   last-wins and tombstones, so a `kill -9` mid-stream loses at most
//!   the in-flight round and the job resumes from the previous one —
//!   which is statistically free for an anytime-valid run.
//!
//! Both files share one format: a 12-byte header (`b"SPASTORE"` magic +
//! little-endian [`STORE_VERSION`]) followed by length-prefixed records
//! `[u32 len][u32 crc32][len bytes of JSON]`, where the JSON is a
//! `{key, result}` pair keyed by the spec's canonical cache key. The
//! version is tied to the canonical-key scheme (keys start `"v1;"`): a
//! key-scheme change must bump both, so a stale store can never alias a
//! result under the new scheme.
//!
//! **Recovery** replays the snapshot and then the journal, later
//! records winning. A short, CRC-mismatched, oversized, or unparsable
//! record ends the replay of its file: everything before it is kept,
//! the journal is physically truncated at that point, and the event is
//! counted in [`RecoveryStats::truncated`]. A `kill -9` between the
//! length prefix and the flush therefore loses at most the in-flight
//! record — never the store. A header from a different version (or no
//! valid header at all) discards that file entirely for the same
//! reason: serving a result under a reinterpreted key would be worse
//! than re-simulating it.
//!
//! **Compaction** (every [`compact_threshold`](DurableStore::should_compact)
//! appends, and on graceful shutdown) writes the full entry set to
//! `snapshot.spastore.tmp.<pid>`, renames it over the snapshot, and
//! truncates the journal back to its header. A crash between the rename
//! and the truncate leaves the journal's records duplicated in the
//! snapshot; replay is idempotent (same key, same bytes), so the next
//! startup converges to the identical cache.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use spa_core::seq::SeqSnapshot;

use crate::protocol::JobResult;

/// On-disk format version; tied to the canonical cache-key scheme
/// (`spec::canonical_key`'s `"v1;"` prefix). Bump both together.
pub const STORE_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"SPASTORE";
const HEADER_LEN: u64 = 12;
/// Replay rejects records claiming to be larger than this — a corrupt
/// length prefix must not trigger a giant allocation.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;
/// Journal appends between automatic compactions.
const DEFAULT_COMPACT_THRESHOLD: u64 = 1024;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One journaled completion: canonical key plus the finished result.
#[derive(Debug, Serialize, Deserialize)]
struct Record {
    key: String,
    result: JobResult,
}

/// What startup recovery found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Completed results recovered (snapshot + journal, before
    /// last-wins dedup).
    pub replayed: u64,
    /// Files whose unreadable tail — or, on a version mismatch, whole
    /// body — was discarded.
    pub truncated: u64,
}

/// What reading one store file yielded: the valid record prefix, the
/// byte offset it ends at, and whether anything after it was discarded.
struct FileScan<R> {
    records: Vec<R>,
    valid_len: u64,
    discarded_tail: bool,
}

fn scan_file<R: DeserializeOwned>(path: &Path) -> io::Result<Option<FileScan<R>>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < HEADER_LEN as usize
        || &bytes[..8] != MAGIC
        || bytes[8..12] != STORE_VERSION.to_le_bytes()
    {
        // Wrong magic or version: nothing in this file is trustworthy
        // under the current key scheme.
        return Ok(Some(FileScan {
            records: Vec::new(),
            valid_len: 0,
            discarded_tail: true,
        }));
    }
    let mut records = Vec::new();
    let mut off = HEADER_LEN as usize;
    let mut discarded_tail = false;
    while off < bytes.len() {
        let Some(frame) = bytes.get(off..off + 8) else {
            discarded_tail = true;
            break;
        };
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4-byte slice"));
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4-byte slice"));
        if len > MAX_RECORD_LEN {
            discarded_tail = true;
            break;
        }
        let Some(payload) = bytes.get(off + 8..off + 8 + len as usize) else {
            // Short read: the record's tail never made it to disk.
            discarded_tail = true;
            break;
        };
        if crc32(payload) != crc {
            discarded_tail = true;
            break;
        }
        match serde_json::from_slice::<R>(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                discarded_tail = true;
                break;
            }
        }
        off += 8 + len as usize;
    }
    Ok(Some(FileScan {
        records,
        valid_len: off as u64,
        discarded_tail,
    }))
}

fn write_header(w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&STORE_VERSION.to_le_bytes())
}

fn write_record(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= u64::from(MAX_RECORD_LEN));
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

fn encode<T: Serialize>(record: &T) -> io::Result<Vec<u8>> {
    serde_json::to_vec(record).map_err(io::Error::other)
}

/// The append-only durable result store (snapshot + journal).
#[derive(Debug)]
pub struct DurableStore {
    snapshot_path: PathBuf,
    journal_path: PathBuf,
    journal: File,
    /// Records appended since the last compaction (journal length in
    /// records, seeded from recovery).
    journal_records: u64,
    compact_threshold: u64,
}

impl DurableStore {
    /// Opens (creating if necessary) the store under `state_dir` and
    /// recovers every readable completed result.
    ///
    /// Returned entries are in replay order (snapshot first, then
    /// journal), so inserting them into a map in order applies
    /// last-wins semantics.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O failures. Corrupt
    /// *contents* are not errors: they surface as truncation in the
    /// returned [`RecoveryStats`].
    pub fn open(
        state_dir: impl AsRef<Path>,
    ) -> io::Result<(Self, Vec<(String, JobResult)>, RecoveryStats)> {
        let dir = state_dir.as_ref();
        fs::create_dir_all(dir)?;
        let snapshot_path = dir.join("snapshot.spastore");
        let journal_path = dir.join("journal.spastore");
        let mut stats = RecoveryStats::default();
        let mut entries: Vec<(String, JobResult)> = Vec::new();

        if let Some(scan) = scan_file::<Record>(&snapshot_path)? {
            stats.replayed += scan.records.len() as u64;
            stats.truncated += u64::from(scan.discarded_tail);
            entries.extend(scan.records.into_iter().map(|r| (r.key, r.result)));
        }

        let journal_scan = scan_file::<Record>(&journal_path)?;
        let mut journal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&journal_path)?;
        let journal_records = match journal_scan {
            Some(scan) => {
                stats.replayed += scan.records.len() as u64;
                stats.truncated += u64::from(scan.discarded_tail);
                let count = scan.records.len() as u64;
                entries.extend(scan.records.into_iter().map(|r| (r.key, r.result)));
                if scan.valid_len < HEADER_LEN {
                    // Unreadable header: start the journal over.
                    journal.set_len(0)?;
                    journal.seek(SeekFrom::Start(0))?;
                    write_header(&mut journal)?;
                } else if scan.discarded_tail {
                    // Drop the corrupt tail so the next append starts at
                    // a clean record boundary.
                    journal.set_len(scan.valid_len)?;
                }
                count
            }
            None => {
                write_header(&mut journal)?;
                0
            }
        };
        journal.seek(SeekFrom::End(0))?;
        journal.flush()?;
        Ok((
            DurableStore {
                snapshot_path,
                journal_path,
                journal,
                journal_records,
                compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            },
            entries,
            stats,
        ))
    }

    /// Overrides the automatic-compaction threshold (appends between
    /// compactions).
    pub fn with_compact_threshold(mut self, records: u64) -> Self {
        self.compact_threshold = records.max(1);
        self
    }

    /// Appends one completed result to the journal and flushes it.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failure; the journal's previous
    /// records stay readable either way (a partial append is cut off at
    /// the next recovery).
    pub fn append(&mut self, key: &str, result: &JobResult) -> io::Result<()> {
        let payload = encode(&Record {
            key: key.to_string(),
            result: result.clone(),
        })?;
        write_record(&mut self.journal, &payload)?;
        self.journal.flush()?;
        self.journal_records += 1;
        Ok(())
    }

    /// Whether the journal has grown past the compaction threshold.
    pub fn should_compact(&self) -> bool {
        self.journal_records >= self.compact_threshold
    }

    /// Rewrites the snapshot to exactly `entries` and empties the
    /// journal.
    ///
    /// The snapshot is written to a tempfile and atomically renamed into
    /// place before the journal is touched, so a crash at any point
    /// leaves a recoverable (at worst duplicated, never lossy) store.
    ///
    /// # Errors
    ///
    /// File I/O failure; on error the previous snapshot and the journal
    /// are still intact.
    pub fn compact(&mut self, entries: &[(String, JobResult)]) -> io::Result<()> {
        let tmp = self
            .snapshot_path
            .with_extension(format!("spastore.tmp.{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            write_header(&mut f)?;
            for (key, result) in entries {
                let payload = encode(&Record {
                    key: key.to_string(),
                    result: result.clone(),
                })?;
                write_record(&mut f, &payload)?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.snapshot_path)?;
        self.journal.set_len(HEADER_LEN)?;
        self.journal.seek(SeekFrom::End(0))?;
        self.journal_records = 0;
        Ok(())
    }

    /// The journal's path (tests corrupt it directly).
    pub fn journal_path(&self) -> &Path {
        &self.journal_path
    }

    /// Records appended to the journal since the last compaction.
    pub fn journal_records(&self) -> u64 {
        self.journal_records
    }
}

/// One journaled streaming checkpoint: canonical key plus the latest
/// anytime state, or a tombstone (`state: None`) once the stream
/// finished and its checkpoint is dead.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointRecord {
    key: String,
    state: Option<SeqSnapshot>,
}

/// The streaming-job checkpoint journal (`checkpoints.spastore`).
///
/// A single append-only file in the [`DurableStore`] framing: one
/// record per folded round with the job's latest [`SeqSnapshot`], and a
/// tombstone when the job completes. Recovery replays last-wins and
/// applies tombstones, so [`open`](CheckpointStore::open) hands back
/// exactly the streams that died mid-flight — the server resumes their
/// suffixes through [`spa_core::seq::AnytimeRun::resume`] without
/// bias. Compaction rewrites the file to the live set via tempfile +
/// atomic rename.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    file: File,
    /// Raw records in the file (checkpoints + tombstones), seeded from
    /// recovery.
    records: u64,
    compact_threshold: u64,
}

impl CheckpointStore {
    /// Opens (creating if necessary) the checkpoint journal under
    /// `state_dir` and recovers the latest state of every stream that
    /// has a live (non-tombstoned) checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O failures; corrupt
    /// contents surface as truncation in the returned
    /// [`RecoveryStats`], exactly like [`DurableStore::open`].
    pub fn open(
        state_dir: impl AsRef<Path>,
    ) -> io::Result<(Self, Vec<(String, SeqSnapshot)>, RecoveryStats)> {
        let dir = state_dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join("checkpoints.spastore");
        let mut stats = RecoveryStats::default();
        let scan = scan_file::<CheckpointRecord>(&path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut latest: Vec<(String, Option<SeqSnapshot>)> = Vec::new();
        let records = match scan {
            Some(scan) => {
                stats.replayed += scan.records.len() as u64;
                stats.truncated += u64::from(scan.discarded_tail);
                let count = scan.records.len() as u64;
                for record in scan.records {
                    match latest.iter_mut().find(|(k, _)| *k == record.key) {
                        Some((_, state)) => *state = record.state,
                        None => latest.push((record.key, record.state)),
                    }
                }
                if scan.valid_len < HEADER_LEN {
                    file.set_len(0)?;
                    file.seek(SeekFrom::Start(0))?;
                    write_header(&mut file)?;
                } else if scan.discarded_tail {
                    file.set_len(scan.valid_len)?;
                }
                count
            }
            None => {
                write_header(&mut file)?;
                0
            }
        };
        file.seek(SeekFrom::End(0))?;
        file.flush()?;
        let live = latest
            .into_iter()
            .filter_map(|(key, state)| state.map(|s| (key, s)))
            .collect();
        Ok((
            CheckpointStore {
                path,
                file,
                records,
                compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            },
            live,
            stats,
        ))
    }

    /// Overrides the automatic-compaction threshold (raw records in the
    /// file between compactions).
    pub fn with_compact_threshold(mut self, records: u64) -> Self {
        self.compact_threshold = records.max(1);
        self
    }

    /// Journals one round's checkpoint and flushes it. Later records
    /// for the same key win at recovery.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failure; previous records stay
    /// readable either way.
    pub fn append(&mut self, key: &str, state: &SeqSnapshot) -> io::Result<()> {
        self.write(CheckpointRecord {
            key: key.to_string(),
            state: Some(*state),
        })
    }

    /// Journals a tombstone: the stream completed and must not be
    /// resumed again.
    ///
    /// # Errors
    ///
    /// Serialization or file I/O failure.
    pub fn remove(&mut self, key: &str) -> io::Result<()> {
        self.write(CheckpointRecord {
            key: key.to_string(),
            state: None,
        })
    }

    fn write(&mut self, record: CheckpointRecord) -> io::Result<()> {
        let payload = encode(&record)?;
        write_record(&mut self.file, &payload)?;
        self.file.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Whether the journal has grown past the compaction threshold.
    pub fn should_compact(&self) -> bool {
        self.records >= self.compact_threshold
    }

    /// Rewrites the file to exactly the live `entries` (tempfile +
    /// atomic rename), squashing per-round duplicates and tombstones.
    ///
    /// # Errors
    ///
    /// File I/O failure; on error the previous file is still intact.
    pub fn compact(&mut self, entries: &[(String, SeqSnapshot)]) -> io::Result<()> {
        let tmp = self
            .path
            .with_extension(format!("spastore.tmp.{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            write_header(&mut f)?;
            for (key, state) in entries {
                let payload = encode(&CheckpointRecord {
                    key: key.clone(),
                    state: Some(*state),
                })?;
                write_record(&mut f, &payload)?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        // The old handle points at the replaced inode; reopen so the
        // next append lands in the new file.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.records = entries.len() as u64;
        Ok(())
    }

    /// The journal's path (tests corrupt it directly).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Raw records currently in the file (checkpoints + tombstones).
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Reads every byte of `path` (test helper for corruption checks).
#[cfg(test)]
fn read_raw(path: &Path) -> Vec<u8> {
    let mut buf = Vec::new();
    File::open(path)
        .expect("open store file")
        .read_to_end(&mut buf)
        .expect("read store file");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_core::rounds::RoundsOutcome;

    fn result(tag: u64) -> JobResult {
        JobResult::Hypothesis {
            outcome: RoundsOutcome {
                outcome: None,
                rounds_used: tag,
                samples_used: tag * 4,
                last_confidence: 0.25,
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spa-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_ieee_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_recover_round_trips() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut store, entries, stats) = DurableStore::open(&dir).unwrap();
            assert!(entries.is_empty());
            assert_eq!(stats, RecoveryStats::default());
            store.append("k1", &result(1)).unwrap();
            store.append("k2", &result(2)).unwrap();
            // A rewrite of k1 after an invalidation: last record wins.
            store.append("k1", &result(3)).unwrap();
        }
        let (store, entries, stats) = DurableStore::open(&dir).unwrap();
        assert_eq!(stats.replayed, 3);
        assert_eq!(stats.truncated, 0);
        assert_eq!(store.journal_records(), 3);
        assert_eq!(entries.len(), 3, "replay order, dedup is the caller's");
        assert_eq!(entries[2].0, "k1");
        assert_eq!(entries[2].1, result(3));
    }

    #[test]
    fn corrupt_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("corrupt-tail");
        let journal_path = {
            let (mut store, _, _) = DurableStore::open(&dir).unwrap();
            store.append("k1", &result(1)).unwrap();
            store.append("k2", &result(2)).unwrap();
            store.journal_path().to_path_buf()
        };
        let clean_len = read_raw(&journal_path).len() as u64;
        // A torn final append: a length prefix promising more bytes than
        // the file holds.
        let mut f = OpenOptions::new().append(true).open(&journal_path).unwrap();
        f.write_all(&[0xAA; 11]).unwrap();
        drop(f);

        let (mut store, entries, stats) = DurableStore::open(&dir).unwrap();
        assert_eq!(stats.replayed, 2);
        assert_eq!(stats.truncated, 1);
        assert_eq!(entries.len(), 2);
        assert_eq!(
            read_raw(&journal_path).len() as u64,
            clean_len,
            "the torn tail is physically removed"
        );
        // The truncated journal accepts new appends cleanly.
        store.append("k3", &result(3)).unwrap();
        let (_, entries, stats) = DurableStore::open(&dir).unwrap();
        assert_eq!(stats.replayed, 3);
        assert_eq!(stats.truncated, 0);
        assert_eq!(entries[2].0, "k3");
    }

    #[test]
    fn flipped_payload_byte_fails_the_crc() {
        let dir = tmp_dir("bitflip");
        let journal_path = {
            let (mut store, _, _) = DurableStore::open(&dir).unwrap();
            store.append("k1", &result(1)).unwrap();
            store.journal_path().to_path_buf()
        };
        let mut bytes = read_raw(&journal_path);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&journal_path, &bytes).unwrap();
        let (_, entries, stats) = DurableStore::open(&dir).unwrap();
        assert!(entries.is_empty());
        assert_eq!(stats.truncated, 1);
    }

    #[test]
    fn version_mismatch_discards_the_file() {
        let dir = tmp_dir("version");
        let journal_path = {
            let (mut store, _, _) = DurableStore::open(&dir).unwrap();
            store.append("k1", &result(1)).unwrap();
            store.journal_path().to_path_buf()
        };
        let mut bytes = read_raw(&journal_path);
        bytes[8..12].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        fs::write(&journal_path, &bytes).unwrap();
        let (store, entries, stats) = DurableStore::open(&dir).unwrap();
        assert!(entries.is_empty(), "a stale-keyed result is never served");
        assert_eq!(stats.replayed, 0);
        assert_eq!(stats.truncated, 1);
        assert_eq!(store.journal_records(), 0);
        assert_eq!(read_raw(store.journal_path()).len() as u64, HEADER_LEN);
    }

    #[test]
    fn compaction_moves_journal_into_snapshot() {
        let dir = tmp_dir("compact");
        {
            let (mut store, _, _) = DurableStore::open(&dir).unwrap();
            store.append("k1", &result(1)).unwrap();
            store.append("k2", &result(2)).unwrap();
            store
                .compact(&[("k1".into(), result(1)), ("k2".into(), result(2))])
                .unwrap();
            assert_eq!(store.journal_records(), 0);
            assert_eq!(read_raw(store.journal_path()).len() as u64, HEADER_LEN);
            // Post-compaction appends land in the fresh journal.
            store.append("k3", &result(3)).unwrap();
        }
        let (_, entries, stats) = DurableStore::open(&dir).unwrap();
        assert_eq!(stats.replayed, 3);
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["k1", "k2", "k3"], "snapshot first, then journal");
    }

    #[test]
    fn replay_is_idempotent_when_compaction_crashed_before_truncate() {
        // Simulate a crash between the snapshot rename and the journal
        // truncate: both files carry the same records.
        let dir = tmp_dir("idempotent");
        {
            let (mut store, _, _) = DurableStore::open(&dir).unwrap();
            store.append("k1", &result(1)).unwrap();
            store.compact(&[("k1".into(), result(1))]).unwrap();
            // Re-append the same record, as if the pre-compaction
            // journal had survived.
            store.append("k1", &result(1)).unwrap();
        }
        let (_, entries, stats) = DurableStore::open(&dir).unwrap();
        assert_eq!(stats.replayed, 2, "duplicate records replay harmlessly");
        assert!(entries.iter().all(|(k, r)| k == "k1" && *r == result(1)));
    }

    #[test]
    fn automatic_compaction_threshold() {
        let dir = tmp_dir("threshold");
        let (store, _, _) = DurableStore::open(&dir).unwrap();
        let mut store = store.with_compact_threshold(2);
        assert!(!store.should_compact());
        store.append("k1", &result(1)).unwrap();
        assert!(!store.should_compact());
        store.append("k2", &result(2)).unwrap();
        assert!(store.should_compact());
        store.compact(&[]).unwrap();
        assert!(!store.should_compact());
    }

    fn snap(n: u64) -> SeqSnapshot {
        SeqSnapshot {
            n,
            successes: n / 2,
            lower: 0.2,
            upper: 0.8,
        }
    }

    #[test]
    fn checkpoint_last_write_wins_and_tombstones_apply() {
        let dir = tmp_dir("ckpt-roundtrip");
        {
            let (mut store, live, stats) = CheckpointStore::open(&dir).unwrap();
            assert!(live.is_empty());
            assert_eq!(stats, RecoveryStats::default());
            store.append("s1", &snap(8)).unwrap();
            store.append("s2", &snap(8)).unwrap();
            store.append("s1", &snap(16)).unwrap();
            // s2 completed: its checkpoint dies.
            store.remove("s2").unwrap();
        }
        let (store, live, stats) = CheckpointStore::open(&dir).unwrap();
        assert_eq!(stats.replayed, 4);
        assert_eq!(stats.truncated, 0);
        assert_eq!(store.records(), 4);
        assert_eq!(live, vec![("s1".to_string(), snap(16))]);
    }

    #[test]
    fn checkpoint_torn_tail_loses_only_the_last_round() {
        let dir = tmp_dir("ckpt-torn");
        let path = {
            let (mut store, _, _) = CheckpointStore::open(&dir).unwrap();
            store.append("s1", &snap(8)).unwrap();
            store.append("s1", &snap(16)).unwrap();
            store.path().to_path_buf()
        };
        // Tear the final record: its length prefix survives, its
        // payload doesn't.
        let bytes = read_raw(&path);
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut store, live, stats) = CheckpointStore::open(&dir).unwrap();
        assert_eq!(stats.truncated, 1);
        assert_eq!(
            live,
            vec![("s1".to_string(), snap(8))],
            "the stream resumes from the previous round"
        );
        // The truncated journal accepts new appends cleanly.
        store.append("s1", &snap(16)).unwrap();
        let (_, live, stats) = CheckpointStore::open(&dir).unwrap();
        assert_eq!(stats.truncated, 0);
        assert_eq!(live, vec![("s1".to_string(), snap(16))]);
    }

    #[test]
    fn checkpoint_compaction_squashes_rounds_and_survives_reopen() {
        let dir = tmp_dir("ckpt-compact");
        {
            let (store, _, _) = CheckpointStore::open(&dir).unwrap();
            let mut store = store.with_compact_threshold(3);
            store.append("s1", &snap(8)).unwrap();
            store.append("s1", &snap(16)).unwrap();
            assert!(!store.should_compact());
            store.append("s2", &snap(8)).unwrap();
            assert!(store.should_compact());
            store
                .compact(&[("s1".into(), snap(16)), ("s2".into(), snap(8))])
                .unwrap();
            assert_eq!(store.records(), 2);
            assert!(!store.should_compact());
            // Post-compaction appends land in the new file.
            store.append("s2", &snap(16)).unwrap();
        }
        let (_, live, stats) = CheckpointStore::open(&dir).unwrap();
        assert_eq!(stats.replayed, 3, "two compacted entries + one append");
        assert_eq!(
            live,
            vec![("s1".to_string(), snap(16)), ("s2".to_string(), snap(16))]
        );
    }
}
